//! # dft-bench
//!
//! The experiment harness: one binary per table/figure/quantitative
//! claim of Williams & Parker (see `DESIGN.md` §3 for the full index),
//! plus criterion benches for the timing-based experiments.
//!
//! Run an experiment with e.g.
//!
//! ```text
//! cargo run --release -p dft-bench --bin exp_eq1_scaling
//! ```

#![forbid(unsafe_code)]

use std::fmt;

use dft_netlist::{bench_format, circuits, Netlist};
use dft_sim::PatternSet;

pub mod cli;

/// A named entry in the built-in circuit menu.
pub type CircuitEntry = (&'static str, fn() -> Netlist);

/// The built-in circuit menu (name → constructor) shared by the
/// `tessera-*` CLIs.
#[must_use]
pub fn circuit_menu() -> Vec<CircuitEntry> {
    vec![
        ("c17", circuits::c17 as fn() -> Netlist),
        ("full-adder", circuits::full_adder),
        ("majority", circuits::majority),
        ("parity8", || circuits::parity_tree(8)),
        ("ripple8", || circuits::ripple_carry_adder(8)),
        ("cla8", || circuits::carry_lookahead_adder(8)),
        ("comparator8", || circuits::comparator(8)),
        ("mux3", || circuits::mux_tree(3)),
        ("decoder4", || circuits::decoder(4)),
        ("wallace4", || circuits::wallace_multiplier(4)),
        ("barrel3", || circuits::barrel_shifter(3)),
        ("shift8", || circuits::shift_register(8)),
        ("counter8", || circuits::binary_counter(8)),
        ("johnson8", || circuits::johnson_counter(8)),
        ("sn74181", || circuits::sn74181().0),
        ("redundant-fixture", circuits::redundant_fixture),
    ]
}

/// A failed circuit lookup, with enough structure for a tool (or the
/// daemon's `/load` endpoint) to tell the caller what *would* have
/// worked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolveError {
    /// What the caller asked for.
    pub name: String,
    /// Why it failed (human-readable).
    pub message: String,
    /// The built-in names the resolver would have accepted. Empty when
    /// the name *was* recognized but loading it failed (file unreadable,
    /// parse error) — listing the menu there would misdiagnose.
    pub available: Vec<String>,
}

impl ResolveError {
    fn unknown(name: &str) -> Self {
        ResolveError {
            name: name.to_owned(),
            message: format!(
                "unknown circuit '{name}' (not a built-in, not a file; try --list-circuits)"
            ),
            available: circuit_menu()
                .iter()
                .map(|(n, _)| (*n).to_owned())
                .collect(),
        }
    }

    fn load_failed(name: &str, message: String) -> Self {
        ResolveError {
            name: name.to_owned(),
            message,
            available: Vec::new(),
        }
    }
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ResolveError {}

impl From<ResolveError> for String {
    fn from(e: ResolveError) -> Self {
        e.message
    }
}

/// Resolves a target circuit the way every `tessera-*` CLI does: a
/// built-in menu name first, then a scaled-generator spec, then a path
/// to a `.bench` or `.blif` netlist file (chosen by extension;
/// anything that isn't `.blif` goes through the `.bench` parser).
///
/// A scaled-generator spec has the shape `layered_<inputs>x<gates>`
/// with an optional `k`/`m` suffix on the gate count —
/// `layered_256x100k` is a 100 000-gate, 256-input layered random
/// circuit (fixed seed, so every tool sees the same netlist). This is
/// the ingest path for the 10⁵–10⁶-gate benchmarks: no netlist file is
/// materialized.
///
/// # Errors
///
/// [`ResolveError`] when `name` is none of the above or loading fails;
/// for an unrecognized name the error carries the full menu in
/// `available`.
pub fn resolve_circuit(name: &str) -> Result<Netlist, ResolveError> {
    if let Some((_, build)) = circuit_menu().into_iter().find(|(n, _)| *n == name) {
        return Ok(build());
    }
    if let Some(netlist) = resolve_layered_spec(name) {
        return Ok(netlist);
    }
    if std::path::Path::new(name).is_file() {
        let path = std::path::Path::new(name);
        let text = std::fs::read_to_string(name)
            .map_err(|e| ResolveError::load_failed(name, format!("cannot read '{name}': {e}")))?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("netlist");
        let is_blif = path
            .extension()
            .and_then(|s| s.to_str())
            .is_some_and(|ext| ext.eq_ignore_ascii_case("blif"));
        return if is_blif {
            dft_netlist::blif::parse(&text, stem)
                .map_err(|e| ResolveError::load_failed(name, format!("{name}: {e}")))
        } else {
            bench_format::parse(&text, stem)
                .map_err(|e| ResolveError::load_failed(name, format!("{name}: {e}")))
        };
    }
    Err(ResolveError::unknown(name))
}

/// Parses a `layered_<inputs>x<gates>[k|m]` scaled-generator spec into
/// a deterministic (seed 42) layered random circuit named after the
/// spec itself.
fn resolve_layered_spec(name: &str) -> Option<Netlist> {
    let rest = name.strip_prefix("layered_")?;
    let (inputs, gates) = rest.split_once('x')?;
    let inputs: usize = inputs.parse().ok()?;
    let gates = parse_scaled_count(gates)?;
    if inputs == 0 || gates == 0 {
        return None;
    }
    let mut netlist = circuits::layered_random(inputs, gates, 42);
    netlist.set_name(name);
    Some(netlist)
}

/// Parses a count with an optional `k` (×10³) or `m` (×10⁶) suffix.
fn parse_scaled_count(s: &str) -> Option<usize> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1_000),
        b'm' | b'M' => (&s[..s.len() - 1], 1_000_000),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok()?.checked_mul(mult)
}

/// The benchmark-roster random circuits (`rand_<inputs>x<gates>`) with
/// their fixed seeds — the names `tessera-bench` reports under, also
/// loadable by name in the daemon so stress results line up with the
/// offline benchmarks.
pub const SERVE_ROSTER: [(&str, usize, usize, u64); 7] = [
    ("rand_12x80", 12, 80, 9),
    ("rand_14x120", 14, 120, 2),
    ("rand_15x140", 15, 140, 6),
    ("rand_16x300", 16, 300, 5),
    ("rand_20x800", 20, 800, 6),
    ("rand_24x2000", 24, 2000, 7),
    ("rand_28x6000", 28, 6000, 8),
];

/// [`resolve_circuit`] extended with the benchmark-roster random
/// circuits: the resolver behind `tessera-serve --preload` and the
/// daemon's `/load` endpoint.
///
/// # Errors
///
/// [`ResolveError`] as for [`resolve_circuit`], with the roster names
/// appended to `available` on an unknown name.
pub fn resolve_serve_circuit(name: &str) -> Result<Netlist, ResolveError> {
    if let Some(&(_, inputs, gates, seed)) = SERVE_ROSTER.iter().find(|(n, ..)| *n == name) {
        let mut netlist = circuits::random_combinational(inputs, gates, seed);
        // Serve the roster name, not the generator's parameter string,
        // so follow-up requests can address the design by the name they
        // loaded it under.
        netlist.set_name(name);
        return Ok(netlist);
    }
    resolve_circuit(name).map_err(|mut e| {
        if !e.available.is_empty() {
            e.available
                .extend(SERVE_ROSTER.iter().map(|(n, ..)| (*n).to_owned()));
        }
        e
    })
}

/// Prints an aligned text table (the format every experiment binary
/// reports in).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// All 2ⁿ patterns over `n` inputs (n ≤ 20 to stay sane).
///
/// # Panics
///
/// Panics if `n > 20`.
#[must_use]
pub fn exhaustive_patterns(n: usize) -> PatternSet {
    assert!(n <= 20, "exhaustive pattern materialization capped at 2^20");
    let rows: Vec<Vec<bool>> = (0..1usize << n)
        .map(|v| (0..n).map(|i| v >> i & 1 == 1).collect())
        .collect();
    PatternSet::from_rows(n, &rows)
}

/// Formats a float with engineering-friendly precision.
#[must_use]
pub fn eng(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_patterns_enumerate() {
        let p = exhaustive_patterns(3);
        assert_eq!(p.len(), 8);
        assert_eq!(p.get(5), vec![true, false, true]);
    }

    #[test]
    fn resolve_errors_carry_the_menu() {
        let err = resolve_circuit("no-such-circuit").unwrap_err();
        assert!(err.message.contains("no-such-circuit"));
        assert!(err.available.iter().any(|n| n == "c17"));
        assert!(err.available.iter().any(|n| n == "sn74181"));
        let err = resolve_serve_circuit("no-such-circuit").unwrap_err();
        assert!(err.available.iter().any(|n| n == "rand_24x2000"));
    }

    #[test]
    fn serve_resolver_builds_roster_circuits() {
        let n = resolve_serve_circuit("rand_16x300").unwrap();
        assert_eq!(n.primary_inputs().len(), 16);
        assert_eq!(resolve_serve_circuit("c17").unwrap().name(), "c17");
    }

    #[test]
    fn resolve_circuit_covers_menu_files_and_unknowns() {
        assert_eq!(resolve_circuit("c17").unwrap().name(), "c17");
        assert!(resolve_circuit("no-such-circuit").is_err());
        // A .bench file on disk resolves through the parser.
        let path = std::env::temp_dir().join("dft_bench_resolve_test.bench");
        let text = dft_netlist::bench_format::write(&circuits::c17());
        std::fs::write(&path, text).unwrap();
        let parsed = resolve_circuit(path.to_str().unwrap()).unwrap();
        assert_eq!(parsed.name(), "dft_bench_resolve_test");
        assert_eq!(
            parsed.primary_inputs().len(),
            circuits::c17().primary_inputs().len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resolve_circuit_reads_blif_by_extension() {
        let path = std::env::temp_dir().join("dft_bench_resolve_test.blif");
        let text = dft_netlist::blif::write_blif(&circuits::c17());
        std::fs::write(&path, text).unwrap();
        let parsed = resolve_circuit(path.to_str().unwrap()).unwrap();
        assert_eq!(parsed.name(), "c17", ".model name wins over the stem");
        assert_eq!(parsed.gate_count(), circuits::c17().gate_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resolve_circuit_builds_layered_specs() {
        let n = resolve_circuit("layered_64x10k").unwrap();
        assert_eq!(n.name(), "layered_64x10k");
        assert_eq!(n.primary_inputs().len(), 64);
        assert_eq!(n.logic_gate_count(), 10_000);
        // Deterministic: the same spec resolves to the same netlist.
        assert_eq!(n, resolve_circuit("layered_64x10k").unwrap());
        assert_eq!(
            resolve_circuit("layered_32x500")
                .unwrap()
                .logic_gate_count(),
            500
        );
        for bad in ["layered_x10k", "layered_0x5", "layered_8x", "layered_8x1q"] {
            assert!(resolve_circuit(bad).is_err(), "{bad} must not resolve");
        }
    }

    #[test]
    fn eng_formats() {
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(3.77e22), "3.770e22");
        assert_eq!(eng(123.4), "123.4");
        assert_eq!(eng(1.5), "1.500");
    }
}
