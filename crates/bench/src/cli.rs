//! Conventions shared by the `tessera-*` command-line tools: the
//! `--format` vocabulary, the `tessera/1` JSON envelope, and the
//! documented exit-code contract.
//!
//! Every tool that emits machine-readable output wraps it in one
//! envelope so a consumer can dispatch on `tool` without knowing which
//! binary produced the bytes:
//!
//! ```json
//! {"schema": "tessera/1", "tool": "tessera-lint", "payload": ...}
//! ```
//!
//! The payload bytes are the tool's pre-envelope JSON, embedded
//! *verbatim* (modulo the trailing newline) — existing payload schemas
//! (`tessera-fix/1` plans, lint reports, `BENCH_*.json`) are unchanged
//! and still parse with the same substring extractors.

use std::process::ExitCode;

/// The exit-code contract every `tessera-*` tool follows.
///
/// | code | meaning |
/// |------|---------|
/// | 0    | ran to completion; nothing the tool polices was violated |
/// | 1    | ran to completion, but found what it polices (lint errors, a missed `--require-improvement`, a baseline/golden divergence) |
/// | 2    | usage error: bad flags, unknown circuit, unreadable input |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToolExit {
    /// Clean run.
    Success,
    /// The tool's findings warrant a failing exit (not a tool error).
    Findings,
    /// The invocation itself was wrong.
    Usage,
}

impl From<ToolExit> for ExitCode {
    fn from(e: ToolExit) -> Self {
        match e {
            ToolExit::Success => ExitCode::SUCCESS,
            ToolExit::Findings => ExitCode::FAILURE,
            ToolExit::Usage => ExitCode::from(2),
        }
    }
}

/// Output format selected by `--format` (shared flag vocabulary).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Format {
    /// Human-readable tables/prose (the default).
    #[default]
    Text,
    /// One `tessera/1` envelope on stdout.
    Json,
}

impl Format {
    /// Parses a `--format` value.
    ///
    /// # Errors
    ///
    /// A usage-error message for anything but `text` or `json`.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format '{other}' (expected text|json)")),
        }
    }
}

/// Wraps a tool's JSON payload in the shared `tessera/1` envelope.
///
/// `payload` must itself be a JSON value; it is embedded verbatim after
/// trimming trailing whitespace, so the payload bytes inside the
/// envelope are exactly the tool's pre-envelope output.
#[must_use]
pub fn envelope(tool: &str, payload: &str) -> String {
    format!(
        "{{\"schema\": \"tessera/1\", \"tool\": {}, \"payload\": {}}}\n",
        dft_json::escaped(tool),
        payload.trim_end()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_embeds_payload_bytes_verbatim() {
        let payload = "{\n  \"design\": \"c17\",\n  \"clean\": true\n}\n";
        let wrapped = envelope("tessera-lint", payload);
        assert!(wrapped
            .starts_with("{\"schema\": \"tessera/1\", \"tool\": \"tessera-lint\", \"payload\": "));
        assert!(wrapped.contains(payload.trim_end()));
        assert!(wrapped.ends_with("}\n"));
        // The envelope parses, and the payload inside is untouched.
        let doc = dft_json::parse(&wrapped).expect("envelope is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("tessera/1")
        );
        assert_eq!(
            doc.get("payload")
                .and_then(|p| p.get("design"))
                .and_then(|v| v.as_str()),
            Some("c17")
        );
    }

    #[test]
    fn exit_codes_follow_the_contract() {
        // ExitCode has no PartialEq; the conversions existing (and the
        // variants' documented meanings) are the contract under test.
        let _: ExitCode = ToolExit::Success.into();
        let _: ExitCode = ToolExit::Findings.into();
        let _: ExitCode = ToolExit::Usage.into();
        assert_eq!(Format::parse("json"), Ok(Format::Json));
        assert_eq!(Format::parse("text"), Ok(Format::Text));
        assert!(Format::parse("yaml").is_err());
    }
}
