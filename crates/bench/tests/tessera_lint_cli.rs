//! End-to-end tests of the `tessera-lint` binary: output formats and
//! the severity-driven exit-code contract.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tessera-lint"))
}

#[test]
fn sn74181_json_is_machine_readable() {
    let out = bin()
        .args(["--format", "json", "sn74181"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "warnings must not fail the run");
    let s = String::from_utf8(out.stdout).unwrap();
    assert!(
        s.starts_with("{\"schema\": \"tessera/1\", \"tool\": \"tessera-lint\", \"payload\": "),
        "stdout must be one tessera/1 envelope, got: {s}"
    );
    assert!(s.contains("\"design\": \"sn74181\""));
    assert!(s.contains("\"summary\""));
    assert!(s.contains("\"diagnostics\""));
    let doc = dft_json::parse(&s).expect("envelope is well-formed JSON");
    let payload = doc.get("payload").expect("envelope carries a payload");
    assert_eq!(
        payload.get("design").and_then(dft_json::Value::as_str),
        Some("sn74181"),
        "single circuit → payload is the bare report object"
    );
}

#[test]
fn multiple_circuits_render_as_a_json_array() {
    let out = bin()
        .args(["--format", "json", "c17", "majority"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let s = String::from_utf8(out.stdout).unwrap();
    assert!(s.contains("\"design\": \"c17\""));
    assert!(s.contains("\"design\": \"maj3\""));
    let doc = dft_json::parse(&s).expect("envelope is well-formed JSON");
    let payload = doc.get("payload").expect("envelope carries a payload");
    let reports = payload
        .as_array()
        .expect("multiple circuits → array payload");
    assert_eq!(reports.len(), 2);
}

#[test]
fn default_run_covers_the_library_without_errors() {
    // Sequential circuits carry warnings (uninitializable state, latch
    // races) but nothing at error severity: exit 0.
    let out = bin().output().expect("binary runs");
    assert!(out.status.success());
    let s = String::from_utf8(out.stdout).unwrap();
    assert!(s.contains("c17: "));
    assert!(s.contains("sn74181: "));
}

#[test]
fn unknown_circuit_is_a_usage_error() {
    let out = bin().arg("no-such-circuit").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown circuit"));
}

#[test]
fn error_severity_findings_drive_exit_code_one() {
    // A 3-wide Scan/Set shadow over an 8-bit counter leaves 5 latches
    // unscanned: scan-coverage reports at error severity.
    let out = bin()
        .args(["--scan", "scan-set", "--scan-width", "3", "counter8"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let s = String::from_utf8(out.stdout).unwrap();
    assert!(s.contains("scan-coverage"));
}

#[test]
fn list_rules_names_the_documented_set() {
    let out = bin().arg("--list-rules").output().expect("binary runs");
    assert!(out.status.success());
    let s = String::from_utf8(out.stdout).unwrap();
    for id in [
        "comb-feedback",
        "dead-logic",
        "constant-output",
        "reconvergent-fanout",
        "uninitializable-storage",
        "hard-to-control",
        "hard-to-observe",
        "latch-race",
    ] {
        assert!(s.contains(id), "--list-rules misses {id}");
    }
}

#[test]
fn thresholds_are_adjustable_from_the_command_line() {
    let out = bin()
        .args(["--max-depth", "5", "ripple8"])
        .output()
        .expect("binary runs");
    // Deep-logic findings are warnings: reported, exit 0.
    assert!(out.status.success());
    let s = String::from_utf8(out.stdout).unwrap();
    assert!(s.contains("deep-logic"));
    assert!(s.contains("exceeds bound 5"));
}
