//! Smoke tests: the fast experiment binaries must run to completion and
//! print their headline markers (the heavyweight sweeps are exercised
//! manually / in release mode — see EXPERIMENTS.md).

use std::process::Command;

fn run(bin: &str, expect: &[&str]) {
    let out = Command::new(bin)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for marker in expect {
        assert!(
            stdout.contains(marker),
            "{bin} output missing {marker:?}:\n{stdout}"
        );
    }
}

#[test]
fn exp_fig1_stuck_at() {
    run(env!("CARGO_BIN_EXE_exp_fig1_stuck_at"), &["TEST", "01"]);
}

#[test]
fn exp_fig7_lfsr() {
    run(
        env!("CARGO_BIN_EXE_exp_fig7_lfsr"),
        &["x^3 + x^2 + 1", "Period by initial value"],
    );
}

#[test]
fn exp_cost_of_test() {
    run(
        env!("CARGO_BIN_EXE_exp_cost_of_test"),
        &["300.00", "chip coverage"],
    );
}

#[test]
fn exp_fault_universe() {
    run(
        env!("CARGO_BIN_EXE_exp_fault_universe"),
        &["6000", "after equivalence collapsing"],
    );
}

#[test]
fn exp_table1_walsh() {
    run(
        env!("CARGO_BIN_EXE_exp_table1_walsh"),
        &["Table I", "C_all = -4", "detected"],
    );
}

#[test]
fn exp_ram_march() {
    run(
        env!("CARGO_BIN_EXE_exp_ram_march"),
        &["MATS+", "March C−", "100.0"],
    );
}

#[test]
fn exp_functional_infeasible() {
    run(
        env!("CARGO_BIN_EXE_exp_functional_infeasible"),
        &["2^75", "years"],
    );
}

#[test]
fn exp_cmos_stuck_open() {
    run(
        env!("CARGO_BIN_EXE_exp_cmos_stuck_open"),
        &["stuck-open", "100.0"],
    );
}
