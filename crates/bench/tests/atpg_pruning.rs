//! The acceptance criterion behind `BENCH_atpg.json`: over the quick
//! ATPG roster, PODEM with the static implication store must need
//! *strictly fewer* total backtracks than without it, while reaching the
//! exact same verdict on every target (pruning may never flip a result).

use dft_atpg::{GenOutcome, Podem, PodemConfig};
use dft_fault::{dominance_collapse, universe};
use dft_netlist::circuits::{c17, random_combinational, redundant_fixture};
use dft_netlist::Netlist;

fn roster() -> Vec<(&'static str, Netlist)> {
    vec![
        ("redundant_fixture", redundant_fixture()),
        ("c17", c17()),
        ("rand_12x80", random_combinational(12, 80, 9)),
    ]
}

#[test]
fn implication_pruning_strictly_reduces_backtracks_without_changing_verdicts() {
    let mut total = [0u64; 2];
    for (name, n) in roster() {
        let faults = universe(&n);
        let dom = dominance_collapse(&n, &faults);
        let solvers: Vec<Podem<'_>> = [false, true]
            .iter()
            .map(|&use_implications| {
                Podem::new(
                    &n,
                    PodemConfig::new().with_use_implications(use_implications),
                )
                .expect("roster circuits levelize")
            })
            .collect();
        for &fault in dom.targets() {
            let (without, wo_stats) = solvers[0].solve(fault);
            let (with, wi_stats) = solvers[1].solve(fault);
            assert!(
                !matches!(without, GenOutcome::Aborted) && !matches!(with, GenOutcome::Aborted),
                "{name}: {fault:?} aborted — roster circuits must be decided"
            );
            assert_eq!(
                std::mem::discriminant(&without),
                std::mem::discriminant(&with),
                "{name}: pruning flipped the verdict on {fault:?}"
            );
            total[0] += u64::from(wo_stats.backtracks);
            total[1] += u64::from(wi_stats.backtracks);
        }
    }
    assert!(
        total[1] < total[0],
        "implication pruning must strictly reduce total backtracks \
         (with: {}, without: {})",
        total[1],
        total[0]
    );
}
