//! The JSON document tree.

use crate::writer::{escape_into, write_f64};

/// A parsed JSON document.
///
/// Objects keep their members in document order (a `Vec`, not a map):
/// the serve codec's envelopes are small, order carries meaning for
/// byte-stable re-emission, and linear lookup is cheaper than hashing
/// at these sizes. Numbers are stored as `f64` — every integer the
/// tessera schemas carry fits in the 53-bit exact range, and
/// [`Value::as_u64`]/[`Value::as_i64`] reject anything that does not
/// round-trip.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (first occurrence), if this is an
    /// object and the key is present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer. `None` when
    /// not a number, negative, fractional, or beyond the 53-bit exact
    /// range.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The numeric payload as an exact signed integer (same exactness
    /// rules as [`Value::as_u64`]).
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.abs() <= 9_007_199_254_740_992.0 && n.fract() == 0.0 {
            Some(n as i64)
        } else {
            None
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes the tree in compact wire form (no whitespace).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write_compact(&mut out);
        out
    }

    /// Appends the compact wire form to `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_f64(out, *n),
            Value::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_navigate() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(3.0)),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("s".into(), Value::Str("hi".into())),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(3));
        assert_eq!(
            v.get("b").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(-2.0).as_u64(), None);
        assert_eq!(Value::Num(-2.0).as_i64(), Some(-2));
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    fn compact_round_shape() {
        let v = Value::Obj(vec![
            ("k".into(), Value::Str("a\"b".into())),
            ("n".into(), Value::Num(2.0)),
            ("l".into(), Value::Arr(vec![Value::Num(0.5)])),
        ]);
        assert_eq!(v.to_compact(), "{\"k\":\"a\\\"b\",\"n\":2,\"l\":[0.5]}");
    }
}
