//! Streaming JSON output: escaping primitives and the [`JsonWriter`].

use std::fmt::Write as _;

/// Appends the RFC 8259 escape of `s` (no surrounding quotes) to `out`.
///
/// This is byte-for-byte the escaping every tessera emitter has always
/// used: `"` `\` and the C0 controls are escaped (`\n` `\r` `\t` get
/// their short forms, the rest `\u00xx`), everything else passes
/// through verbatim.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `s` as a complete JSON string literal, quotes included.
#[must_use]
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Appends `v` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values render as `null` (the convention the obs reports
/// established). Finite values use Rust's shortest round-trip `{}`
/// formatting.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Output style of a [`JsonWriter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Style {
    /// No whitespace at all: `{"k":1,"a":[true]}` — the wire format of
    /// the obs reports and the serve codec.
    Compact,
    /// Two-space indentation, one key per line — for artifacts meant to
    /// be read in a diff.
    Pretty,
}

/// A streaming JSON writer over an owned `String`.
///
/// The writer tracks the container stack and inserts commas (and, in
/// [`Style::Pretty`], newlines and indentation) automatically; callers
/// just alternate `key`/value calls inside objects and value calls
/// inside arrays. [`JsonWriter::raw`] escapes to the next layer down for
/// the rare pre-rendered fragment.
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    /// One frame per open container: `(is_object, member_count)`.
    stack: Vec<(bool, usize)>,
    style: Style,
    /// Set by [`JsonWriter::key`]: the next value call writes in place
    /// (no comma/indent pass of its own).
    pending_key: bool,
}

impl JsonWriter {
    /// A writer in the given style.
    #[must_use]
    pub fn new(style: Style) -> Self {
        JsonWriter {
            out: String::with_capacity(256),
            stack: Vec::new(),
            style,
            pending_key: false,
        }
    }

    /// Finishes writing and returns the accumulated output.
    ///
    /// # Panics
    ///
    /// Panics if a container is still open — an unbalanced writer is a
    /// bug at the call site, not a runtime condition.
    #[must_use]
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty(),
            "JsonWriter finished with {} open container(s)",
            self.stack.len()
        );
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Comma/indent bookkeeping before a value (or a key) is written.
    /// A value directly after [`JsonWriter::key`] goes in place — the
    /// key already did the punctuation.
    fn pre_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            if let Some((_, count)) = self.stack.last_mut() {
                *count += 1;
            }
            return;
        }
        if let Some((_, count)) = self.stack.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
            if self.style == Style::Pretty {
                self.newline_indent();
            }
        }
    }

    /// Opens an object (as the next value in the current container).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.stack.push((true, 0));
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        let frame = self.stack.pop().expect("end_object with no open object");
        assert!(frame.0, "end_object closing an array");
        if self.style == Style::Pretty && frame.1 > 0 {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens an array (as the next value in the current container).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.stack.push((false, 0));
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        let frame = self.stack.pop().expect("end_array with no open array");
        assert!(!frame.0, "end_array closing an object");
        if self.style == Style::Pretty && frame.1 > 0 {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Writes an object key. The next call must write its value.
    pub fn key(&mut self, k: &str) {
        assert!(
            self.stack.last().is_some_and(|f| f.0),
            "key outside an object"
        );
        assert!(!self.pending_key, "key written where a value was due");
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str(if self.style == Style::Pretty {
            "\": "
        } else {
            "\":"
        });
        // The value belongs to this key: undo the member-count bump so
        // the value's own pre_value pass only re-counts it.
        if let Some((_, count)) = self.stack.last_mut() {
            *count -= 1;
        }
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, s);
        self.out.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value (`null` when non-finite).
    pub fn f64(&mut self, v: f64) {
        self.pre_value();
        write_f64(&mut self.out, v);
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a JSON `null`.
    pub fn null(&mut self) {
        self.pre_value();
        self.out.push_str("null");
    }

    /// Writes a pre-rendered JSON fragment verbatim as the next value.
    /// The fragment must itself be valid JSON; the writer only handles
    /// the surrounding punctuation.
    pub fn raw(&mut self, fragment: &str) {
        self.pre_value();
        self.out.push_str(fragment);
    }
}

impl JsonWriter {
    /// Convenience: `key` + `string`.
    pub fn kv_string(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Convenience: `key` + `u64`.
    pub fn kv_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// Convenience: `key` + `i64`.
    pub fn kv_i64(&mut self, k: &str, v: i64) {
        self.key(k);
        self.i64(v);
    }

    /// Convenience: `key` + `f64`.
    pub fn kv_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    /// Convenience: `key` + `bool`.
    pub fn kv_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_matches_the_legacy_emitters() {
        assert_eq!(escaped("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escaped("x\ny"), "\"x\\ny\"");
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
        assert_eq!(escaped("täst"), "\"täst\"");
    }

    #[test]
    fn nonfinite_floats_render_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        write_f64(&mut s, 0.5);
        assert_eq!(s, "null0.5");
    }

    #[test]
    fn compact_writer_emits_wire_format() {
        let mut w = JsonWriter::new(Style::Compact);
        w.begin_object();
        w.kv_string("name", "x");
        w.kv_u64("n", 3);
        w.key("list");
        w.begin_array();
        w.bool(true);
        w.null();
        w.f64(1.0);
        w.end_array();
        w.key("nested");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\"name\":\"x\",\"n\":3,\"list\":[true,null,1],\"nested\":{}}"
        );
    }

    #[test]
    fn pretty_writer_indents() {
        let mut w = JsonWriter::new(Style::Pretty);
        w.begin_object();
        w.kv_string("a", "b");
        w.key("c");
        w.begin_array();
        w.u64(1);
        w.u64(2);
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\n  \"a\": \"b\",\n  \"c\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn raw_injects_prerendered_fragments() {
        let mut w = JsonWriter::new(Style::Compact);
        w.begin_object();
        w.key("frag");
        w.raw("{\"pre\":1}");
        w.end_object();
        assert_eq!(w.finish(), "{\"frag\":{\"pre\":1}}");
    }

    #[test]
    fn top_level_scalar_is_fine() {
        let mut w = JsonWriter::new(Style::Compact);
        w.string("only");
        assert_eq!(w.finish(), "\"only\"");
    }

    #[test]
    #[should_panic(expected = "open container")]
    fn unbalanced_finish_panics() {
        let mut w = JsonWriter::new(Style::Compact);
        w.begin_object();
        let _ = w.finish();
    }
}
