//! # dft-json
//!
//! The one hand-rolled JSON layer of the workspace. Every tessera crate
//! that emits JSON (`dft-lint` diagnostics, `dft-obs` run reports,
//! `dft-repair` plans, the `tessera-*` CLIs) used to carry its own
//! string-escaping and number-formatting helpers; they now share this
//! crate, and the `tessera-serve` request/response codec builds its
//! parser on the [`Value`] tree here. The workspace deliberately vendors
//! no serde — the schemas are small, stable, and versioned by hand — so
//! this crate is the single place escaping, float formatting and parsing
//! live.
//!
//! Three layers:
//!
//! * [`escape_into`] / [`escaped`] / [`write_f64`] — the primitive
//!   fragments the byte-stable emitters are built from (RFC 8259 string
//!   escaping, `null` for non-finite floats).
//! * [`JsonWriter`] — a streaming writer with compact and pretty styles
//!   for code that produces JSON without materializing a tree.
//! * [`Value`] + [`parse`] — a document tree and a recursive-descent
//!   parser (depth-capped, full `\uXXXX` handling including surrogate
//!   pairs) for code that consumes JSON.

#![forbid(unsafe_code)]

mod parser;
mod value;
mod writer;

pub use parser::{parse, JsonError, MAX_DEPTH};
pub use value::Value;
pub use writer::{escape_into, escaped, write_f64, JsonWriter, Style};
