//! A recursive-descent JSON parser (RFC 8259).
//!
//! Small by design: the serve codec and the CLI replay tools parse
//! documents they (or a sibling tool) emitted, so the parser favors
//! precise errors and bounded recursion over raw speed. Full string
//! unescaping including `\uXXXX` surrogate pairs; numbers through
//! Rust's `f64` parser; nesting capped at [`MAX_DEPTH`].

use std::error::Error;
use std::fmt;

use crate::value::Value;

/// Maximum container nesting the parser accepts — protects the server
/// against stack-exhaustion bodies (`[[[[…`).
pub const MAX_DEPTH: usize = 128;

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on malformed input,
/// nesting beyond [`MAX_DEPTH`], or trailing garbage.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let scalar = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        if self.peek() == Some(b'u') {
                            self.pos += 1;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("unpaired surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            return Err(self.err("unpaired surrogate"));
                        }
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(scalar).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            other => {
                return Err(self.err(format!("unknown escape '\\{}'", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_containers() {
        let v = parse("{\"a\": [1, {\"b\": null}], \"c\": \"x\"}").unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
    }

    #[test]
    fn unescapes_strings() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\\n\\t\\u0041\"").unwrap(),
            Value::Str("a\"b\\c\n\tA".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1F600}".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"", "{]", "nul", "+1", "01a",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn reports_offsets() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("at byte 4"));
    }

    #[test]
    fn depth_cap_holds() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn round_trips_compact() {
        let text = "{\"a\":[1,2.5,null,true],\"b\":{\"c\":\"x\\ny\"}}";
        let v = parse(text).unwrap();
        assert_eq!(v.to_compact(), text);
    }
}
