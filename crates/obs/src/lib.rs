//! # dft-obs
//!
//! The observability layer of the *tessera* DFT toolkit: hierarchical
//! spans with monotonic timing, named counters and gauges, and a
//! JSON-serializable [`RunReport`] tree.
//!
//! Williams & Parker justify every technique in the survey by *measured
//! cost* — test-generation effort, pattern counts, coverage curves. The
//! engines in this workspace (fault simulation, ATPG, implication
//! learning, compiled simulation) therefore expose the same telemetry
//! through one mechanism: every entry point accepts an optional
//! `&mut dyn Collector`, and feeds it phase spans plus effort counters
//! (events simulated, words folded, faults dropped, backtracks,
//! implication conflicts, learning rounds).
//!
//! Three collector implementations cover the use cases:
//!
//! * [`NullCollector`] — every method is an empty `#[inline]` body, so
//!   instrumentation in a monomorphized (or `None`-routed) hot path
//!   compiles away. Engines additionally batch their counting in local
//!   integers and flush once per run, so even through `dyn` dispatch the
//!   per-event cost is a plain register increment.
//! * [`Recorder`] — builds a [`RunReport`] span tree with wall-clock
//!   durations from [`std::time::Instant`] (monotonic by construction).
//! * Anything downstream: the trait is object-safe and four methods.
//!
//! Engines do not take a collector directly in their hot loops; they
//! wrap the optional reference in the [`Obs`] cursor, which no-ops when
//! absent and forwards when present:
//!
//! ```
//! use dft_obs::{Collector, Obs, Recorder};
//!
//! fn engine(obs: Option<&mut dyn Collector>) {
//!     let mut obs = Obs::new(obs);
//!     obs.enter("engine.phase");
//!     let mut local_events = 0u64;
//!     for _ in 0..1000 {
//!         local_events += 1; // hot loop: plain integer, no dispatch
//!     }
//!     obs.count("engine.events", local_events);
//!     obs.exit();
//! }
//!
//! engine(None); // free
//! let mut rec = Recorder::new();
//! engine(Some(&mut rec));
//! let report = rec.finish("run");
//! assert_eq!(report.root.find("engine.phase").unwrap().counter("engine.events"), 1000);
//! ```

#![forbid(unsafe_code)]

mod collector;
mod recorder;
mod report;

pub use collector::{Collector, NullCollector, Obs};
pub use recorder::Recorder;
pub use report::{RunReport, SpanNode};
