//! The serializable result of a recorded run: a tree of spans with
//! durations, counters, and gauges.

use std::collections::BTreeMap;

use dft_json::{JsonWriter, Style};

/// One span in a recorded run: a named phase with a wall-clock duration,
/// the counters and gauges flushed while it was the innermost open span,
/// and its child spans in open order.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name as passed to `Collector::span_enter` (or the run name
    /// for the root).
    pub name: String,
    /// Wall-clock time between enter and exit, in nanoseconds.
    pub duration_ns: u64,
    /// Counters accumulated on this span (additive across flushes).
    pub counters: BTreeMap<String, u64>,
    /// Gauges set on this span (last write wins).
    pub gauges: BTreeMap<String, f64>,
    /// Child spans, in the order they were opened.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        SpanNode {
            name: name.into(),
            duration_ns: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Depth-first search for the first span named `name`, including
    /// this node itself.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Value of counter `name` on this span (0 when never counted).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name` on this span, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Sum of counter `name` over this span and every descendant —
    /// the roll-up view a report consumer usually wants.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.children.iter().fold(self.counter(name), |acc, c| {
            acc.saturating_add(c.counter_total(name))
        })
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.kv_string("name", &self.name);
        w.kv_u64("duration_ns", self.duration_ns);
        w.key("counters");
        w.begin_object();
        for (k, v) in &self.counters {
            w.kv_u64(k, *v);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (k, v) in &self.gauges {
            w.kv_f64(k, *v);
        }
        w.end_object();
        w.key("children");
        w.begin_array();
        for c in &self.children {
            c.write_json(w);
        }
        w.end_array();
        w.end_object();
    }
}

/// A complete recorded run: the root span tree plus the schema version
/// of the serialized form.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Root span covering the whole recorded window; its children are
    /// the top-level phases.
    pub root: SpanNode,
}

impl RunReport {
    /// Serializes the report to a single-line JSON object via the
    /// shared `dft-json` writer (the workspace has no serde). The
    /// schema is small and stable:
    /// `{"schema":"tessera-obs/1","root":{span...}}` where each span is
    /// `{"name","duration_ns","counters","gauges","children"}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new(Style::Compact);
        w.begin_object();
        w.kv_string("schema", "tessera-obs/1");
        w.key("root");
        self.root.write_json(&mut w);
        w.end_object();
        w.finish()
    }

    /// Shorthand for `self.root.find(name)`.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        self.root.find(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut root = SpanNode::new("run");
        root.duration_ns = 10;
        let mut child = SpanNode::new("phase");
        child.duration_ns = 7;
        child.counters.insert("events".into(), 42);
        child.gauges.insert("coverage".into(), 0.5);
        root.children.push(child);
        root.counters.insert("events".into(), 1);
        RunReport { root }
    }

    #[test]
    fn find_and_counter() {
        let r = sample();
        assert_eq!(r.find("phase").unwrap().counter("events"), 42);
        assert_eq!(r.root.counter_total("events"), 43);
        assert_eq!(r.find("phase").unwrap().gauge("coverage"), Some(0.5));
        assert!(r.find("missing").is_none());
        assert_eq!(r.root.counter("missing"), 0);
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"schema\":\"tessera-obs/1\",\"root\":{"));
        assert!(json.contains("\"name\":\"phase\""));
        assert!(json.contains("\"events\":42"));
        assert!(json.contains("\"coverage\":0.5"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn json_escapes_strings() {
        let mut root = SpanNode::new("a\"b\\c\nd");
        root.counters.insert("k\t".into(), 1);
        let json = RunReport { root }.to_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
        assert!(json.contains("k\\t"));
    }

    /// Byte-identical to the output of the pre-`dft-json` hand-rolled
    /// emitter (captured before the refactor): existing consumers parse
    /// this wire format with substring extraction, so the bytes are the
    /// contract.
    #[test]
    fn json_bytes_match_the_legacy_emitter() {
        let mut child = SpanNode::new("fault_sim.serial");
        for (k, v) in [
            ("detected", 46u64),
            ("dropped", 46),
            ("faults", 46),
            ("faulty_evals", 46),
            ("good_evals", 1),
            ("lane_words", 1),
            ("patterns", 32),
        ] {
            child.counters.insert(k.into(), v);
        }
        child.gauges.insert("coverage".into(), 1.0);
        let mut root = SpanNode::new("golden");
        root.children.push(child);
        let json = RunReport { root }.to_json();
        assert_eq!(
            json,
            "{\"schema\":\"tessera-obs/1\",\"root\":{\"name\":\"golden\",\"duration_ns\":0,\
             \"counters\":{},\"gauges\":{},\"children\":[{\"name\":\"fault_sim.serial\",\
             \"duration_ns\":0,\"counters\":{\"detected\":46,\"dropped\":46,\"faults\":46,\
             \"faulty_evals\":46,\"good_evals\":1,\"lane_words\":1,\"patterns\":32},\
             \"gauges\":{\"coverage\":1},\"children\":[]}]}}"
        );
    }

    #[test]
    fn json_nonfinite_gauge_is_null() {
        let mut root = SpanNode::new("r");
        root.gauges.insert("g".into(), f64::NAN);
        let json = RunReport { root }.to_json();
        assert!(json.contains("\"g\":null"));
    }
}
