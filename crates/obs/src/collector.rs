//! The collector trait, the zero-cost null collector, and the [`Obs`]
//! cursor engines thread through their phases.

/// A sink for engine telemetry: hierarchical spans plus named counters
/// and gauges.
///
/// The trait is object-safe on purpose — every engine entry point in the
/// workspace accepts `Option<&mut dyn Collector>`, so one recorder can
/// follow a whole multi-engine run without generics leaking into public
/// signatures. Names are `&'static str` because every span and counter
/// in the toolkit is a compile-time constant; this keeps the disabled
/// path allocation-free.
///
/// Counter semantics: [`Collector::count`] *adds* `delta` to the counter
/// of that name on the innermost open span. Gauge semantics:
/// [`Collector::gauge`] *replaces* the value (last write wins). Span
/// nesting is the caller's bracket discipline: one `span_exit` per
/// `span_enter`, innermost first.
pub trait Collector {
    /// Opens a child span under the innermost open span.
    fn span_enter(&mut self, name: &'static str);

    /// Closes the innermost open span.
    fn span_exit(&mut self);

    /// Adds `delta` to counter `name` on the innermost open span.
    fn count(&mut self, name: &'static str, delta: u64);

    /// Sets gauge `name` on the innermost open span (last write wins).
    fn gauge(&mut self, name: &'static str, value: f64);
}

/// The do-nothing collector: every method body is empty and `#[inline]`,
/// so instrumented code monomorphized against it (or routed through an
/// [`Obs`] holding `None`) costs nothing after optimization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullCollector;

impl Collector for NullCollector {
    #[inline]
    fn span_enter(&mut self, _name: &'static str) {}

    #[inline]
    fn span_exit(&mut self) {}

    #[inline]
    fn count(&mut self, _name: &'static str, _delta: u64) {}

    #[inline]
    fn gauge(&mut self, _name: &'static str, _value: f64) {}
}

/// A cursor over an optional collector — the shape every instrumented
/// engine uses internally.
///
/// `Obs::new(None)` makes every method a no-op behind one branch on a
/// `None` discriminant; engines keep their hot-loop counting in local
/// integers regardless and flush through this cursor at batch
/// boundaries, so the disabled cost is unmeasurable and the enabled
/// cost is one virtual call per flushed batch.
pub struct Obs<'a> {
    inner: Option<&'a mut dyn Collector>,
    /// Spans opened through this cursor and not yet closed — lets
    /// [`Obs::close_all`] restore balance on early returns.
    depth: usize,
}

impl<'a> Obs<'a> {
    /// Wraps an optional collector.
    #[must_use]
    pub fn new(inner: Option<&'a mut dyn Collector>) -> Self {
        Obs { inner, depth: 0 }
    }

    /// A disabled cursor (same as `Obs::new(None)`).
    #[must_use]
    pub fn none() -> Self {
        Obs {
            inner: None,
            depth: 0,
        }
    }

    /// Whether a collector is attached. Lets engines skip building
    /// telemetry payloads that would be dropped anyway.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span.
    #[inline]
    pub fn enter(&mut self, name: &'static str) {
        if let Some(c) = self.inner.as_deref_mut() {
            c.span_enter(name);
            self.depth += 1;
        }
    }

    /// Closes the innermost span opened through this cursor.
    #[inline]
    pub fn exit(&mut self) {
        if let Some(c) = self.inner.as_deref_mut() {
            if self.depth > 0 {
                c.span_exit();
                self.depth -= 1;
            }
        }
    }

    /// Closes every span still open through this cursor (early-return
    /// cleanup).
    pub fn close_all(&mut self) {
        while self.depth > 0 {
            self.exit();
        }
    }

    /// Adds `delta` to counter `name` (no-op when `delta == 0` so
    /// engines can flush unconditionally).
    #[inline]
    pub fn count(&mut self, name: &'static str, delta: u64) {
        if delta != 0 {
            if let Some(c) = self.inner.as_deref_mut() {
                c.count(name, delta);
            }
        }
    }

    /// Sets gauge `name`.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        if let Some(c) = self.inner.as_deref_mut() {
            c.gauge(name, value);
        }
    }

    /// A sub-cursor borrowing the same collector — hand this to helpers
    /// that take their own `Obs` while the caller keeps the original.
    #[must_use]
    pub fn reborrow(&mut self) -> Obs<'_> {
        Obs {
            inner: match self.inner.as_deref_mut() {
                Some(c) => Some(c),
                None => None,
            },
            depth: 0,
        }
    }

    /// The raw optional collector, reborrowed — for forwarding to an
    /// entry point that takes `Option<&mut dyn Collector>`.
    #[must_use]
    pub fn as_option(&mut self) -> Option<&mut dyn Collector> {
        match self.inner.as_deref_mut() {
            Some(c) => Some(c),
            None => None,
        }
    }
}

impl Drop for Obs<'_> {
    fn drop(&mut self) {
        self.close_all();
    }
}

impl<'a> From<Option<&'a mut dyn Collector>> for Obs<'a> {
    fn from(inner: Option<&'a mut dyn Collector>) -> Self {
        Obs::new(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn null_collector_accepts_everything() {
        let mut c = NullCollector;
        c.span_enter("a");
        c.count("x", 3);
        c.gauge("g", 1.5);
        c.span_exit();
    }

    #[test]
    fn disabled_obs_is_inert() {
        let mut obs = Obs::none();
        assert!(!obs.enabled());
        obs.enter("a");
        obs.count("x", 1);
        obs.exit();
    }

    #[test]
    fn obs_drop_closes_open_spans() {
        let mut rec = Recorder::new();
        {
            let mut obs = Obs::new(Some(&mut rec));
            obs.enter("outer");
            obs.enter("inner");
            // dropped with both spans open
        }
        let report = rec.finish("run");
        assert!(report.root.find("outer").is_some());
        assert!(report.root.find("inner").is_some());
    }

    #[test]
    fn reborrow_shares_the_collector() {
        let mut rec = Recorder::new();
        let mut obs = Obs::new(Some(&mut rec));
        obs.enter("outer");
        {
            let mut sub = obs.reborrow();
            sub.enter("child");
            sub.count("k", 2);
        }
        obs.count("k", 1);
        obs.exit();
        drop(obs);
        let report = rec.finish("run");
        let outer = report.root.find("outer").unwrap();
        assert_eq!(outer.counter("k"), 1);
        assert_eq!(outer.find("child").unwrap().counter("k"), 2);
    }
}
