//! A collector that builds a [`RunReport`] span tree with wall-clock
//! durations.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::collector::Collector;
use crate::report::{RunReport, SpanNode};

struct Frame {
    node: SpanNode,
    started: Instant,
}

/// Records spans, counters, and gauges into a [`RunReport`].
///
/// Counts and gauges land on the innermost open span; before any span
/// is opened (or after all are closed) they land on the root. Durations
/// come from [`Instant`], so they are monotonic even across system
/// clock adjustments. [`Recorder::finish`] closes any spans left open
/// (an engine that aborted mid-phase still yields a well-formed tree).
pub struct Recorder {
    /// `stack[0]` is the root frame; it is never popped by `span_exit`.
    stack: Vec<Frame>,
}

impl Recorder {
    /// Starts recording; the root span's duration runs from this call
    /// to [`Recorder::finish`].
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            stack: vec![Frame {
                node: SpanNode::new(String::new()),
                started: Instant::now(),
            }],
        }
    }

    /// Closes any still-open spans, names the root, and returns the
    /// report.
    #[must_use]
    pub fn finish(mut self, run_name: &str) -> RunReport {
        while self.stack.len() > 1 {
            self.span_exit();
        }
        let mut root_frame = self.stack.pop().expect("root frame");
        root_frame.node.duration_ns = elapsed_ns(root_frame.started);
        root_frame.node.name = run_name.to_string();
        RunReport {
            root: root_frame.node,
        }
    }

    fn top(&mut self) -> &mut SpanNode {
        &mut self.stack.last_mut().expect("root frame").node
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Collector for Recorder {
    fn span_enter(&mut self, name: &'static str) {
        self.stack.push(Frame {
            node: SpanNode::new(name),
            started: Instant::now(),
        });
    }

    fn span_exit(&mut self) {
        // The root frame only closes in `finish`; a stray extra exit is
        // ignored rather than corrupting the tree.
        if self.stack.len() <= 1 {
            return;
        }
        let mut frame = self.stack.pop().expect("checked non-root");
        frame.node.duration_ns = elapsed_ns(frame.started);
        self.top().children.push(frame.node);
    }

    fn count(&mut self, name: &'static str, delta: u64) {
        let counters: &mut BTreeMap<String, u64> = &mut self.top().counters;
        let slot = counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.top().gauges.insert(name.to_string(), value);
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_nested_tree() {
        let mut rec = Recorder::new();
        rec.span_enter("sim");
        rec.count("events", 10);
        rec.span_enter("phase");
        rec.count("events", 5);
        rec.gauge("coverage", 0.25);
        rec.span_exit();
        rec.count("events", 1);
        rec.span_exit();
        rec.count("toplevel", 2);
        let report = rec.finish("run");

        assert_eq!(report.root.name, "run");
        assert_eq!(report.root.counter("toplevel"), 2);
        let sim = report.find("sim").unwrap();
        assert_eq!(sim.counter("events"), 11);
        let phase = sim.find("phase").unwrap();
        assert_eq!(phase.counter("events"), 5);
        assert_eq!(phase.gauge("coverage"), Some(0.25));
        assert_eq!(report.root.counter_total("events"), 16);
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let mut rec = Recorder::new();
        rec.span_enter("a");
        rec.span_enter("b");
        let report = rec.finish("run");
        let a = report.find("a").unwrap();
        assert_eq!(a.children.len(), 1);
        assert_eq!(a.children[0].name, "b");
    }

    #[test]
    fn extra_exit_is_ignored() {
        let mut rec = Recorder::new();
        rec.span_exit();
        rec.span_enter("a");
        rec.span_exit();
        rec.span_exit();
        rec.count("k", 1);
        let report = rec.finish("run");
        assert_eq!(report.root.counter("k"), 1);
        assert_eq!(report.root.children.len(), 1);
    }

    #[test]
    fn counts_saturate() {
        let mut rec = Recorder::new();
        rec.count("k", u64::MAX);
        rec.count("k", 5);
        let report = rec.finish("run");
        assert_eq!(report.root.counter("k"), u64::MAX);
    }

    #[test]
    fn durations_are_recorded() {
        let mut rec = Recorder::new();
        rec.span_enter("a");
        std::thread::sleep(std::time::Duration::from_millis(1));
        rec.span_exit();
        let report = rec.finish("run");
        assert!(report.find("a").unwrap().duration_ns > 0);
        assert!(report.root.duration_ns >= report.find("a").unwrap().duration_ns);
    }
}
