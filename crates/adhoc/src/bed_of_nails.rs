//! Bed-of-nails in-circuit testing (§III-B, Fig. 5).
//!
//! Probing the underside of the board gives per-net control and
//! observation: each chip is tested "independently of the other chips on
//! the board" by overdriving its input nets. The gain is *resolution* —
//! a failing in-circuit test names one chip, where an edge-connector
//! test only names a cone of candidates. The costs the paper lists —
//! extra loading, overdrive stress, fixture mechanics — are tracked as
//! counts.

use std::collections::HashSet;

use dft_fault::{Fault, FaultyView};
use dft_netlist::{GateId, LevelizeError, Netlist};
use dft_sim::PatternSet;

/// The outcome of in-circuit-testing one group ("chip") of gates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InCircuitReport {
    /// Faults of the group detected by the in-circuit patterns.
    pub detected: usize,
    /// Total faults attributed to the group.
    pub total: usize,
    /// Nets the tester had to overdrive (each is an electrical-stress
    /// exposure the paper warns about).
    pub overdriven_nets: usize,
    /// Nails used (input nets + observed output).
    pub nails_used: usize,
}

impl InCircuitReport {
    /// Detected / total.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// In-circuit-tests one group of gates: nails overdrive every net feeding
/// the group, every group-internal fault is checked by exhaustively
/// driving the group's input nets and observing its output nails.
///
/// `group` lists the gate ids of the "chip"; `faults` is the board fault
/// list (faults outside the group are ignored).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the group's external fan-in exceeds 20 nets (the exhaustive
/// drive would be too wide — split the chip).
pub fn in_circuit_test(
    board: &Netlist,
    group: &[GateId],
    faults: &[Fault],
) -> Result<InCircuitReport, LevelizeError> {
    board.levelize()?;
    let members: HashSet<GateId> = group.iter().copied().collect();
    // External nets feeding the group = overdriven by nails.
    let mut ext_inputs: Vec<GateId> = Vec::new();
    for &g in group {
        for &src in board.gate(g).inputs() {
            if !members.contains(&src) && !ext_inputs.contains(&src) {
                ext_inputs.push(src);
            }
        }
    }
    assert!(
        ext_inputs.len() <= 20,
        "group fan-in {} too wide for exhaustive in-circuit drive",
        ext_inputs.len()
    );
    // Outputs: group nets read outside the group, or marked as POs.
    let outputs: Vec<GateId> = {
        let fanout = board.fanout_map();
        group
            .iter()
            .copied()
            .filter(|&g| {
                fanout[g.index()]
                    .iter()
                    .any(|&(r, _)| !members.contains(&r))
                    || board.primary_outputs().iter().any(|&(o, _)| o == g)
                    || fanout[g.index()].is_empty()
            })
            .collect()
    };

    // Build the extracted chip netlist: ext inputs become PIs, group
    // gates are copied, outputs marked.
    let mut chip = Netlist::new("chip");
    let mut map: std::collections::HashMap<GateId, GateId> = std::collections::HashMap::new();
    for (i, &src) in ext_inputs.iter().enumerate() {
        map.insert(src, chip.add_input(format!("nail{i}")));
    }
    // Copy group gates in levelized order so drivers exist first.
    let lv = board.levelize()?;
    for &id in lv.order() {
        if !members.contains(&id) {
            continue;
        }
        let gate = board.gate(id);
        let ins: Vec<GateId> = gate.inputs().iter().map(|s| map[s]).collect();
        let new_id = chip
            .add_gate(gate.kind(), &ins)
            .expect("arity preserved from a valid board");
        map.insert(id, new_id);
    }
    for (k, &o) in outputs.iter().enumerate() {
        chip.mark_output(map[&o], format!("out{k}"))
            .expect("fresh names");
    }

    // Translate the group's faults and test exhaustively.
    let chip_faults: Vec<Fault> = faults
        .iter()
        .filter(|f| members.contains(&f.site.gate))
        .map(|f| Fault {
            site: dft_netlist::PortRef {
                gate: map[&f.site.gate],
                pin: f.site.pin,
            },
            stuck: f.stuck,
        })
        .collect();
    let k = ext_inputs.len();
    let rows: Vec<Vec<bool>> = (0..1usize << k)
        .map(|v| (0..k).map(|b| v >> b & 1 == 1).collect())
        .collect();
    let p = PatternSet::from_rows(k, &rows);
    let r = dft_fault::simulate(&chip, &p, &chip_faults)?;

    Ok(InCircuitReport {
        detected: r.detected_count(),
        total: chip_faults.len(),
        overdriven_nets: ext_inputs
            .iter()
            .filter(|&&s| !board.gate(s).kind().is_source())
            .count(),
        nails_used: ext_inputs.len() + outputs.len(),
    })
}

/// Edge-connector diagnosis: given a fault observed at the board's
/// primary outputs, the candidate set is the union of the failing
/// outputs' fan-in cones — the coarse resolution in-circuit testing
/// improves on.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn edge_connector_candidates(
    board: &Netlist,
    fault: Fault,
    patterns: &PatternSet,
) -> Result<Vec<GateId>, LevelizeError> {
    let view = FaultyView::new(board)?;
    let state = vec![0u64; view.storage().len()];
    let outs: Vec<GateId> = board.primary_outputs().iter().map(|&(g, _)| g).collect();
    let mut failing: HashSet<GateId> = HashSet::new();
    for b in 0..patterns.block_count() {
        let lanes = patterns.lanes_in_block(b);
        let mask = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let good = view.eval_block(patterns.block(b), &state, None);
        let bad = view.eval_block(patterns.block(b), &state, Some(fault));
        for &o in &outs {
            if (good[o.index()] ^ bad[o.index()]) & mask != 0 {
                failing.insert(o);
            }
        }
    }
    // Union of fan-in cones.
    let mut cone: HashSet<GateId> = HashSet::new();
    let mut stack: Vec<GateId> = failing.into_iter().collect();
    while let Some(g) = stack.pop() {
        if !cone.insert(g) {
            continue;
        }
        for &src in board.gate(g).inputs() {
            stack.push(src);
        }
    }
    let mut v: Vec<GateId> = cone.into_iter().collect();
    v.sort_unstable();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::universe;
    use dft_netlist::circuits::c17;
    use dft_netlist::PortRef;

    #[test]
    fn per_gate_in_circuit_tests_cover_everything() {
        let board = c17();
        let faults = universe(&board);
        let logic: Vec<GateId> = board
            .ids()
            .filter(|&id| !board.gate(id).kind().is_source())
            .collect();
        let mut total_detected = 0;
        let mut total = 0;
        for &g in &logic {
            let r = in_circuit_test(&board, &[g], &faults).unwrap();
            assert_eq!(r.coverage(), 1.0, "gate {g} not fully covered in-circuit");
            total_detected += r.detected;
            total += r.total;
        }
        assert_eq!(total_detected, total);
    }

    #[test]
    fn resolution_beats_edge_connector() {
        let board = c17();
        let faults = universe(&board);
        // Fault deep inside: first-level NAND output stuck.
        let lv = board.levelize().unwrap();
        let internal = board
            .ids()
            .find(|&id| !board.gate(id).kind().is_source() && lv.level(id) == 1)
            .unwrap();
        let fault = Fault::stuck_at_1(PortRef::output(internal));
        let rows: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        let p = PatternSet::from_rows(5, &rows);
        let edge = edge_connector_candidates(&board, fault, &p).unwrap();
        assert!(
            edge.len() >= 4,
            "edge diagnosis blames a whole cone: {edge:?}"
        );
        // In-circuit: the one-gate group test fails exactly for that chip.
        let r = in_circuit_test(&board, &[internal], &faults).unwrap();
        assert!(r.detected > 0, "the chip's own test catches it");
        assert_eq!(r.nails_used, 2 + 1, "two input nails + one output nail");
    }

    #[test]
    fn overdrive_exposure_is_counted() {
        let board = c17();
        let faults = universe(&board);
        let lv = board.levelize().unwrap();
        // A second-level NAND reads internal nets: both must be overdriven.
        let deep = board
            .ids()
            .find(|&id| !board.gate(id).kind().is_source() && lv.level(id) >= 2)
            .unwrap();
        let r = in_circuit_test(&board, &[deep], &faults).unwrap();
        assert!(r.overdriven_nets >= 1);
    }

    #[test]
    fn multi_gate_groups_work() {
        let board = c17();
        let faults = universe(&board);
        let logic: Vec<GateId> = board
            .ids()
            .filter(|&id| !board.gate(id).kind().is_source())
            .collect();
        let r = in_circuit_test(&board, &logic, &faults).unwrap();
        assert_eq!(r.total, faults.len() - 10); // all but the 5 PI stems ×2
        assert_eq!(r.coverage(), 1.0);
    }
}
