//! CLEAR/PRESET test points for predictability (§III-B).
//!
//! "A CLEAR or PRESET function for all memory elements can be used. Thus
//! the sequential machine can be put into a known state with very few
//! patterns." This transform adds a synchronous clear (or preset) line
//! gating every storage element's data input — one pin that converts an
//! unresettable machine (state forever X) into one the tester can
//! initialize in a single clock.

use dft_netlist::{GateId, GateKind, LevelizeError, Netlist};

use crate::names::fresh_input;

/// Which known state the line forces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResetKind {
    /// All storage to 0 (CLEAR).
    Clear,
    /// All storage to 1 (PRESET).
    Preset,
}

/// Adds a synchronous CLEAR/PRESET input `rst` to every storage element:
/// with `rst` = 1, the next clock captures the forced value; with
/// `rst` = 0 behaviour is unchanged. Returns the modified netlist and
/// the reset input.
///
/// Cost: one pin, one inverter, and one gate per storage element
/// (AND for clear, OR for preset).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn add_reset(netlist: &Netlist, kind: ResetKind) -> Result<(Netlist, GateId), LevelizeError> {
    netlist.levelize()?;
    let mut out = netlist.clone();
    out.set_name(format!("{}_rst", netlist.name()));
    let rst = fresh_input(&mut out, "rst");
    match kind {
        ResetKind::Clear => {
            let rst_n = out.add_gate(GateKind::Not, &[rst]).expect("valid");
            for dff in out.storage_elements() {
                let d = out.gate(dff).inputs()[0];
                let gated = out.add_gate(GateKind::And, &[d, rst_n]).expect("valid");
                out.reconnect_input(dff, 0, gated).expect("valid pin");
            }
        }
        ResetKind::Preset => {
            for dff in out.storage_elements() {
                let d = out.gate(dff).inputs()[0];
                let gated = out.add_gate(GateKind::Or, &[d, rst]).expect("valid");
                out.reconnect_input(dff, 0, gated).expect("valid pin");
            }
        }
    }
    Ok((out, rst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::{sequential, universe};
    use dft_netlist::circuits::binary_counter;
    use dft_sim::{Logic, SequentialSim};
    use dft_testability::{analyze, INFINITE};

    #[test]
    fn one_clock_initializes_the_machine() {
        let n = binary_counter(4);
        let (with_rst, _) = add_reset(&n, ResetKind::Clear).unwrap();
        let mut sim = SequentialSim::new(&with_rst).unwrap();
        // Inputs are (en, rst). From all-X, one reset clock lands at 0.
        assert!(sim.state().iter().all(|&v| v == Logic::X));
        sim.step(&[Logic::Zero, Logic::One]);
        assert!(sim.state().iter().all(|&v| v == Logic::Zero));
        // And the counter then counts normally.
        sim.step(&[Logic::One, Logic::Zero]);
        assert_eq!(sim.state()[0], Logic::One);
    }

    #[test]
    fn preset_forces_ones() {
        let n = binary_counter(3);
        let (with_rst, _) = add_reset(&n, ResetKind::Preset).unwrap();
        let mut sim = SequentialSim::new(&with_rst).unwrap();
        sim.step(&[Logic::Zero, Logic::One]);
        assert!(sim.state().iter().all(|&v| v == Logic::One));
    }

    #[test]
    fn scoap_controllability_becomes_finite() {
        // The unresettable counter's state costs INFINITE to control;
        // with CLEAR the fixpoint converges to finite values.
        let n = binary_counter(4);
        let before = analyze(&n).unwrap();
        let q0 = n.find_output("q0").unwrap();
        assert_eq!(before.cc0(q0), INFINITE);

        let (with_rst, _) = add_reset(&n, ResetKind::Clear).unwrap();
        let after = analyze(&with_rst).unwrap();
        let q0r = with_rst.find_output("q0").unwrap();
        assert!(after.cc0(q0r) < INFINITE, "CLEAR makes 0 reachable");
        assert!(after.cc1(q0r) < INFINITE, "…and counting makes 1 reachable");
    }

    #[test]
    fn sequential_testing_starts_working() {
        // The paper's point end to end: the raw counter is untestable by
        // sequences (state never initializes); with CLEAR, a reset-then-
        // count sequence detects real coverage.
        let n = binary_counter(4);
        let faults = universe(&n);
        let seq: Vec<Vec<Logic>> = std::iter::repeat_n(vec![Logic::One], 40).collect();
        let raw = sequential(&n, &seq, &faults).unwrap();
        assert_eq!(raw.detected_count(), 0);

        let (with_rst, _) = add_reset(&n, ResetKind::Clear).unwrap();
        let faults2 = universe(&with_rst);
        let mut seq2: Vec<Vec<Logic>> = vec![vec![Logic::Zero, Logic::One]]; // reset
        seq2.extend(std::iter::repeat_n(vec![Logic::One, Logic::Zero], 40)); // count
        let fixed = sequential(&with_rst, &seq2, &faults2).unwrap();
        assert!(
            fixed.coverage() > 0.5,
            "reset + counting must reach real coverage ({:.2})",
            fixed.coverage()
        );
    }

    #[test]
    fn functional_behaviour_preserved_with_rst_low() {
        let n = binary_counter(3);
        let (with_rst, _) = add_reset(&n, ResetKind::Clear).unwrap();
        let mut a = SequentialSim::new(&n).unwrap();
        let mut b = SequentialSim::new(&with_rst).unwrap();
        a.reset_to(Logic::Zero);
        b.reset_to(Logic::Zero);
        for i in 0..12 {
            let en = Logic::from(i % 3 != 0);
            let oa = a.step(&[en]);
            let ob = b.step(&[en, Logic::Zero]);
            assert_eq!(oa, ob, "cycle {i}");
        }
    }

    #[test]
    fn cost_is_one_gate_per_latch_plus_inverter() {
        let n = binary_counter(5);
        let (with_rst, _) = add_reset(&n, ResetKind::Clear).unwrap();
        assert_eq!(with_rst.logic_gate_count(), n.logic_gate_count() + 5 + 1);
        let (with_pre, _) = add_reset(&n, ResetKind::Preset).unwrap();
        assert_eq!(with_pre.logic_gate_count(), n.logic_gate_count() + 5);
    }
}
