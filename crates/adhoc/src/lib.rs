//! # dft-adhoc
//!
//! Ad-hoc Design for Testability — §III of Williams & Parker: techniques
//! "applied to a given product … not directed at solving the general
//! sequential problem", usually at the board level.
//!
//! * [`degating`] — logical partitioning with degate/control lines
//!   (Figs. 2–3), including the classic free-running-oscillator block.
//! * [`test_points`] — extra controllability/observability pins chosen
//!   by testability analysis (Fig. 4, §II).
//! * [`bus`] — bus-architecture boards with tri-state module isolation
//!   (Fig. 6) and the bus-fault diagnosis ambiguity the paper warns
//!   about.
//! * [`signature_board`] — board-level Signature Analysis sessions
//!   (Figs. 7–8): golden signatures per net, kernel-first probing,
//!   closed-loop breaking.
//! * [`bed_of_nails`] — in-circuit testing with per-group resolution
//!   (Fig. 5) versus edge-connector ambiguity.

#![forbid(unsafe_code)]

pub mod bed_of_nails;
pub mod bus;
pub mod degating;
mod names;
pub mod reset;
pub mod signature_board;
pub mod test_points;

pub use bed_of_nails::{edge_connector_candidates, in_circuit_test, InCircuitReport};
pub use bus::{BusBoard, BusModule};
pub use degating::{block_oscillator, insert_degating, Degated};
pub use reset::{add_reset, ResetKind};
pub use signature_board::{break_loop, SignatureDiagnosis, SignatureSession};
pub use test_points::{
    apply_decoder_control, apply_test_points, select_test_points, TestPointPlan,
};
