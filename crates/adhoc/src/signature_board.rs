//! Board-level Signature Analysis sessions (§III-D, Figs. 7–8).
//!
//! The board stimulates itself (a kernel — counter/processor — drives
//! the rest); the tester synchronizes an external signature register to
//! the board clock, probes one net at a time for a fixed number of
//! cycles, and compares the residue against a golden signature. Faulty-
//! module localization walks upstream from bad signatures — which is why
//! "closed-loop paths must be broken at the board level".

use std::collections::HashSet;

use dft_fault::{Fault, FaultyView};
use dft_lfsr::{Polynomial, SignatureRegister};
use dft_netlist::{GateId, LevelizeError, Netlist};

/// A probing session over a self-stimulating board.
///
/// The board is reset (all storage to 0 — "the board must also have some
/// initialization, so that its response will be repeated"), primary
/// inputs are held low, and every net's bit stream over `cycles` clocks
/// is compressed through a 16-bit signature register.
#[derive(Debug)]
pub struct SignatureSession<'n> {
    board: &'n Netlist,
    cycles: usize,
}

/// The result of diagnosing a failing board.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignatureDiagnosis {
    /// Nets whose signature differs from golden.
    pub bad_nets: Vec<GateId>,
    /// Most-upstream bad nets (bad nets all of whose drivers are good):
    /// the place to start replacing hardware. Empty when the fault hides
    /// inside a closed loop.
    pub suspects: Vec<GateId>,
    /// Whether the bad region includes a closed loop (all members
    /// upstream of each other — the ambiguity the paper's loop-breaking
    /// rule removes).
    pub loop_ambiguity: bool,
}

impl<'n> SignatureSession<'n> {
    /// Creates a session probing `board` for `cycles` clocks.
    #[must_use]
    pub fn new(board: &'n Netlist, cycles: usize) -> Self {
        SignatureSession { board, cycles }
    }

    fn signatures(&self, fault: Option<Fault>) -> Result<Vec<u64>, LevelizeError> {
        let view = FaultyView::new(self.board)?;
        let poly = Polynomial::primitive(16).expect("table entry");
        let mut regs: Vec<SignatureRegister> =
            vec![SignatureRegister::new(poly); self.board.gate_count()];
        let pi_words = vec![0u64; self.board.primary_inputs().len()];
        let mut state = vec![0u64; view.storage().len()];
        for _ in 0..self.cycles {
            let vals = view.eval_block(&pi_words, &state, fault);
            for (i, reg) in regs.iter_mut().enumerate() {
                reg.shift_in(vals[i] & 1 == 1);
            }
            state = view.next_state_words(&vals, fault);
        }
        Ok(regs.into_iter().map(|r| r.signature()).collect())
    }

    /// Golden (good machine) signature of every net.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn golden_signatures(&self) -> Result<Vec<u64>, LevelizeError> {
        self.signatures(None)
    }

    /// Probes every net of the board with `fault` present and diagnoses:
    /// bad nets, most-upstream suspects, loop ambiguity.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn diagnose(&self, fault: Fault) -> Result<SignatureDiagnosis, LevelizeError> {
        let golden = self.signatures(None)?;
        let faulty = self.signatures(Some(fault))?;
        let bad: HashSet<GateId> = self
            .board
            .ids()
            .filter(|id| golden[id.index()] != faulty[id.index()])
            .collect();
        // Suspects: bad nets whose every driver net is good. (DFF edges
        // count: an upstream corrupted state would make the driver bad.)
        let mut suspects: Vec<GateId> = bad
            .iter()
            .copied()
            .filter(|&id| {
                self.board
                    .gate(id)
                    .inputs()
                    .iter()
                    .all(|src| !bad.contains(src))
            })
            .collect();
        suspects.sort_unstable();
        let mut bad_nets: Vec<GateId> = bad.iter().copied().collect();
        bad_nets.sort_unstable();
        let loop_ambiguity = suspects.is_empty() && !bad_nets.is_empty();
        Ok(SignatureDiagnosis {
            bad_nets,
            suspects,
            loop_ambiguity,
        })
    }
}

/// Breaks a closed loop: every reader of `net` is re-routed to a fresh
/// "jumper" primary input (the paper's "extra jumpers, in order to break
/// closed loops on the board"), which the tester drives with a known
/// stream (held low in this model).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if `net` is foreign to `board`.
pub fn break_loop(board: &Netlist, net: GateId) -> Result<Netlist, LevelizeError> {
    board.levelize()?;
    assert!(net.index() < board.gate_count(), "net out of range");
    let mut out = board.clone();
    out.set_name(format!("{}_jumpered", board.name()));
    let fanout = out.fanout_map();
    let jumper = out.add_input("jumper0");
    for &(reader, pin) in &fanout[net.index()] {
        out.reconnect_input(reader, pin as usize, jumper)
            .expect("valid pin");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::{GateKind, PortRef};

    /// A self-stimulating board: a 3-bit counter kernel drives two
    /// downstream "modules"; one module closes a feedback loop through a
    /// DFF (the accumulator).
    fn board() -> Netlist {
        let mut n = Netlist::new("sa_board");
        let one = n.add_const(true);
        // Kernel: 3-bit counter, always enabled.
        let ph = n.add_const(false);
        let q0 = n.add_dff(ph).unwrap();
        let q1 = n.add_dff(ph).unwrap();
        let q2 = n.add_dff(ph).unwrap();
        let d0 = n.add_gate(GateKind::Xor, &[q0, one]).unwrap();
        let c1 = n.add_gate(GateKind::And, &[one, q0]).unwrap();
        let d1 = n.add_gate(GateKind::Xor, &[q1, c1]).unwrap();
        let c2 = n.add_gate(GateKind::And, &[c1, q1]).unwrap();
        let d2 = n.add_gate(GateKind::Xor, &[q2, c2]).unwrap();
        n.reconnect_input(q0, 0, d0).unwrap();
        n.reconnect_input(q1, 0, d1).unwrap();
        n.reconnect_input(q2, 0, d2).unwrap();
        // Module A (combinational): parity of the count.
        let pa = n.add_gate(GateKind::Xor, &[q0, q1]).unwrap();
        let pb = n.add_gate(GateKind::Xor, &[pa, q2]).unwrap();
        n.mark_output(pb, "parity").unwrap();
        // Module B: accumulator loop acc ^= q1.
        let accp = n.add_const(false);
        let acc = n.add_dff(accp).unwrap();
        let nacc = n.add_gate(GateKind::Xor, &[acc, q1]).unwrap();
        n.reconnect_input(acc, 0, nacc).unwrap();
        n.mark_output(acc, "acc").unwrap();
        n
    }

    #[test]
    fn golden_signatures_are_reproducible_and_nontrivial() {
        let b = board();
        let s = SignatureSession::new(&b, 50);
        let g1 = s.golden_signatures().unwrap();
        let g2 = s.golden_signatures().unwrap();
        assert_eq!(g1, g2);
        // Active nets have nonzero signatures.
        let parity = b.find_output("parity").unwrap();
        assert_ne!(g1[parity.index()], 0);
    }

    #[test]
    fn fault_outside_loops_localizes_to_one_suspect() {
        let b = board();
        let s = SignatureSession::new(&b, 50);
        // Fault on module A's first XOR output.
        let pa = b.find_output("parity").unwrap();
        let xor_a = b.gate(pa).inputs()[0];
        let fault = Fault::stuck_at_0(PortRef::output(xor_a));
        let diag = s.diagnose(fault).unwrap();
        assert!(!diag.loop_ambiguity);
        assert_eq!(
            diag.suspects,
            vec![xor_a],
            "kernel-first probing pinpoints it"
        );
        assert!(diag.bad_nets.contains(&pa));
    }

    #[test]
    fn fault_inside_loop_is_ambiguous_until_broken() {
        let b = board();
        let s = SignatureSession::new(&b, 50);
        let acc = b.find_output("acc").unwrap();
        let nacc = b.gate(acc).inputs()[0]; // XOR inside the loop
        let fault = Fault::stuck_at_1(PortRef::input(nacc, 0));
        let diag = s.diagnose(fault).unwrap();
        assert!(
            diag.loop_ambiguity,
            "every loop member has a bad upstream: {diag:?}"
        );
        // Break the loop at the accumulator output.
        let jumpered = break_loop(&b, acc).unwrap();
        // Same fault site re-homed (gate ids are stable under the clone).
        let s2 = SignatureSession::new(&jumpered, 50);
        let diag2 = s2.diagnose(fault).unwrap();
        assert!(!diag2.loop_ambiguity);
        assert_eq!(
            diag2.suspects,
            vec![nacc],
            "after loop breaking the XOR is isolated"
        );
    }

    #[test]
    fn good_board_diagnoses_clean() {
        let b = board();
        let s = SignatureSession::new(&b, 30);
        // A fault on a net with no activity influence: stuck-at the value
        // the net already always holds — e.g. const-1 net stuck at 1 is
        // not in the universe; instead diagnose an undetected fault:
        // stuck-at-1 on the always-1 carry-in AND's const side has no
        // effect… simplest: a fault whose effect never reaches any net
        // difference. Use the parity XOR stuck at its actual stream? Not
        // constructible generically — so instead check the degenerate
        // empty-cycles session.
        let s0 = SignatureSession::new(&b, 0);
        let parity = b.find_output("parity").unwrap();
        let fault = Fault::stuck_at_0(PortRef::output(parity));
        let diag = s0.diagnose(fault).unwrap();
        assert!(diag.bad_nets.is_empty(), "no cycles, no evidence");
        assert!(!diag.loop_ambiguity);
        let _ = s;
    }
}
