//! Bus-architecture boards (§III-C, Fig. 6).
//!
//! "If there is external access to the data bus and three of the four
//! modules can be turned off the data bus … then the data bus could be
//! used to drive the fourth module, as if it were a primary input … to
//! that particular module."

use dft_fault::{simulate, universe, DetectionResult};
use dft_netlist::{LevelizeError, Netlist};
use dft_sim::PatternSet;

/// One module on the bus: a netlist whose primary inputs are fed from
/// the bus and whose primary outputs can drive the bus through tri-state
/// drivers.
#[derive(Clone, Debug)]
pub struct BusModule {
    /// The module's logic.
    pub netlist: Netlist,
    /// Display name (e.g. "RAM", "I/O controller").
    pub name: String,
}

/// A microcomputer-style board: several modules sharing a bus, with
/// external access and per-module output enables.
#[derive(Clone, Debug)]
pub struct BusBoard {
    modules: Vec<BusModule>,
    bus_width: usize,
}

impl BusBoard {
    /// Creates a board. Every module must have at most `bus_width`
    /// inputs and outputs (they connect through the bus).
    ///
    /// # Panics
    ///
    /// Panics if a module's port widths exceed the bus width.
    #[must_use]
    pub fn new(bus_width: usize, modules: Vec<BusModule>) -> Self {
        for m in &modules {
            assert!(
                m.netlist.primary_inputs().len() <= bus_width,
                "{}: too many inputs for the bus",
                m.name
            );
            assert!(
                m.netlist.primary_outputs().len() <= bus_width,
                "{}: too many outputs for the bus",
                m.name
            );
        }
        BusBoard { modules, bus_width }
    }

    /// The modules.
    #[must_use]
    pub fn modules(&self) -> &[BusModule] {
        &self.modules
    }

    /// Bus width.
    #[must_use]
    pub fn bus_width(&self) -> usize {
        self.bus_width
    }

    /// Tests one module in isolation: all other drivers are tri-stated,
    /// the tester drives the bus into the module and observes its
    /// response — the module is tested "as if [the bus] were a primary
    /// input (or primary output)".
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn test_module(
        &self,
        index: usize,
        patterns: &PatternSet,
    ) -> Result<DetectionResult, LevelizeError> {
        let m = &self.modules[index];
        let faults = universe(&m.netlist);
        simulate(&m.netlist, patterns, &faults)
    }

    /// The paper's N³ economics: testing modules one at a time costs
    /// Σ nᵢ³ instead of (Σ nᵢ)³. Returns `(monolithic, partitioned)`
    /// in arbitrary work units.
    #[must_use]
    pub fn divide_and_conquer_work(&self) -> (f64, f64) {
        let sizes: Vec<f64> = self
            .modules
            .iter()
            .map(|m| m.netlist.logic_gate_count() as f64)
            .collect();
        let total: f64 = sizes.iter().sum();
        let monolithic = total.powi(3);
        let partitioned = sizes.iter().map(|s| s.powi(3)).sum();
        (monolithic, partitioned)
    }

    /// Diagnoses a stuck bus line: "If a bus wire is stuck, any module or
    /// the bus trace itself may be the culprit." Voltage-level testing
    /// cannot resolve further, so the candidate set is every module
    /// attached to that line plus the trace.
    #[must_use]
    pub fn diagnose_stuck_bus_line(&self, line: usize) -> Vec<String> {
        let mut candidates: Vec<String> = self
            .modules
            .iter()
            .filter(|m| {
                m.netlist.primary_outputs().len() > line || m.netlist.primary_inputs().len() > line
            })
            .map(|m| m.name.clone())
            .collect();
        candidates.push("bus trace".to_owned());
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::{comparator, parity_tree};

    fn fig6_board() -> BusBoard {
        // Four modules on an 8-bit bus, echoing Fig. 6's µP/ROM/RAM/IO.
        BusBoard::new(
            9,
            vec![
                BusModule {
                    netlist: parity_tree(8),
                    name: "processor-checker".into(),
                },
                BusModule {
                    netlist: parity_tree(7),
                    name: "rom-checker".into(),
                },
                BusModule {
                    netlist: comparator(4),
                    name: "ram-compare".into(),
                },
                BusModule {
                    netlist: parity_tree(6),
                    name: "io-controller".into(),
                },
            ],
        )
    }

    #[test]
    fn isolated_module_is_fully_testable() {
        let board = fig6_board();
        for (i, m) in board.modules().iter().enumerate() {
            let k = m.netlist.primary_inputs().len();
            let rows: Vec<Vec<bool>> = (0..1usize << k)
                .map(|v| (0..k).map(|b| v >> b & 1 == 1).collect())
                .collect();
            let p = PatternSet::from_rows(k, &rows);
            let r = board.test_module(i, &p).unwrap();
            assert_eq!(r.coverage(), 1.0, "module {} not covered", m.name);
        }
    }

    #[test]
    fn divide_and_conquer_cuts_the_cubic_cost() {
        let board = fig6_board();
        let (mono, part) = board.divide_and_conquer_work();
        assert!(
            mono / part > 8.0,
            "partitioning must win by ≥ 8× (got {:.1})",
            mono / part
        );
    }

    #[test]
    fn halving_a_board_divides_work_by_four_total_eight_each() {
        // The paper: "this would reduce the test generation and fault
        // simulation tasks by 8 for two boards" — each half costs
        // (N/2)³ = N³/8.
        let whole = 1000f64;
        let half = (whole / 2.0).powi(3);
        assert!((half * 8.0 - whole.powi(3)).abs() < 1e-6);
    }

    #[test]
    fn stuck_bus_line_is_ambiguous() {
        let board = fig6_board();
        let candidates = board.diagnose_stuck_bus_line(0);
        assert!(
            candidates.len() > 2,
            "voltage testing cannot resolve a stuck bus: {candidates:?}"
        );
        assert!(candidates.contains(&"bus trace".to_owned()));
    }

    #[test]
    #[should_panic(expected = "too many inputs")]
    fn oversized_module_is_rejected() {
        let _ = BusBoard::new(
            2,
            vec![BusModule {
                netlist: parity_tree(8),
                name: "too-wide".into(),
            }],
        );
    }
}
