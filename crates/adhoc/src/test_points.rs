//! Test points: extra pins for controllability and observability
//! (§III-B, Fig. 4), selected by testability analysis (§II).

use dft_netlist::{GateId, GateKind, LevelizeError, Netlist};
use dft_testability::analyze;

use crate::names::{fresh_indexed_input, fresh_indexed_output, fresh_input};

/// A plan of observation and control points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestPointPlan {
    /// Nets to expose as extra primary outputs.
    pub observe: Vec<GateId>,
    /// Nets to make externally drivable (via a test-mode multiplexer).
    pub control: Vec<GateId>,
}

impl TestPointPlan {
    /// Total pins the plan costs (one per observation, one per control,
    /// plus the shared test-enable).
    #[must_use]
    pub fn pin_cost(&self) -> usize {
        let ctl_enable = usize::from(!self.control.is_empty());
        self.observe.len() + self.control.len() + ctl_enable
    }
}

/// Selects the `k_observe` hardest-to-observe and `k_control`
/// hardest-to-control nets as test-point candidates — "test points may be
/// added at critical points which are not observable or which are not
/// controllable" (§II).
///
/// Primary inputs/outputs and constants are excluded (they already have
/// pins).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn select_test_points(
    netlist: &Netlist,
    k_observe: usize,
    k_control: usize,
) -> Result<TestPointPlan, LevelizeError> {
    let report = analyze(netlist)?;
    let eligible = |id: GateId| {
        let g = netlist.gate(id);
        !matches!(
            g.kind(),
            GateKind::Input | GateKind::Const0 | GateKind::Const1
        ) && !netlist.primary_outputs().iter().any(|&(o, _)| o == id)
    };
    let observe: Vec<GateId> = report
        .hardest_to_observe(netlist.gate_count())
        .into_iter()
        .filter(|&id| eligible(id))
        .take(k_observe)
        .collect();
    let control: Vec<GateId> = report
        .hardest_to_control(netlist.gate_count())
        .into_iter()
        .filter(|&id| eligible(id))
        .take(k_control)
        .collect();
    Ok(TestPointPlan { observe, control })
}

/// Applies a test-point plan: observation nets become primary outputs
/// `tp_obs<i>`; control nets get a test-mode multiplexer (shared enable
/// `tp_en`, per-point value `tp_val<i>`).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if a planned net is foreign to `netlist`.
pub fn apply_test_points(
    netlist: &Netlist,
    plan: &TestPointPlan,
) -> Result<Netlist, LevelizeError> {
    netlist.levelize()?;
    let mut out = netlist.clone();
    out.set_name(format!("{}_tp", netlist.name()));
    let mut obs_index = 0usize;
    for &net in &plan.observe {
        let name = fresh_indexed_output(&out, "tp_obs", &mut obs_index);
        out.mark_output(net, name).expect("fresh test-point names");
    }
    if !plan.control.is_empty() {
        let fanout = out.fanout_map();
        let en = fresh_input(&mut out, "tp_en");
        let en_n = out.add_gate(GateKind::Not, &[en]).expect("valid");
        let mut val_index = 0usize;
        for &net in &plan.control {
            let val = fresh_indexed_input(&mut out, "tp_val", &mut val_index);
            let keep = out.add_gate(GateKind::And, &[net, en_n]).expect("valid");
            let force = out.add_gate(GateKind::And, &[val, en]).expect("valid");
            let mux = out.add_gate(GateKind::Or, &[keep, force]).expect("valid");
            for &(reader, pin) in &fanout[net.index()] {
                out.reconnect_input(reader, pin as usize, mux)
                    .expect("valid pin");
            }
        }
    }
    Ok(out)
}

/// The decoder control-point scheme of §III-B: "a pin which, in one
/// mode, implies system operation, and in another mode takes N inputs
/// and gates them to a decoder. The 2ᴺ outputs of the decoder are used
/// to control certain nets."
///
/// Controls up to `2ᴺ − 1` nets through `N` address pins plus one mode
/// pin — far cheaper in pins than one mux-value pin per net. Address 0
/// is reserved as "force nothing"; address `k ≥ 1` forces net `k − 1`
/// high while the mode pin is asserted.
///
/// Returns `(netlist, mode pin, address pins)`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if `nets` is empty, exceeds 2¹⁶ − 1, or references a foreign
/// gate.
pub fn apply_decoder_control(
    netlist: &Netlist,
    nets: &[GateId],
) -> Result<(Netlist, GateId, Vec<GateId>), LevelizeError> {
    netlist.levelize()?;
    assert!(!nets.is_empty(), "need at least one controlled net");
    let address_bits = usize::BITS as usize - (nets.len()).leading_zeros() as usize;
    assert!(address_bits <= 16, "too many controlled nets");

    let mut out = netlist.clone();
    out.set_name(format!("{}_dec_tp", netlist.name()));
    for &net in nets {
        assert!(net.index() < netlist.gate_count(), "net out of range");
    }
    let fanout = out.fanout_map();
    let mode = fresh_input(&mut out, "tp_mode");
    let mut addr_index = 0usize;
    let addr: Vec<GateId> = (0..address_bits)
        .map(|_| fresh_indexed_input(&mut out, "tp_addr", &mut addr_index))
        .collect();
    let addr_n: Vec<GateId> = addr
        .iter()
        .map(|&a| out.add_gate(GateKind::Not, &[a]).expect("valid"))
        .collect();

    for (k, &net) in nets.iter().enumerate() {
        let code = k + 1; // address 0 = no forcing
        let mut term: Vec<GateId> = vec![mode];
        for (bit, (&a, &an)) in addr.iter().zip(&addr_n).enumerate() {
            term.push(if code >> bit & 1 == 1 { a } else { an });
        }
        let select = out.add_gate(GateKind::And, &term).expect("valid");
        let forced = out.add_gate(GateKind::Or, &[net, select]).expect("valid");
        for &(reader, pin) in &fanout[net.index()] {
            out.reconnect_input(reader, pin as usize, forced)
                .expect("valid pin");
        }
    }
    Ok((out, mode, addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_atpg::{generate_tests, AtpgConfig};
    use dft_fault::universe;
    use dft_netlist::circuits::random_combinational;
    use dft_testability::analyze;

    #[test]
    fn selection_avoids_ports_and_constants() {
        let n = random_combinational(8, 60, 17);
        let plan = select_test_points(&n, 4, 4).unwrap();
        assert_eq!(plan.observe.len(), 4);
        assert_eq!(plan.control.len(), 4);
        for &id in plan.observe.iter().chain(&plan.control) {
            assert!(!n.gate(id).kind().is_source());
        }
        assert_eq!(plan.pin_cost(), 9);
    }

    #[test]
    fn observation_points_reduce_total_difficulty() {
        let n = random_combinational(8, 120, 23);
        let before = analyze(&n).unwrap().total_difficulty();
        let plan = select_test_points(&n, 6, 0).unwrap();
        let improved = apply_test_points(&n, &plan).unwrap();
        let after = analyze(&improved).unwrap().total_difficulty();
        assert!(
            after < before,
            "observability pins must lower difficulty ({after} vs {before})"
        );
    }

    #[test]
    fn functional_behaviour_is_preserved_with_enable_low() {
        use dft_sim::{ParallelSim, PatternSet};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = random_combinational(6, 40, 29);
        let plan = select_test_points(&n, 2, 2).unwrap();
        let improved = apply_test_points(&n, &plan).unwrap();
        let sim_old = ParallelSim::new(&n).unwrap();
        let sim_new = ParallelSim::new(&improved).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let p_old = PatternSet::random(6, 64, &mut rng);
        let extra = improved.primary_inputs().len() - 6;
        let rows_new: Vec<Vec<bool>> = (0..64)
            .map(|i| {
                let mut r = p_old.get(i);
                r.extend(std::iter::repeat_n(false, extra)); // tp_en = 0
                r
            })
            .collect();
        let p_new = PatternSet::from_rows(6 + extra, &rows_new);
        let r_old = sim_old.run(&p_old);
        let r_new = sim_new.run(&p_new);
        for o in 0..n.primary_outputs().len() {
            for p in 0..64 {
                assert_eq!(r_old.output_bit(o, p), r_new.output_bit(o, p));
            }
        }
    }

    #[test]
    fn decoder_control_forces_addressed_nets() {
        use dft_netlist::{GateKind, Netlist};
        use dft_sim::{Logic, ThreeValueSim};
        // Three hard-to-reach nets behind wide ANDs.
        let mut n = Netlist::new("deep");
        let ins: Vec<_> = (0..6).map(|i| n.add_input(format!("x{i}"))).collect();
        let hard: Vec<_> = (0..3)
            .map(|k| {
                n.add_gate(GateKind::And, &[ins[k], ins[k + 1], ins[k + 2]])
                    .unwrap()
            })
            .collect();
        let y = n.add_gate(GateKind::Or, &hard).unwrap();
        n.mark_output(y, "y").unwrap();

        let (dec, _mode, addr) = apply_decoder_control(&n, &hard).unwrap();
        // 3 nets need 2 address bits + 1 mode pin (vs 3 value pins).
        assert_eq!(addr.len(), 2);
        let sim = ThreeValueSim::new(&dec).unwrap();
        // All x = 0 so every hard net is 0; address net 1 (code 2 = 0b10).
        let mut pis = vec![Logic::Zero; 6];
        pis.push(Logic::One); // mode
        pis.push(Logic::Zero); // addr0
        pis.push(Logic::One); // addr1
        let vals = sim.eval(&pis, &[]);
        let outs = sim.outputs(&vals);
        assert_eq!(outs, vec![Logic::One], "forced net propagates to y");
        // Mode off: functional (y = 0).
        pis[6] = Logic::Zero;
        let vals = sim.eval(&pis, &[]);
        assert_eq!(sim.outputs(&vals), vec![Logic::Zero]);
    }

    #[test]
    fn decoder_address_zero_forces_nothing() {
        use dft_netlist::{GateKind, Netlist};
        use dft_sim::{Logic, ThreeValueSim};
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g = n.add_gate(GateKind::Buf, &[a]).unwrap();
        let y = n.add_gate(GateKind::Not, &[g]).unwrap();
        n.mark_output(y, "y").unwrap();
        let (dec, _, addr) = apply_decoder_control(&n, &[g]).unwrap();
        assert_eq!(addr.len(), 1);
        let sim = ThreeValueSim::new(&dec).unwrap();
        // mode = 1 but address 0: no forcing, y = ¬a.
        let vals = sim.eval(&[Logic::Zero, Logic::One, Logic::Zero], &[]);
        assert_eq!(sim.outputs(&vals), vec![Logic::One]);
    }

    #[test]
    fn test_points_raise_atpg_coverage_on_a_hard_circuit() {
        // Deep PLA-ish circuit with buried logic: control+observe points
        // must not reduce coverage and usually raise the detected count
        // under a fixed small random budget.
        let pla =
            dft_netlist::circuits::random_pattern_resistant_pla(16, 8, 12, 2, 3).synthesize("hard");
        let faults = universe(&pla);
        let cfg = AtpgConfig::new()
            .with_random_budget(128)
            .with_backtrack_limit(50)
            .with_compact(false);
        let before = generate_tests(&pla, &faults, &cfg).unwrap();
        let plan = select_test_points(&pla, 4, 4).unwrap();
        let improved = apply_test_points(&pla, &plan).unwrap();
        // Same original faults, re-homed in the improved netlist (ids are
        // stable for original gates since we cloned the arena).
        let after = generate_tests(&improved, &faults, &cfg).unwrap();
        assert!(
            after.detected_coverage() >= before.detected_coverage(),
            "{} < {}",
            after.detected_coverage(),
            before.detected_coverage()
        );
    }
}
