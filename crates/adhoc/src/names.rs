//! Fresh-name selection for generated test pins and taps.
//!
//! Every transform in this crate adds named inputs (`tp_en`, `degate`,
//! `rst`, …) or outputs (`tp_obs<i>`). Applied once, the bare names are
//! free; applied repeatedly — the repair autopilot applies transforms
//! round after round to the same netlist — they collide. These helpers
//! pick the first free name so transforms compose.

use dft_netlist::{GateId, Netlist};

/// Adds an input named `base`, or `base1`, `base2`, … if taken.
pub(crate) fn fresh_input(out: &mut Netlist, base: &str) -> GateId {
    if let Ok(id) = out.try_add_input(base) {
        return id;
    }
    let mut k = 1usize;
    loop {
        if let Ok(id) = out.try_add_input(format!("{base}{k}")) {
            return id;
        }
        k += 1;
    }
}

/// Adds an input named `base<n>` for the first free `n >= *next`,
/// advancing `next` past it — for numbered families like `tp_val<i>`.
pub(crate) fn fresh_indexed_input(out: &mut Netlist, base: &str, next: &mut usize) -> GateId {
    loop {
        let name = format!("{base}{}", *next);
        *next += 1;
        if let Ok(id) = out.try_add_input(name) {
            return id;
        }
    }
}

/// First free output name `base<n>` with `n >= *next`; advances `next`.
pub(crate) fn fresh_indexed_output(out: &Netlist, base: &str, next: &mut usize) -> String {
    loop {
        let name = format!("{base}{}", *next);
        *next += 1;
        if out.find_output(&name).is_none() {
            return name;
        }
    }
}
