//! Degating: logical partitioning through blocking gates (Figs. 2–3).

use dft_netlist::{GateId, GateKind, LevelizeError, Netlist};

use crate::names::{fresh_indexed_input, fresh_input};

/// A netlist with degating hardware inserted on selected nets.
///
/// Per the paper's Fig. 2: each degated net feeds an AND with the
/// (inverted) degate line; an OR merges in a per-net control line. With
/// the degate line at its blocking value, the control lines drive the
/// downstream modules directly, giving "complete controllability of the
/// inputs to Modules 2 and 3".
#[derive(Clone, Debug)]
pub struct Degated {
    netlist: Netlist,
    degate: GateId,
    controls: Vec<GateId>,
    extra_gates: usize,
}

impl Degated {
    /// The modified netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The degate line (primary input; 1 = block).
    #[must_use]
    pub fn degate_line(&self) -> GateId {
        self.degate
    }

    /// Per-degated-net control inputs.
    #[must_use]
    pub fn control_lines(&self) -> &[GateId] {
        &self.controls
    }

    /// Gates added by the transform.
    #[must_use]
    pub fn extra_gates(&self) -> usize {
        self.extra_gates
    }
}

/// Inserts degating logic on `nets`.
///
/// # Errors
///
/// Returns [`LevelizeError`] if the source netlist has combinational
/// cycles.
///
/// # Panics
///
/// Panics if a net id is foreign to `netlist`.
pub fn insert_degating(netlist: &Netlist, nets: &[GateId]) -> Result<Degated, LevelizeError> {
    netlist.levelize()?;
    let mut out = netlist.clone();
    out.set_name(format!("{}_degated", netlist.name()));
    let before = out.gate_count();
    let fanout = out.fanout_map();
    let degate = fresh_input(&mut out, "degate");
    let degate_n = out.add_gate(GateKind::Not, &[degate]).expect("valid");
    let mut controls = Vec::with_capacity(nets.len());
    let mut ctl_index = 0usize;
    for &net in nets {
        assert!(net.index() < before, "degated net out of range");
        let ctl = fresh_indexed_input(&mut out, "control", &mut ctl_index);
        controls.push(ctl);
        let blocked = out
            .add_gate(GateKind::And, &[net, degate_n])
            .expect("valid");
        let merged = out.add_gate(GateKind::Or, &[blocked, ctl]).expect("valid");
        for &(reader, pin) in &fanout[net.index()] {
            out.reconnect_input(reader, pin as usize, merged)
                .expect("valid pin");
        }
    }
    let extra_gates = out.logic_gate_count() - netlist.logic_gate_count();
    Ok(Degated {
        netlist: out,
        degate,
        controls,
        extra_gates,
    })
}

/// The Fig. 3 special case: a free-running oscillator (modelled as an
/// uncontrollable toggling flip-flop) gated so the tester's pseudo-clock
/// line can replace it for synchronized dc testing.
///
/// Returns the modified netlist and the pseudo-clock input. The
/// oscillator net (`osc`) keeps running; with `degate` = 1 downstream
/// logic sees the pseudo-clock instead.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn block_oscillator(
    netlist: &Netlist,
    osc: GateId,
) -> Result<(Degated, GateId), LevelizeError> {
    let degated = insert_degating(netlist, &[osc])?;
    let pseudo_clock = degated.controls[0];
    Ok((degated, pseudo_clock))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::{universe, Fault};
    use dft_sim::{Logic, ThreeValueSim};

    /// A "module 1 drives modules 2 and 3" board: module 1's output is an
    /// uncontrollable mess (here: an XOR of state), modules 2/3 hang off
    /// it.
    fn board() -> (Netlist, GateId) {
        let mut n = Netlist::new("board");
        let x = n.add_input("x");
        // Module 1: toggling flip-flop (uncontrollable without reset).
        let placeholder = n.add_const(false);
        let q = n.add_dff(placeholder).unwrap();
        let inv = n.add_gate(GateKind::Not, &[q]).unwrap();
        n.reconnect_input(q, 0, inv).unwrap();
        // Modules 2/3 consume the module-1 net.
        let m2 = n.add_gate(GateKind::And, &[q, x]).unwrap();
        let m3 = n.add_gate(GateKind::Or, &[q, x]).unwrap();
        n.mark_output(m2, "y2").unwrap();
        n.mark_output(m3, "y3").unwrap();
        (n, q)
    }

    #[test]
    fn degating_gives_direct_control() {
        let (n, q) = board();
        let d = insert_degating(&n, &[q]).unwrap();
        let sim = ThreeValueSim::new(d.netlist()).unwrap();
        // Inputs: x, degate, control0 (order of addition).
        // degate = 1, control = 1: modules see 1 regardless of the
        // unknown oscillator state.
        let vals = sim.eval(&[Logic::One, Logic::One, Logic::One], &[Logic::X]);
        let outs = sim.outputs(&vals);
        assert_eq!(outs, vec![Logic::One, Logic::One]);
        // degate = 1, control = 0: modules see 0.
        let vals = sim.eval(&[Logic::One, Logic::One, Logic::Zero], &[Logic::X]);
        let outs = sim.outputs(&vals);
        assert_eq!(outs, vec![Logic::Zero, Logic::One]);
        // Functional mode (degate = 0, control = 0) passes the net through.
        let vals = sim.eval(&[Logic::One, Logic::Zero, Logic::Zero], &[Logic::One]);
        let outs = sim.outputs(&vals);
        assert_eq!(outs, vec![Logic::One, Logic::One]);
        assert_eq!(d.extra_gates(), 3); // NOT + AND + OR
    }

    #[test]
    fn degating_improves_fault_coverage() {
        let (n, q) = board();
        // Without degating: faults needing q controlled are untestable
        // combinationally (q is unresettable state).
        let m2_pin_fault = {
            let m2 = n.find_output("y2").unwrap();
            Fault::stuck_at_1(dft_netlist::PortRef::input(m2, 1))
        };
        // x s-a-1 at module 2's pin: needs q = 1 to propagate.
        let seq = dft_fault::sequential(&n, &vec![vec![Logic::Zero]; 6], &[m2_pin_fault]).unwrap();
        assert_eq!(seq.detected_count(), 0, "uncontrollable without DFT");

        let d = insert_degating(&n, &[q]).unwrap();
        // With degate=1, control=1 and x toggling, the fault is exposed:
        // y2 = AND(1, x): x pin s-a-1 detected at x=0.
        let viewed_fault = Fault::stuck_at_1(dft_netlist::PortRef::input(
            d.netlist().find_output("y2").unwrap(),
            1,
        ));
        let seq = dft_fault::sequential(
            d.netlist(),
            &[vec![Logic::Zero, Logic::One, Logic::One]], // x=0, degate, control
            &[viewed_fault],
        )
        .unwrap();
        assert_eq!(seq.detected_count(), 1, "degating exposes the fault");
    }

    #[test]
    fn oscillator_block_synchronizes_testing() {
        let (n, q) = board();
        let (d, pseudo_clock) = block_oscillator(&n, q).unwrap();
        assert_eq!(pseudo_clock, d.control_lines()[0]);
        // The tester can now hold the "clock" net still.
        let sim = ThreeValueSim::new(d.netlist()).unwrap();
        let vals = sim.eval(&[Logic::Zero, Logic::One, Logic::Zero], &[Logic::X]);
        assert!(sim.outputs(&vals).iter().all(|v| v.is_known()));
    }

    #[test]
    fn fault_universe_grows_by_the_degating_hardware_only() {
        let (n, q) = board();
        let d = insert_degating(&n, &[q]).unwrap();
        let before = universe(&n).len();
        let after = universe(d.netlist()).len();
        assert!(after > before);
        // Degating hardware: degate PI (2), NOT (4), AND (6), OR (6),
        // control PI (2) = 20 extra fault sites.
        assert_eq!(after - before, 20, "bounded overhead in fault count");
    }
}
