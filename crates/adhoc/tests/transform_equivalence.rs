//! Functional-equivalence suite for the ad-hoc DFT transforms.
//!
//! §III-B's whole premise is that test points, degating and reset lines
//! are *transparent in system mode*: with every test pin held at its
//! inactive value, the instrumented circuit computes exactly what the
//! original did. These properties check that on random netlists under
//! exhaustive (combinational) or multi-cycle random (sequential)
//! stimulus — the machine-checked form of the claim the repair autopilot
//! relies on when it splices these transforms into working designs.

use dft_adhoc::{
    add_reset, apply_decoder_control, apply_test_points, insert_degating, ResetKind, TestPointPlan,
};
use dft_netlist::circuits::{random_combinational, random_sequential};
use dft_netlist::{GateId, GateKind, Netlist};
use dft_sim::{Logic, SequentialSim, ThreeValueSim};
use proptest::prelude::*;

/// Primary-output values by name for one full input assignment.
fn outputs_by_name(n: &Netlist, vals: &[Logic]) -> Vec<(String, Logic)> {
    n.primary_outputs()
        .iter()
        .map(|(g, name)| (name.clone(), vals[g.index()]))
        .collect()
}

/// Checks that `after` computes the same value as `before` on every
/// output name `before` has, for every complete assignment of `before`'s
/// inputs, with all of `after`'s extra (test) inputs held at 0.
///
/// Relies on the transforms appending new inputs after the originals —
/// true for every transform in this crate (they clone and extend).
fn assert_transparent(before: &Netlist, after: &Netlist) {
    let pis = before.primary_inputs().len();
    let extra = after.primary_inputs().len() - pis;
    assert!(pis <= 12, "exhaustive check needs few inputs");
    let sim_b = ThreeValueSim::new(before).expect("acyclic");
    let sim_a = ThreeValueSim::new(after).expect("transform kept the netlist acyclic");
    for bits in 0u32..1 << pis {
        let assign: Vec<Logic> = (0..pis).map(|i| Logic::from(bits >> i & 1 == 1)).collect();
        let mut assign_after = assign.clone();
        assign_after.extend(std::iter::repeat_n(Logic::Zero, extra));
        let vals_b = sim_b.eval(&assign, &[]);
        let vals_a = sim_a.eval(&assign_after, &[]);
        let want = outputs_by_name(before, &vals_b);
        let got = outputs_by_name(after, &vals_a);
        for (name, value) in &want {
            let found = got
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("output '{name}' vanished"));
            assert_eq!(
                found.1, *value,
                "output '{name}' diverged on input bits {bits:#b}"
            );
        }
    }
}

/// Deterministically picks `k` non-source target nets from `n`.
fn pick_targets(n: &Netlist, k: usize, salt: u64) -> Vec<GateId> {
    let logic: Vec<GateId> = n
        .ids()
        .filter(|&id| !n.gate(id).kind().is_source())
        .collect();
    (0..k.min(logic.len()))
        .map(|i| logic[(salt as usize + i * 7) % logic.len()])
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn test_points_are_transparent_in_system_mode(
        seed in any::<u64>(),
        inputs in 2usize..=6,
        gates in 3usize..=30,
        observe in 0usize..=2,
        control in 0usize..=2,
    ) {
        let n = random_combinational(inputs, gates, seed);
        let plan = TestPointPlan {
            observe: pick_targets(&n, observe, seed),
            control: pick_targets(&n, control, seed ^ 0x9e37_79b9),
        };
        let tp = apply_test_points(&n, &plan).expect("acyclic");
        assert_transparent(&n, &tp);
    }

    #[test]
    fn decoder_control_is_transparent_in_system_mode(
        seed in any::<u64>(),
        inputs in 2usize..=6,
        gates in 3usize..=30,
        nets in 1usize..=3,
    ) {
        let n = random_combinational(inputs, gates, seed);
        let targets = pick_targets(&n, nets, seed);
        if targets.is_empty() { return; }
        let (dec, _mode, _addr) = apply_decoder_control(&n, &targets).expect("acyclic");
        assert_transparent(&n, &dec);
    }

    #[test]
    fn degating_is_transparent_with_the_degate_line_low(
        seed in any::<u64>(),
        inputs in 2usize..=6,
        gates in 3usize..=30,
        nets in 1usize..=3,
    ) {
        let n = random_combinational(inputs, gates, seed);
        let targets = pick_targets(&n, nets, seed);
        if targets.is_empty() { return; }
        let degated = insert_degating(&n, &targets).expect("acyclic");
        assert_transparent(&n, degated.netlist());
    }

    #[test]
    fn reset_line_is_transparent_when_held_low(
        seed in any::<u64>(),
        inputs in 1usize..=3,
        state_bits in 1usize..=4,
        gates in 1usize..=6,
        preset in any::<bool>(),
    ) {
        let kind = if preset { ResetKind::Preset } else { ResetKind::Clear };
        let n = random_sequential(inputs, state_bits, gates, 2, seed);
        let (with_reset, _rst) = add_reset(&n, kind).expect("acyclic");
        // Multi-cycle equivalence from a known state: same input
        // sequence, reset pin held at its inactive (low) level.
        let mut sim_b = SequentialSim::new(&n).expect("acyclic");
        let mut sim_a = SequentialSim::new(&with_reset).expect("acyclic");
        sim_b.reset_to(Logic::Zero);
        sim_a.reset_to(Logic::Zero);
        let pis = n.primary_inputs().len();
        let extra = with_reset.primary_inputs().len() - pis;
        prop_assert_eq!(extra, 1, "add_reset adds exactly the reset pin");
        let mut stim = seed | 1;
        for cycle in 0..16u32 {
            let vector: Vec<Logic> = (0..pis)
                .map(|i| {
                    stim = stim.wrapping_mul(6364136223846793005).wrapping_add(1);
                    Logic::from(stim >> (i + 13) & 1 == 1)
                })
                .collect();
            let mut vector_after = vector.clone();
            vector_after.push(Logic::Zero);
            let out_b = sim_b.step(&vector);
            let out_a = sim_a.step(&vector_after);
            prop_assert_eq!(out_b, out_a, "outputs diverged at cycle {}", cycle);
        }
    }

    /// The composability the autopilot depends on: transforms applied on
    /// top of already-instrumented netlists pick fresh pin names and
    /// stay transparent.
    #[test]
    fn stacked_transforms_stay_transparent(
        seed in any::<u64>(),
        inputs in 2usize..=5,
        gates in 5usize..=20,
    ) {
        let n = random_combinational(inputs, gates, seed);
        let plan = TestPointPlan {
            observe: pick_targets(&n, 1, seed),
            control: pick_targets(&n, 1, seed ^ 0xdead_beef),
        };
        let once = apply_test_points(&n, &plan).expect("acyclic");
        // Re-target the same plan against the instrumented netlist.
        let twice = apply_test_points(&once, &plan).expect("fresh names");
        let targets = pick_targets(&n, 1, seed ^ 0x5a5a);
        if targets.is_empty() { return; }
        let thrice = insert_degating(&twice, &targets).expect("acyclic");
        assert_transparent(&n, thrice.netlist());
    }
}

/// A non-property regression: the gate kinds the transforms insert are
/// plain logic, so downstream fault models see ordinary gates.
#[test]
fn transforms_insert_only_plain_logic() {
    let n = random_combinational(4, 20, 7);
    let targets = pick_targets(&n, 2, 3);
    let degated = insert_degating(&n, &targets).expect("acyclic");
    for id in degated.netlist().ids().skip(n.gate_count()) {
        let kind = degated.netlist().gate(id).kind();
        assert!(
            matches!(
                kind,
                GateKind::Input | GateKind::And | GateKind::Or | GateKind::Not
            ),
            "unexpected inserted gate kind {kind:?}"
        );
    }
}
