//! Bounded sequential ATPG by time-frame expansion.
//!
//! §I-B: Eq. (1) "does not take into account the falloff in automatic
//! test generation capability due to sequential complexity of the
//! network." This module shows that falloff concretely: the sequential
//! machine is unrolled into `k` combinational frames (state threads from
//! frame to frame; frame 0 starts unknown), the target fault is
//! replicated into every frame, and the multi-site PODEM of
//! [`Podem::solve_any_of`] searches for a `k`-cycle test sequence. The
//! circuit the combinational engine must handle grows `k`-fold — which
//! is exactly why §IV's scan techniques exist.

use std::collections::HashMap;

use dft_fault::Fault;
use dft_netlist::{GateId, GateKind, LevelizeError, Netlist, Pin, PortRef};
use dft_sim::Logic;

use crate::podem::{GenOutcome, Podem, PodemConfig, TestCube};

/// A `k`-frame unrolling of a sequential netlist.
#[derive(Clone, Debug)]
pub struct Unrolled {
    netlist: Netlist,
    frames: usize,
    original_pi_count: usize,
    /// `map[frame]`: original gate id → unrolled gate id.
    map: Vec<HashMap<GateId, GateId>>,
}

impl Unrolled {
    /// Unrolls `netlist` into `frames` combinational copies.
    ///
    /// Frame 0's storage elements stay as (uncontrollable, unknown) `Dff`
    /// sources; in later frames each storage output is replaced by the
    /// previous frame's data-input net. Every frame's primary outputs are
    /// exposed as `f<k>_<name>`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is 0.
    pub fn build(netlist: &Netlist, frames: usize) -> Result<Self, LevelizeError> {
        assert!(frames > 0, "need at least one frame");
        let lv = netlist.levelize()?;
        let mut out = Netlist::new(format!("{}_x{frames}", netlist.name()));
        let mut map: Vec<HashMap<GateId, GateId>> = Vec::with_capacity(frames);

        for f in 0..frames {
            let mut m: HashMap<GateId, GateId> = HashMap::new();
            // Sources first: inputs and storage.
            for (id, gate) in netlist.iter() {
                match gate.kind() {
                    GateKind::Input => {
                        let name = format!("f{f}_{}", gate.name().unwrap_or("pi"));
                        m.insert(id, out.try_add_input(name).expect("fresh per frame"));
                    }
                    GateKind::Dff => {
                        if f == 0 {
                            // Unknown initial state: keep an uncontrollable
                            // storage source (data input is a dummy).
                            let dummy = out.add_const(false);
                            m.insert(id, out.add_dff(dummy).expect("valid"));
                        } else {
                            // Previous frame's data-input net.
                            let d_orig = netlist.gate(id).inputs()[0];
                            m.insert(id, map[f - 1][&d_orig]);
                        }
                    }
                    GateKind::Const0 | GateKind::Const1 => {
                        m.insert(id, out.add_const(gate.kind() == GateKind::Const1));
                    }
                    _ => {}
                }
            }
            // Logic gates in dependency order.
            for &id in lv.order() {
                let gate = netlist.gate(id);
                if gate.kind().is_source() {
                    continue;
                }
                let ins: Vec<GateId> = gate.inputs().iter().map(|s| m[s]).collect();
                let new_id = out.add_gate(gate.kind(), &ins).expect("arity preserved");
                m.insert(id, new_id);
            }
            for (g, name) in netlist.primary_outputs() {
                out.mark_output(m[g], format!("f{f}_{name}"))
                    .expect("fresh per frame");
            }
            map.push(m);
        }
        Ok(Unrolled {
            netlist: out,
            frames,
            original_pi_count: netlist.primary_inputs().len(),
            map,
        })
    }

    /// The unrolled combinational netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Frame count.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Replicates an original fault into every frame.
    ///
    /// A fault on a storage element maps to: its data-pin fault in each
    /// frame (corrupting what the next frame sees is expressed by the
    /// output fault of the previous frame's data net), and its output
    /// fault onto each frame's state source net.
    #[must_use]
    pub fn replicate_fault(&self, fault: Fault) -> Vec<Fault> {
        let mut sites = Vec::with_capacity(self.frames);
        for f in 0..self.frames {
            let gate = self.map[f][&fault.site.gate];
            // A DFF data-pin fault in frame f corrupts the value frame
            // f+1 reads: in the unrolled netlist that is an output fault
            // on the data net alias — but the alias *is* `gate` for
            // frame f+1's state (map[f+1][dff] = map[f][d]). Simplest
            // faithful translation: pin faults on storage become output
            // faults on the aliased net for every frame > 0, plus the
            // original-pin semantics never observable in frame 0 (the
            // capture would land in frame `frames`, outside the window).
            let pin = match fault.site.pin {
                Pin::Input(p) if self.is_storage_original(fault.site.gate) && p == 0 => {
                    // Translate below via the *next* frame's state net.
                    if f + 1 < self.frames {
                        let next_state = self.map[f + 1][&fault.site.gate];
                        sites.push(Fault {
                            site: PortRef::output(next_state),
                            stuck: fault.stuck,
                        });
                    }
                    continue;
                }
                p => p,
            };
            sites.push(Fault {
                site: PortRef { gate, pin },
                stuck: fault.stuck,
            });
        }
        sites.sort_unstable();
        sites.dedup();
        sites
    }

    fn is_storage_original(&self, _gate: GateId) -> bool {
        // The map only contains originals; storage is identified through
        // the per-frame aliasing structure: frame 0 maps storage to a
        // fresh Dff gate in the unrolled netlist.
        matches!(self.netlist.gate(self.map[0][&_gate]).kind(), GateKind::Dff)
    }

    /// Splits a cube over the unrolled inputs into a per-cycle input
    /// sequence for the original machine.
    ///
    /// # Panics
    ///
    /// Panics if the cube width disagrees with the unrolled netlist.
    #[must_use]
    pub fn decode_sequence(&self, cube: &TestCube) -> Vec<Vec<Logic>> {
        assert_eq!(
            cube.assignment.len(),
            self.netlist.primary_inputs().len(),
            "cube width mismatch"
        );
        (0..self.frames)
            .map(|f| {
                let lo = f * self.original_pi_count;
                cube.assignment[lo..lo + self.original_pi_count].to_vec()
            })
            .collect()
    }
}

/// Outcome of [`sequential_podem`]: the generator verdict plus, on
/// success, the decoded per-cycle input sequence.
pub type SequentialGenResult = (GenOutcome, Option<Vec<Vec<Logic>>>);

/// Attempts to generate a `frames`-cycle test sequence for `fault` on a
/// sequential netlist via time-frame expansion and multi-site PODEM.
///
/// `Untestable` here means *no test within the frame bound* (a longer
/// window might still succeed — bounded sequential ATPG cannot prove
/// global redundancy).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn sequential_podem(
    netlist: &Netlist,
    fault: Fault,
    frames: usize,
    config: &PodemConfig,
) -> Result<SequentialGenResult, LevelizeError> {
    let unrolled = Unrolled::build(netlist, frames)?;
    let sites = unrolled.replicate_fault(fault);
    if sites.is_empty() {
        return Ok((GenOutcome::Untestable, None));
    }
    let solver = Podem::new(unrolled.netlist(), *config)?;
    let (outcome, _) = solver.solve_any_of(&sites);
    let seq = outcome.cube().map(|cube| unrolled.decode_sequence(cube));
    Ok((outcome, seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::{sequential, universe};
    use dft_netlist::circuits::{binary_counter, shift_register};

    #[test]
    fn unrolled_shape() {
        let n = shift_register(3);
        let u = Unrolled::build(&n, 4).unwrap();
        assert!(u.netlist().levelize().is_ok());
        // 4 frames × 1 PI; outputs 4 × 3.
        assert_eq!(u.netlist().primary_inputs().len(), 4);
        assert_eq!(u.netlist().primary_outputs().len(), 12);
        // Only frame 0 keeps storage sources.
        assert_eq!(u.netlist().storage_elements().len(), 3);
    }

    #[test]
    fn finds_multi_cycle_tests_for_shift_register() {
        // A stem fault deep in a shift register needs enough frames to
        // march the effect out; with 1 frame it is out of reach, with 4
        // it is found — and the sequence verifies on the real machine.
        let n = shift_register(3);
        let sin = n.primary_inputs()[0];
        let f = Fault::stuck_at_0(PortRef::output(sin));
        let cfg = PodemConfig::default();

        let (short, _) = sequential_podem(&n, f, 1, &cfg).unwrap();
        assert_eq!(
            short,
            GenOutcome::Untestable,
            "one frame cannot observe the corrupted capture"
        );

        let (long, seq) = sequential_podem(&n, f, 4, &cfg).unwrap();
        let seq = match (&long, seq) {
            (GenOutcome::Test(_), Some(seq)) => seq,
            other => panic!("expected a 4-frame test, got {other:?}"),
        };
        // Independent check on the actual sequential machine: fill X
        // inputs with 1 (the fault is s-a-0, opposing fill is safest but
        // the engine's cube is already sufficient — fill is free).
        let filled: Vec<Vec<Logic>> = seq
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| if v.is_known() { v } else { Logic::One })
                    .collect()
            })
            .collect();
        let det = sequential(&n, &filled, &[f]).unwrap();
        assert!(det.first_detected[0].is_some(), "sequence must detect");
    }

    #[test]
    fn unresettable_counter_stays_untestable_at_any_depth() {
        let n = binary_counter(3);
        let q2 = n.find_output("q2").unwrap();
        let f = Fault::stuck_at_0(PortRef::output(q2));
        let cfg = PodemConfig::default();
        for frames in [1, 3, 6] {
            let (outcome, _) = sequential_podem(&n, f, frames, &cfg).unwrap();
            assert_eq!(
                outcome,
                GenOutcome::Untestable,
                "X initial state never resolves at {frames} frames"
            );
        }
    }

    #[test]
    fn coverage_grows_with_frame_depth() {
        let n = shift_register(4);
        let faults = universe(&n);
        let cfg = PodemConfig {
            backtrack_limit: 2_000,
            ..PodemConfig::default()
        };
        let mut prev = 0usize;
        for frames in [1usize, 3, 6] {
            let found = faults
                .iter()
                .filter(|&&f| {
                    matches!(
                        sequential_podem(&n, f, frames, &cfg).unwrap().0,
                        GenOutcome::Test(_)
                    )
                })
                .count();
            assert!(found >= prev, "coverage must not shrink with depth");
            prev = found;
        }
        assert!(
            prev as f64 / faults.len() as f64 > 0.8,
            "6 frames should reach most of a 4-stage shift register ({prev}/{})",
            faults.len()
        );
    }

    #[test]
    fn effort_grows_with_frames() {
        // The sequential-complexity falloff of Eq. (1): the circuit the
        // combinational engine faces grows linearly with the window.
        let n = binary_counter(4);
        let comb =
            |u: &Unrolled| u.netlist().logic_gate_count() - u.netlist().storage_elements().len();
        let u1 = Unrolled::build(&n, 1).unwrap();
        let u8 = Unrolled::build(&n, 8).unwrap();
        assert_eq!(comb(&u8), 8 * comb(&u1), "combinational frames replicate");
    }
}
