//! The D-Algorithm (Roth) — deterministic ATPG with internal-line
//! decisions.
//!
//! Where PODEM enumerates primary-input assignments, the D-Algorithm
//! assigns internal lines: drive the fault effect (D/D̄) toward an output
//! through the *D-frontier*, and justify every required line value
//! through the *J-frontier* (consistency). The paper names it directly:
//! once scan reduces the problem to combinational logic, "techniques such
//! as the D-Algorithm \[93\] … are again viable approaches".
//!
//! The implementation searches on good-machine line values with full
//! forward/backward implication; faulty-machine values are derived
//! forward (with the fault injected). Every test it returns is verified
//! by forward simulation before being reported.

use dft_fault::Fault;
use dft_implic::ImplicationEngine;
use dft_netlist::{GateId, GateKind, LevelizeError, Netlist, Pin, PortRef};
use dft_obs::{Collector, Obs};
use dft_sim::justify::forced_inputs;
use dft_sim::Logic;

use crate::podem::{GenOutcome, PodemConfig, SolveStats, TestCube};

/// Tuning knobs for [`dalg`]/[`dalg_with`].
///
/// `#[non_exhaustive]`: construct via [`Default`] and the `with_*`
/// builders so new knobs can be added without breaking downstream
/// crates. A [`PodemConfig`] converts losslessly (`From`) so flows that
/// drive both engines can share one knob set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct DalgConfig {
    /// Abort the search after this many backtracks (the D-Algorithm's
    /// internal decision budget is derived from this, scaled ×8 because
    /// its decisions are finer-grained than PODEM's PI flips).
    pub backtrack_limit: u32,
    /// Consult a static implication engine (`dft-implic`): faults it
    /// proves untestable return `Untestable` with zero search, and every
    /// implication fixpoint cross-checks line values against the learned
    /// store, failing branches early.
    pub use_implications: bool,
}

impl Default for DalgConfig {
    fn default() -> Self {
        DalgConfig {
            backtrack_limit: 10_000,
            use_implications: true,
        }
    }
}

impl DalgConfig {
    /// Defaults (same as [`Default`], spelled for builder chains).
    #[must_use]
    pub fn new() -> Self {
        DalgConfig::default()
    }

    /// Sets [`DalgConfig::backtrack_limit`].
    #[must_use]
    pub fn with_backtrack_limit(mut self, backtrack_limit: u32) -> Self {
        self.backtrack_limit = backtrack_limit;
        self
    }

    /// Sets [`DalgConfig::use_implications`].
    #[must_use]
    pub fn with_use_implications(mut self, use_implications: bool) -> Self {
        self.use_implications = use_implications;
        self
    }
}

impl From<PodemConfig> for DalgConfig {
    fn from(c: PodemConfig) -> Self {
        DalgConfig::new()
            .with_backtrack_limit(c.backtrack_limit)
            .with_use_implications(c.use_implications)
    }
}

/// Runs the D-Algorithm for `fault` on a combinational netlist.
///
/// Returns the same [`GenOutcome`] vocabulary as [`crate::podem`]; the
/// two engines are cross-checked in tests (same testable/untestable
/// verdicts on exhaustively-checkable circuits).
///
/// When `config.use_implications` is set, a static implication engine
/// is built for the call; to amortize that over many faults, build one
/// [`ImplicationEngine`] and use [`dalg_with`].
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn dalg(
    netlist: &Netlist,
    fault: Fault,
    config: &DalgConfig,
) -> Result<GenOutcome, LevelizeError> {
    let engine = config
        .use_implications
        .then(|| ImplicationEngine::new(netlist));
    dalg_with(netlist, fault, config, engine.as_ref()).map(|(outcome, _)| outcome)
}

/// [`dalg`] with a caller-supplied implication engine (or `None` for a
/// pure search) and the search-effort counters surfaced.
///
/// The engine contributes two prunes: faults it proves untestable
/// return immediately with zero search, and every implication fixpoint
/// cross-checks the assigned line values against the learned store and
/// the static necessities of detection, failing branches early.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn dalg_with<'n>(
    netlist: &'n Netlist,
    fault: Fault,
    config: &DalgConfig,
    implic: Option<&ImplicationEngine<'n>>,
) -> Result<(GenOutcome, SolveStats), LevelizeError> {
    dalg_observed(netlist, fault, config, implic, None)
}

/// [`dalg_with`] feeding telemetry to an optional collector.
///
/// Opens an `atpg.dalg` span per attempt and flushes the [`SolveStats`]
/// counters (`backtracks`, `forward_evals`, `implication_conflicts`)
/// plus one of `tests`/`untestable`/`aborted` for the outcome; the
/// returned stats are unchanged, so the legacy view and the collector
/// always agree.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn dalg_observed<'n>(
    netlist: &'n Netlist,
    fault: Fault,
    config: &DalgConfig,
    implic: Option<&ImplicationEngine<'n>>,
    obs: Option<&mut dyn Collector>,
) -> Result<(GenOutcome, SolveStats), LevelizeError> {
    let mut obs = Obs::new(obs);
    obs.enter("atpg.dalg");
    let (outcome, stats) = dalg_search(netlist, fault, config, implic)?;
    obs.count("attempts", 1);
    obs.count("backtracks", u64::from(stats.backtracks));
    obs.count("forward_evals", stats.forward_evals);
    obs.count(
        "implication_conflicts",
        u64::from(stats.implication_conflicts),
    );
    obs.count(
        match outcome {
            GenOutcome::Test(_) => "tests",
            GenOutcome::Untestable => "untestable",
            GenOutcome::Aborted => "aborted",
        },
        1,
    );
    obs.exit();
    Ok((outcome, stats))
}

fn dalg_search<'n>(
    netlist: &'n Netlist,
    fault: Fault,
    config: &DalgConfig,
    implic: Option<&ImplicationEngine<'n>>,
) -> Result<(GenOutcome, SolveStats), LevelizeError> {
    let lv = netlist.levelize()?;
    let stats = SolveStats::default();

    // Excite: the activation net's good value must be the complement of
    // the stuck value.
    let activation = match fault.site.pin {
        Pin::Output => fault.site.gate,
        Pin::Input(p) => netlist.gate(fault.site.gate).inputs()[p as usize],
    };

    let mut necessity: Vec<(usize, bool)> = Vec::new();
    if let Some(engine) = implic {
        if engine
            .fault_untestable(fault.site.gate, fault.site.pin, fault.stuck)
            .is_some()
        {
            return Ok((GenOutcome::Untestable, stats));
        }
        necessity = engine
            .query(activation, !fault.stuck)
            .implied
            .iter()
            .map(|l| (l.net.index(), l.value))
            .collect();
    }

    let mut solver = DalgSolver {
        netlist,
        order: lv.order().to_vec(),
        fault,
        budget: i64::from(config.backtrack_limit) * 8,
        stats,
        implic,
        necessity,
    };
    let n = netlist.gate_count();
    let mut good = vec![Logic::X; n];
    good[activation.index()] = Logic::from(!fault.stuck);

    let found = solver.search(&mut good);
    if solver.budget <= 0 {
        return Ok((GenOutcome::Aborted, solver.stats));
    }
    match found {
        Some(cube) => Ok((GenOutcome::Test(cube), solver.stats)),
        None => Ok((GenOutcome::Untestable, solver.stats)),
    }
}

struct DalgSolver<'a, 'n> {
    netlist: &'n Netlist,
    order: Vec<GateId>,
    fault: Fault,
    budget: i64,
    stats: SolveStats,
    implic: Option<&'a ImplicationEngine<'n>>,
    /// `(net index, good value)` pairs every detecting assignment must
    /// satisfy (the excitation literal's static implication closure).
    necessity: Vec<(usize, bool)>,
}

impl DalgSolver<'_, '_> {
    /// Forward-computes faulty-machine values from good-machine values
    /// (X where good is X and the fault effect hasn't fixed them).
    fn faulty_values(&self, good: &[Logic]) -> Vec<Logic> {
        let mut faulty = vec![Logic::X; self.netlist.gate_count()];
        for &pi in self.netlist.primary_inputs() {
            faulty[pi.index()] = good[pi.index()];
        }
        if self.fault.site.pin == Pin::Output
            && self.netlist.gate(self.fault.site.gate).kind().is_source()
        {
            faulty[self.fault.site.gate.index()] = Logic::from(self.fault.stuck);
        }
        for &id in &self.order {
            let gate = self.netlist.gate(id);
            match gate.kind() {
                GateKind::Input => continue,
                GateKind::Dff => continue, // stays X (uncontrollable)
                GateKind::Const0 => faulty[id.index()] = Logic::Zero,
                GateKind::Const1 => faulty[id.index()] = Logic::One,
                kind => {
                    let ins: Vec<Logic> = gate
                        .inputs()
                        .iter()
                        .enumerate()
                        .map(|(p, &s)| {
                            if self.fault.site.gate == id
                                && self.fault.site.pin == Pin::Input(p as u8)
                            {
                                Logic::from(self.fault.stuck)
                            } else {
                                faulty[s.index()]
                            }
                        })
                        .collect();
                    faulty[id.index()] = Logic::eval_gate(kind, &ins);
                }
            }
            if self.fault.site == PortRef::output(id) {
                faulty[id.index()] = Logic::from(self.fault.stuck);
            }
        }
        faulty
    }

    /// Forward + backward implication on good-machine values.
    /// Returns `false` on contradiction.
    fn imply(&mut self, good: &mut [Logic]) -> bool {
        self.stats.forward_evals += 1;
        loop {
            let mut changed = false;
            // Forward.
            for &id in &self.order {
                let gate = self.netlist.gate(id);
                if gate.kind().is_source() {
                    match gate.kind() {
                        GateKind::Const0 => {
                            if good[id.index()] == Logic::One {
                                return false;
                            }
                            good[id.index()] = Logic::Zero;
                        }
                        GateKind::Const1 => {
                            if good[id.index()] == Logic::Zero {
                                return false;
                            }
                            good[id.index()] = Logic::One;
                        }
                        _ => {}
                    }
                    continue;
                }
                let ins: Vec<Logic> = gate.inputs().iter().map(|&s| good[s.index()]).collect();
                let computed = Logic::eval_gate(gate.kind(), &ins);
                let cur = good[id.index()];
                match (computed.to_bool(), cur.to_bool()) {
                    (Some(a), Some(b)) if a != b => return false,
                    (Some(_), None) => {
                        good[id.index()] = computed;
                        changed = true;
                    }
                    _ => {}
                }
            }
            // Backward.
            for idx in (0..self.order.len()).rev() {
                let id = self.order[idx];
                let gate = self.netlist.gate(id);
                if gate.kind().is_source() {
                    continue;
                }
                let Some(out) = good[id.index()].to_bool() else {
                    continue;
                };
                let forced: Vec<(GateId, Logic)> = backward_forced(self.netlist, id, out, good);
                for (src, v) in forced {
                    let cur = good[src.index()];
                    match (cur.to_bool(), v.to_bool()) {
                        (Some(a), Some(b)) if a != b => return false,
                        (None, Some(_)) => {
                            good[src.index()] = v;
                            changed = true;
                        }
                        _ => {}
                    }
                }
            }
            if !changed {
                return self.implication_consistent(good);
            }
        }
    }

    /// Cross-checks a converged implication state against the static
    /// store: a known line value contradicting a learned implication of
    /// another known value (or a necessary condition of detection)
    /// means no completion of this state detects the fault.
    fn implication_consistent(&mut self, good: &[Logic]) -> bool {
        for &(i, v) in &self.necessity {
            if good[i].to_bool().is_some_and(|b| b != v) {
                self.stats.implication_conflicts += 1;
                return false;
            }
        }
        let Some(engine) = self.implic else {
            return true;
        };
        for (i, g) in good.iter().enumerate() {
            let Some(b) = g.to_bool() else { continue };
            for l in engine.learned_edges(GateId::from_index(i), b) {
                if good[l.net.index()].to_bool().is_some_and(|x| x != l.value) {
                    self.stats.implication_conflicts += 1;
                    return false;
                }
            }
        }
        true
    }

    /// Nets whose assigned good value is not yet implied by their inputs.
    fn unjustified(&self, good: &[Logic]) -> Vec<GateId> {
        let mut out = Vec::new();
        for (id, gate) in self.netlist.iter() {
            if gate.kind().is_source() || !good[id.index()].is_known() {
                continue;
            }
            let ins: Vec<Logic> = gate.inputs().iter().map(|&s| good[s.index()]).collect();
            if !Logic::eval_gate(gate.kind(), &ins).is_known() {
                out.push(id);
            }
        }
        out
    }

    fn search(&mut self, good: &mut [Logic]) -> Option<TestCube> {
        self.budget -= 1;
        if self.budget <= 0 {
            return None;
        }
        if !self.imply(good) {
            return None;
        }
        let faulty = self.faulty_values(good);

        // Success: fault effect at a PO and everything justified.
        let at_po = self.netlist.primary_outputs().iter().any(|&(g, _)| {
            matches!(
                (good[g.index()].to_bool(), faulty[g.index()].to_bool()),
                (Some(a), Some(b)) if a != b
            )
        });
        let unjust = self.unjustified(good);
        if at_po && unjust.is_empty() {
            let cube = TestCube {
                assignment: self
                    .netlist
                    .primary_inputs()
                    .iter()
                    .map(|&pi| good[pi.index()])
                    .collect(),
            };
            if self.verify(&cube) {
                return Some(cube);
            }
            return None;
        }

        // Justify pending line values first (consistency).
        if let Some(&g) = unjust.first() {
            let gate = self.netlist.gate(g);
            let out = good[g.index()]
                .to_bool()
                .expect("unjustified lines are known");
            for choice in justification_choices(gate.kind(), gate.fanin(), out) {
                let mut trial = good.to_vec();
                let mut ok = true;
                for (pin, v) in &choice {
                    let src = gate.inputs()[*pin];
                    match trial[src.index()].to_bool() {
                        Some(b) if b != *v => {
                            ok = false;
                            break;
                        }
                        _ => trial[src.index()] = Logic::from(*v),
                    }
                }
                if !ok {
                    continue;
                }
                if let Some(t) = self.search(&mut trial) {
                    return Some(t);
                }
                self.stats.backtracks += 1;
            }
            return None;
        }

        // Propagate the fault effect: D-frontier decisions.
        let frontier: Vec<GateId> = self
            .netlist
            .iter()
            .filter(|(id, gate)| {
                // The effect can still pass while either component of the
                // output remains unknown (good may already be fixed by a
                // side path while faulty is undecided, or vice versa).
                !gate.kind().is_source()
                    && (!good[id.index()].is_known() || !faulty[id.index()].is_known())
                    && gate.inputs().iter().enumerate().any(|(p, &s)| {
                        let gv = good[s.index()];
                        let fv = if self.fault.site.gate == *id
                            && self.fault.site.pin == Pin::Input(p as u8)
                        {
                            Logic::from(self.fault.stuck)
                        } else {
                            faulty[s.index()]
                        };
                        matches!(
                            (gv.to_bool(), fv.to_bool()),
                            (Some(a), Some(b)) if a != b
                        )
                    })
            })
            .map(|(id, _)| id)
            .collect();
        if frontier.is_empty() {
            // No solid D anywhere — but with X values in the faulty
            // machine the effect may merely be *latent* (reconvergent
            // fault cones keep side values unknown until more inputs are
            // assigned). Only a fully known, difference-free state
            // refutes this assignment outright.
            let latent = self.netlist.ids().any(|id| {
                let i = id.index();
                match (good[i].to_bool(), faulty[i].to_bool()) {
                    (Some(a), Some(b)) => a != b,
                    _ => true,
                }
            });
            if latent {
                return self.branch_on_free_pi(good);
            }
            return None;
        }
        for g in frontier {
            let gate = self.netlist.gate(g);
            let mut base = good.to_vec();
            let mut ok = true;
            let mut assigned_any = false;
            // X side pins of an XOR-family gate: either polarity lets the
            // effect through (it merely inverts it), but downstream
            // consistency may require a specific one — branch over them.
            let mut xor_free: Vec<GateId> = Vec::new();
            for (p, &s) in gate.inputs().iter().enumerate() {
                let is_d_pin = {
                    let gv = good[s.index()];
                    let fv = if self.fault.site.gate == g
                        && self.fault.site.pin == Pin::Input(p as u8)
                    {
                        Logic::from(self.fault.stuck)
                    } else {
                        faulty[s.index()]
                    };
                    matches!((gv.to_bool(), fv.to_bool()), (Some(a), Some(b)) if a != b)
                };
                if is_d_pin {
                    continue;
                }
                match gate.kind().controlling_value() {
                    Some(c) => match base[s.index()].to_bool() {
                        Some(b) if b == c => {
                            // Controlling side value: the effect cannot
                            // pass through this gate.
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            base[s.index()] = Logic::from(!c);
                            assigned_any = true;
                        }
                    },
                    None => {
                        if base[s.index()].to_bool().is_none() && !xor_free.contains(&s) {
                            xor_free.push(s);
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            // A decision that assigns nothing recurses on an identical
            // state (the faulty side of this gate is X through a side
            // path): it can never make progress and previously descended
            // until the stack overflowed. Skip it — other frontier gates
            // or choices may still propagate the effect.
            if !assigned_any && xor_free.is_empty() {
                continue;
            }
            // Enumerate the XOR side-pin polarities (capped: beyond 6
            // free pins fall back to all-zeros only).
            let combos = if xor_free.len() <= 6 {
                1u32 << xor_free.len()
            } else {
                1
            };
            for combo in 0..combos {
                let mut trial = base.clone();
                for (k, &s) in xor_free.iter().enumerate() {
                    trial[s.index()] = Logic::from(combo >> k & 1 == 1);
                }
                if let Some(t) = self.search(&mut trial) {
                    return Some(t);
                }
                self.stats.backtracks += 1;
            }
        }
        // Internal-line decisions are exhausted without success. That
        // refutes this prefix only when the faulty machine is fully
        // known: with X values on reconvergent side paths, the frontier
        // (and the controlling-value blocks above) under-approximates
        // what further input assignments could enable — a gate whose
        // good-side pin is controlling can still pass the effect as a
        // good-known / faulty-different pair once its faulty X side
        // resolves. Fall back to branching a free primary input; with
        // none left the refutation is exact.
        self.branch_on_free_pi(good)
    }

    /// Last-resort decision: assign a free primary input both ways. The
    /// internal-line decision space is exhausted (or vacuous) but X
    /// values on faulty-machine side paths can only be resolved from the
    /// inputs; this keeps the engine as complete as PODEM's input-space
    /// search. Depth is bounded by the primary-input count.
    fn branch_on_free_pi(&mut self, good: &[Logic]) -> Option<TestCube> {
        let free = self
            .netlist
            .primary_inputs()
            .iter()
            .copied()
            .find(|&pi| !good[pi.index()].is_known())?;
        for v in [false, true] {
            let mut trial = good.to_vec();
            trial[free.index()] = Logic::from(v);
            if let Some(t) = self.search(&mut trial) {
                return Some(t);
            }
            self.stats.backtracks += 1;
        }
        None
    }

    /// Independent forward verification of a candidate cube.
    fn verify(&self, cube: &TestCube) -> bool {
        let mut good = vec![Logic::X; self.netlist.gate_count()];
        for (i, &pi) in self.netlist.primary_inputs().iter().enumerate() {
            good[pi.index()] = cube.assignment[i];
        }
        for &id in &self.order {
            let gate = self.netlist.gate(id);
            if gate.kind().is_source() {
                match gate.kind() {
                    GateKind::Const0 => good[id.index()] = Logic::Zero,
                    GateKind::Const1 => good[id.index()] = Logic::One,
                    _ => {}
                }
                continue;
            }
            let ins: Vec<Logic> = gate.inputs().iter().map(|&s| good[s.index()]).collect();
            good[id.index()] = Logic::eval_gate(gate.kind(), &ins);
        }
        let faulty = self.faulty_values(&good);
        self.netlist.primary_outputs().iter().any(|&(g, _)| {
            matches!(
                (good[g.index()].to_bool(), faulty[g.index()].to_bool()),
                (Some(a), Some(b)) if a != b
            )
        })
    }
}

/// Input assignments *forced* by a known gate output (backward
/// implication), mapped from the shared pin-level tables in
/// [`dft_sim::justify`] — the same rules the static implication engine
/// in `dft-implic` propagates, so search and static analysis cannot
/// drift apart.
fn backward_forced(
    netlist: &Netlist,
    id: GateId,
    out: bool,
    good: &[Logic],
) -> Vec<(GateId, Logic)> {
    let gate = netlist.gate(id);
    let ins: Vec<Logic> = gate.inputs().iter().map(|&s| good[s.index()]).collect();
    forced_inputs(gate.kind(), out, &ins)
        .into_iter()
        .map(|(pin, v)| (gate.inputs()[pin], v))
        .collect()
}

/// Enumerates the input assignments that justify `out` at a gate of
/// `kind` with `fanin` inputs. Each choice is a list of `(pin, value)`
/// requirements.
fn justification_choices(kind: GateKind, fanin: usize, out: bool) -> Vec<Vec<(usize, bool)>> {
    match kind {
        GateKind::Buf => vec![vec![(0, out)]],
        GateKind::Not => vec![vec![(0, !out)]],
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let c = kind.controlling_value().expect("AND/OR family");
            let inv = kind.inverts();
            let controlled_out = c != inv; // output when some input = c
            if out == controlled_out {
                // One controlling input suffices: one choice per pin.
                (0..fanin).map(|p| vec![(p, c)]).collect()
            } else {
                // All inputs noncontrolling.
                vec![(0..fanin).map(|p| (p, !c)).collect()]
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // All input combinations of the right parity.
            let want = out != (kind == GateKind::Xnor);
            let mut choices = Vec::new();
            for bits in 0..1u32 << fanin {
                let parity = (bits.count_ones() % 2) == 1;
                if parity == want {
                    choices.push((0..fanin).map(|p| (p, bits >> p & 1 == 1)).collect());
                }
            }
            choices
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::podem::{podem, PodemConfig};
    use dft_fault::{simulate, universe};
    use dft_netlist::circuits::{c17, full_adder, majority};
    use dft_sim::PatternSet;

    fn cross_check(netlist: &Netlist) {
        let cfg = PodemConfig::default();
        for f in universe(netlist) {
            let d = dalg(netlist, f, &DalgConfig::from(cfg)).unwrap();
            let p = podem(netlist, f, &cfg).unwrap();
            match (&d, &p) {
                (GenOutcome::Test(cube), GenOutcome::Test(_)) => {
                    let row = cube.filled(false);
                    let set = PatternSet::from_rows(row.len(), &[row]);
                    let r = simulate(netlist, &set, &[f]).unwrap();
                    assert_eq!(r.first_detected[0], Some(0), "dalg cube fails for {f}");
                }
                (GenOutcome::Untestable, GenOutcome::Untestable) => {}
                other => panic!("engines disagree on {f}: {other:?}"),
            }
        }
    }

    #[test]
    fn agrees_with_podem_on_c17() {
        cross_check(&c17());
    }

    #[test]
    fn agrees_with_podem_on_full_adder() {
        cross_check(&full_adder());
    }

    #[test]
    fn agrees_with_podem_on_majority() {
        cross_check(&majority());
    }

    #[test]
    fn agrees_with_podem_on_random_logic() {
        cross_check(&dft_netlist::circuits::random_combinational(7, 25, 5));
    }

    #[test]
    fn justification_choice_tables() {
        // AND out=1 → single choice, all pins 1.
        let ch = justification_choices(GateKind::And, 3, true);
        assert_eq!(ch, vec![vec![(0, true), (1, true), (2, true)]]);
        // AND out=0 → one choice per pin.
        let ch = justification_choices(GateKind::And, 2, false);
        assert_eq!(ch.len(), 2);
        // XOR out=1 with 2 inputs → two odd-parity rows.
        let ch = justification_choices(GateKind::Xor, 2, true);
        assert_eq!(ch.len(), 2);
        // NOT inverts.
        assert_eq!(
            justification_choices(GateKind::Not, 1, true),
            vec![vec![(0, false)]]
        );
    }
}
