//! Threaded deterministic-ATPG driver with inter-batch collateral
//! dropping.
//!
//! §I-B of the paper prices deterministic test generation as the cost
//! that explodes with gate count; this driver attacks it on two axes at
//! once. *Parallelism*: the surviving fault queue is solved in fixed
//! 64-fault batches whose slots are strided across scoped worker
//! threads, each running PODEM (or the D-Algorithm) against shared
//! read-only solver state. *Work avoidance*: after every batch the
//! freshly generated cubes are merged, zero-filled, and fault-simulated
//! with [`Ppsfp`] over the not-yet-attempted tail of the queue, so
//! faults the new tests already cover are dropped before any worker
//! wastes a search on them.
//!
//! The merge is deterministic by construction. Batch boundaries depend
//! only on the queue (`BATCH` is fixed, not derived from the thread
//! count), each slot's solver call is a pure function of its fault, and
//! results are reduced in slot order after the batch joins — so the
//! thread count changes *who* computes a slot, never *what* is
//! computed, and the final [`DetPhase`] is byte-identical for any
//! `threads` setting.

use dft_fault::{Fault, Ppsfp};
use dft_implic::{ImplicOptions, ImplicationEngine};
use dft_netlist::{LevelizeError, Netlist};
use dft_obs::{Collector, Obs};
use dft_sim::PatternSet;

use crate::compact::merge_cubes;
use crate::dalg::{dalg_with, DalgConfig};
use crate::engine::{AtpgConfig, DeterministicEngine};
use crate::podem::{GenOutcome, Podem, PodemConfig, SolveStats, TestCube};

/// Faults per batch. Fixed (and equal to the [`Ppsfp`] word width) so
/// batch boundaries — and therefore the drop cadence and the final test
/// set — never depend on the thread count.
const BATCH: usize = 64;

/// How one queued fault was disposed of by [`deterministic_phase`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetVerdict {
    /// A solver produced a test cube for it.
    Test,
    /// Dropped before its turn: a cube generated for an earlier batch
    /// already detects it (found by the inter-batch [`Ppsfp`] pass).
    Collateral,
    /// Proven redundant by the solver.
    Untestable,
    /// Search hit the backtrack limit.
    Aborted,
}

/// Effort accumulated by one worker across every batch it served in.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Faults this worker ran a solver on.
    pub solved: u64,
    /// Backtracks across those solves.
    pub backtracks: u64,
    /// Forward implications across those solves.
    pub forward_evals: u64,
    /// Conflicts caught by the static implication store.
    pub implication_conflicts: u64,
}

/// The result of the threaded deterministic phase.
#[derive(Clone, Debug)]
pub struct DetPhase {
    /// Per-queued-fault disposition, aligned with the input queue.
    pub verdicts: Vec<DetVerdict>,
    /// Concrete test rows, in batch order: each batch's cubes merged
    /// ([`merge_cubes`]) and zero-filled. These exact rows back the
    /// [`DetVerdict::Collateral`] credits, so they must reach the final
    /// pattern set (a greedy reverse-order drop keeps every detection).
    pub rows: Vec<Vec<bool>>,
    /// Cubes generated before merging (one per [`DetVerdict::Test`]).
    pub cubes: u64,
    /// Resolved worker count.
    pub workers: usize,
    /// Per-worker effort, indexed by worker id.
    pub worker_stats: Vec<WorkerStats>,
    /// Solver attempts (queue length minus collateral drops).
    pub attempts: u64,
    /// Total backtracks (sum over workers).
    pub backtracks: u64,
    /// Total forward implications.
    pub forward_evals: u64,
    /// Total implication-store conflicts.
    pub implication_conflicts: u64,
    /// [`DetVerdict::Test`] count.
    pub tests: u64,
    /// [`DetVerdict::Untestable`] count.
    pub untestable: u64,
    /// [`DetVerdict::Aborted`] count.
    pub aborted: u64,
    /// [`DetVerdict::Collateral`] count.
    pub collateral: u64,
    /// Batches processed.
    pub batches: u64,
    /// Inter-batch [`Ppsfp`] passes run (skipped when a batch yields no
    /// cubes or the queue is exhausted).
    pub drop_sims: u64,
}

/// Resolves a `threads` knob: 0 means all available cores, and more
/// workers than batch slots would sit idle.
fn resolve_workers(threads: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    t.clamp(1, BATCH)
}

/// Compiled, shareable state for the threaded deterministic phase: the
/// solver (with its implication store), the inter-batch [`Ppsfp`]
/// dropper, and the resolved worker count. Build once with
/// [`DetDriver::new`], then [`DetDriver::run`] any number of queues —
/// the split lets callers (and the bench) separate the one-time compile
/// cost from the phase itself.
pub struct DetDriver<'n> {
    netlist: &'n Netlist,
    engine: DeterministicEngine,
    solver: Option<Podem<'n>>,
    dalg_cfg: DalgConfig,
    implic: Option<ImplicationEngine<'n>>,
    dropper: Option<Ppsfp<'n>>,
    workers: usize,
}

impl<'n> DetDriver<'n> {
    /// Compiles the driver per `config` (see [`DetDriver::new_observed`]
    /// for the collector-fed variant).
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist, config: &AtpgConfig) -> Result<Self, LevelizeError> {
        DetDriver::new_observed(netlist, config, None)
    }

    /// [`DetDriver::new`] with the solver build feeding `obs` (the
    /// `implic.learn` span nests under the caller's current span when
    /// implications are on).
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new_observed(
        netlist: &'n Netlist,
        config: &AtpgConfig,
        obs: Option<&mut dyn Collector>,
    ) -> Result<Self, LevelizeError> {
        let mut obs = Obs::new(obs);
        let podem_cfg = PodemConfig::new()
            .with_backtrack_limit(config.backtrack_limit)
            .with_use_implications(config.use_implications);
        let dalg_cfg = DalgConfig::from(podem_cfg);
        // Shared read-only solver state: PODEM compiles once (including
        // its implication store), the D-Algorithm gets a separate shared
        // store.
        let solver = match config.engine {
            DeterministicEngine::Podem => {
                Some(Podem::new_observed(netlist, podem_cfg, obs.as_option())?)
            }
            DeterministicEngine::DAlgorithm => None,
        };
        let implic = (config.use_implications && config.engine == DeterministicEngine::DAlgorithm)
            .then(|| {
                ImplicationEngine::with_options_observed(
                    netlist,
                    ImplicOptions::default(),
                    obs.as_option(),
                )
            });
        // The inter-batch sets are at most one 64-pattern block (one
        // batch of merged cubes), so the engine's `LaneWidth::Auto`
        // keeps the narrow 64-lane path here — wide blocks would only
        // pad empty tail words. The wide paths engage where the ATPG
        // flow has real pattern volume: the random phase's 256-pattern
        // chunks and compaction's 256-pattern reverse windows.
        let dropper = if config.collateral_dropping {
            Some(Ppsfp::new(netlist)?)
        } else {
            None
        };
        Ok(DetDriver {
            netlist,
            engine: config.engine,
            solver,
            dalg_cfg,
            implic,
            dropper,
            workers: resolve_workers(config.threads),
        })
    }

    /// Runs the deterministic phase over `queue` (indices into
    /// `faults`), dropping collaterally detected faults between batches
    /// when the driver was built with collateral dropping on.
    ///
    /// Emits one `atpg.worker` span per worker (counters `solved`,
    /// `backtracks`, `forward_evals`, `implication_conflicts`; gauge
    /// `index`) and an `atpg.drop` span (counters `batches`,
    /// `drop_sims`, `dropped`, `rows`) under the caller's current span.
    ///
    /// The output is identical for every `threads` value; see the
    /// module docs for the argument.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles (D-Algorithm
    /// engine only; PODEM levelizes at build time).
    ///
    /// # Panics
    ///
    /// Panics if a queue index is out of range for `faults`.
    pub fn run(
        &self,
        faults: &[Fault],
        queue: &[usize],
        obs: Option<&mut dyn Collector>,
    ) -> Result<DetPhase, LevelizeError> {
        self.run_inner(faults, queue, Obs::new(obs))
    }
}

/// Builds a [`DetDriver`] from `config` and runs it over `queue`
/// (indices into `faults`) in one call — the flow entry point used by
/// [`crate::generate_tests`].
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if a queue index is out of range for `faults`.
pub fn deterministic_phase(
    netlist: &Netlist,
    faults: &[Fault],
    queue: &[usize],
    config: &AtpgConfig,
    obs: Option<&mut dyn Collector>,
) -> Result<DetPhase, LevelizeError> {
    let mut obs = Obs::new(obs);
    let driver = DetDriver::new_observed(netlist, config, obs.as_option())?;
    driver.run_inner(faults, queue, obs)
}

impl DetDriver<'_> {
    fn run_inner(
        &self,
        faults: &[Fault],
        queue: &[usize],
        mut obs: Obs<'_>,
    ) -> Result<DetPhase, LevelizeError> {
        let n_pi = self.netlist.primary_inputs().len();
        let mut phase = DetPhase {
            verdicts: vec![DetVerdict::Aborted; queue.len()],
            rows: Vec::new(),
            cubes: 0,
            workers: self.workers,
            worker_stats: vec![WorkerStats::default(); self.workers],
            attempts: 0,
            backtracks: 0,
            forward_evals: 0,
            implication_conflicts: 0,
            tests: 0,
            untestable: 0,
            aborted: 0,
            collateral: 0,
            batches: 0,
            drop_sims: 0,
        };
        // Queue positions still awaiting a solver, in queue order.
        let mut pending: Vec<usize> = (0..queue.len()).collect();
        while !pending.is_empty() {
            let take = pending.len().min(BATCH);
            let batch: Vec<usize> = pending.drain(..take).collect();
            let results = self.solve_batch(faults, queue, &batch, &mut phase.worker_stats)?;
            // Deterministic reduction: slot order, regardless of which
            // worker finished when.
            let mut batch_cubes: Vec<TestCube> = Vec::new();
            for (slot, (outcome, stats)) in results.into_iter().enumerate() {
                phase.attempts += 1;
                phase.backtracks += u64::from(stats.backtracks);
                phase.forward_evals += stats.forward_evals;
                phase.implication_conflicts += u64::from(stats.implication_conflicts);
                phase.verdicts[batch[slot]] = match outcome {
                    GenOutcome::Test(cube) => {
                        batch_cubes.push(cube);
                        phase.tests += 1;
                        DetVerdict::Test
                    }
                    GenOutcome::Untestable => {
                        phase.untestable += 1;
                        DetVerdict::Untestable
                    }
                    GenOutcome::Aborted => {
                        phase.aborted += 1;
                        DetVerdict::Aborted
                    }
                };
            }
            phase.batches += 1;
            phase.cubes += batch_cubes.len() as u64;
            let merged = merge_cubes(&batch_cubes);
            let batch_rows: Vec<Vec<bool>> = merged.iter().map(|c| c.filled(false)).collect();
            if let Some(engine) = &self.dropper {
                if !batch_rows.is_empty() && !pending.is_empty() {
                    let set = PatternSet::from_rows(n_pi, &batch_rows);
                    let tail: Vec<Fault> = pending.iter().map(|&qp| faults[queue[qp]]).collect();
                    let r = engine.run(&set, &tail);
                    phase.drop_sims += 1;
                    let mut j = 0;
                    pending.retain(|&qp| {
                        let detected = r.first_detected[j].is_some();
                        j += 1;
                        if detected {
                            phase.verdicts[qp] = DetVerdict::Collateral;
                            phase.collateral += 1;
                        }
                        !detected
                    });
                }
            }
            phase.rows.extend(batch_rows);
        }

        for (w, ws) in phase.worker_stats.iter().enumerate() {
            obs.enter("atpg.worker");
            obs.gauge("index", w as f64);
            obs.count("solved", ws.solved);
            obs.count("backtracks", ws.backtracks);
            obs.count("forward_evals", ws.forward_evals);
            obs.count("implication_conflicts", ws.implication_conflicts);
            obs.exit();
        }
        obs.enter("atpg.drop");
        obs.count("batches", phase.batches);
        obs.count("drop_sims", phase.drop_sims);
        obs.count("dropped", phase.collateral);
        obs.count("rows", phase.rows.len() as u64);
        obs.exit();
        Ok(phase)
    }

    /// Solves one batch: slot `s` goes to worker `s % workers`, every
    /// worker walks its strided slots in order, and the per-slot results
    /// come back indexed by slot. With one worker the batch is solved
    /// inline (no spawn).
    fn solve_batch(
        &self,
        faults: &[Fault],
        queue: &[usize],
        batch: &[usize],
        worker_stats: &mut [WorkerStats],
    ) -> Result<Vec<(GenOutcome, SolveStats)>, LevelizeError> {
        let solve = |slot: usize| -> Result<(GenOutcome, SolveStats), LevelizeError> {
            let fault = faults[queue[batch[slot]]];
            match self.engine {
                DeterministicEngine::Podem => Ok(self
                    .solver
                    .as_ref()
                    .expect("PODEM solver built for this engine")
                    .solve(fault)),
                DeterministicEngine::DAlgorithm => {
                    dalg_with(self.netlist, fault, &self.dalg_cfg, self.implic.as_ref())
                }
            }
        };
        let active = self.workers.min(batch.len());
        let mut results: Vec<Option<(GenOutcome, SolveStats)>> = vec![None; batch.len()];
        if active <= 1 {
            for (slot, out) in results.iter_mut().enumerate() {
                let (outcome, stats) = solve(slot)?;
                tally(&mut worker_stats[0], &stats);
                *out = Some((outcome, stats));
            }
        } else {
            let shards = std::thread::scope(|s| {
                let handles: Vec<_> = (0..active)
                    .map(|w| {
                        let solve = &solve;
                        s.spawn(move || {
                            let mut out: Vec<(usize, GenOutcome, SolveStats)> = Vec::new();
                            let mut slot = w;
                            while slot < batch.len() {
                                let (outcome, stats) = solve(slot)?;
                                out.push((slot, outcome, stats));
                                slot += active;
                            }
                            Ok::<_, LevelizeError>(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ATPG worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (w, shard) in shards.into_iter().enumerate() {
                for (slot, outcome, stats) in shard? {
                    tally(&mut worker_stats[w], &stats);
                    results[slot] = Some((outcome, stats));
                }
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every slot solved"))
            .collect())
    }
}

fn tally(ws: &mut WorkerStats, stats: &SolveStats) {
    ws.solved += 1;
    ws.backtracks += u64::from(stats.backtracks);
    ws.forward_evals += stats.forward_evals;
    ws.implication_conflicts += u64::from(stats.implication_conflicts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::{simulate, universe};
    use dft_netlist::circuits::{c17, random_combinational};

    fn run(n: &Netlist, config: &AtpgConfig) -> DetPhase {
        let faults = universe(n);
        let queue: Vec<usize> = (0..faults.len()).collect();
        deterministic_phase(n, &faults, &queue, config, None).unwrap()
    }

    #[test]
    fn phase_is_identical_across_thread_counts() {
        let n = random_combinational(10, 60, 7);
        let base = run(&n, &AtpgConfig::new().with_threads(1));
        for t in [2, 3, 8] {
            let other = run(&n, &AtpgConfig::new().with_threads(t));
            assert_eq!(base.verdicts, other.verdicts, "verdicts differ at {t}");
            assert_eq!(base.rows, other.rows, "rows differ at {t}");
            assert_eq!(base.backtracks, other.backtracks);
            assert_eq!(base.forward_evals, other.forward_evals);
        }
    }

    #[test]
    fn collateral_credits_are_backed_by_the_rows() {
        // Multi-batch universe: later batches must see collateral drops.
        let n = random_combinational(10, 60, 7);
        let faults = universe(&n);
        assert!(faults.len() > super::BATCH, "need a multi-batch queue");
        let queue: Vec<usize> = (0..faults.len()).collect();
        let phase = deterministic_phase(
            &n,
            &faults,
            &queue,
            &AtpgConfig::new().with_threads(2),
            None,
        )
        .unwrap();
        assert!(phase.collateral > 0, "batches must drop collaterally");
        let set = PatternSet::from_rows(n.primary_inputs().len(), &phase.rows);
        let r = simulate(&n, &set, &faults).unwrap();
        for (qp, v) in phase.verdicts.iter().enumerate() {
            if matches!(v, DetVerdict::Test | DetVerdict::Collateral) {
                assert!(
                    r.first_detected[queue[qp]].is_some(),
                    "verdict {v:?} for fault {qp} not backed by the rows"
                );
            }
        }
    }

    #[test]
    fn dropping_off_attempts_every_fault() {
        let n = c17();
        let cfg = AtpgConfig::new().with_collateral_dropping(false);
        let phase = run(&n, &cfg);
        assert_eq!(phase.collateral, 0);
        assert_eq!(phase.attempts as usize, phase.verdicts.len());
    }
}
