//! PODEM: path-oriented decision making over primary-input assignments.

use std::collections::HashMap;

use dft_fault::Fault;
use dft_implic::{ImplicOptions, ImplicationEngine};
use dft_netlist::{GateId, GateKind, LevelizeError, Netlist, Pin};
use dft_obs::{Collector, Obs};
use dft_sim::Logic;
use dft_testability::{analyze, TestabilityReport};

use crate::DVal;

/// A (possibly partial) test pattern: one value per primary input, `X`
/// meaning "don't care" (free for compaction or random fill).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCube {
    /// Per-primary-input assignment, in netlist input order.
    pub assignment: Vec<Logic>,
}

impl TestCube {
    /// Fills don't-cares with `fill` and returns a concrete pattern row.
    #[must_use]
    pub fn filled(&self, fill: bool) -> Vec<bool> {
        self.assignment
            .iter()
            .map(|v| v.to_bool().unwrap_or(fill))
            .collect()
    }

    /// Number of assigned (care) bits.
    #[must_use]
    pub fn care_count(&self) -> usize {
        self.assignment.iter().filter(|v| v.is_known()).count()
    }

    /// Whether two cubes can merge (no opposing care bits).
    #[must_use]
    pub fn compatible(&self, other: &TestCube) -> bool {
        self.assignment
            .iter()
            .zip(&other.assignment)
            .all(|(&a, &b)| match (a.to_bool(), b.to_bool()) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// The merge of two compatible cubes.
    ///
    /// # Panics
    ///
    /// Panics if the cubes are not [`TestCube::compatible`].
    #[must_use]
    pub fn merged(&self, other: &TestCube) -> TestCube {
        assert!(self.compatible(other), "merging incompatible cubes");
        TestCube {
            assignment: self
                .assignment
                .iter()
                .zip(&other.assignment)
                .map(|(&a, &b)| if a.is_known() { a } else { b })
                .collect(),
        }
    }
}

/// The outcome of one deterministic test-generation attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenOutcome {
    /// A test cube was found (verified by construction: the fault effect
    /// reaches a primary output under this cube).
    Test(TestCube),
    /// The fault is provably untestable (redundant) — the search space
    /// was exhausted.
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

impl GenOutcome {
    /// The cube, if a test was found.
    #[must_use]
    pub fn cube(&self) -> Option<&TestCube> {
        match self {
            GenOutcome::Test(c) => Some(c),
            _ => None,
        }
    }
}

/// Tuning knobs for [`podem`]/[`Podem`].
///
/// `#[non_exhaustive]`: construct via [`Default`] and the `with_*`
/// builders so new knobs can be added without breaking downstream
/// crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct PodemConfig {
    /// Abort the search after this many backtracks.
    pub backtrack_limit: u32,
    /// Consult a static implication engine (`dft-implic`): faults it
    /// proves untestable return `Untestable` with zero search, and its
    /// implication store prunes assignments that contradict a necessary
    /// condition of detection (see `SolveStats::implication_conflicts`).
    pub use_implications: bool,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 10_000,
            use_implications: true,
        }
    }
}

impl PodemConfig {
    /// Defaults (same as [`Default`], spelled for builder chains).
    #[must_use]
    pub fn new() -> Self {
        PodemConfig::default()
    }

    /// Sets [`PodemConfig::backtrack_limit`].
    #[must_use]
    pub fn with_backtrack_limit(mut self, backtrack_limit: u32) -> Self {
        self.backtrack_limit = backtrack_limit;
        self
    }

    /// Sets [`PodemConfig::use_implications`].
    #[must_use]
    pub fn with_use_implications(mut self, use_implications: bool) -> Self {
        self.use_implications = use_implications;
        self
    }
}

/// Search-effort counters for one [`Podem::solve`] call — the raw data
/// behind the paper's Eq. (1) runtime-scaling experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Decisions reverted.
    pub backtracks: u32,
    /// Full forward implications performed.
    pub forward_evals: u64,
    /// Dead ends called by the static implication store before the
    /// search had to discover them (each one prunes a whole subtree).
    pub implication_conflicts: u32,
}

/// A reusable PODEM solver for one netlist (levelization and testability
/// guidance are computed once).
#[derive(Debug)]
pub struct Podem<'n> {
    netlist: &'n Netlist,
    order: Vec<GateId>,
    fanout: Vec<Vec<(GateId, u8)>>,
    report: TestabilityReport,
    pi_index: HashMap<GateId, usize>,
    is_po: Vec<bool>,
    config: PodemConfig,
    implic: Option<ImplicationEngine<'n>>,
}

impl<'n> Podem<'n> {
    /// Compiles a solver.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist, config: PodemConfig) -> Result<Self, LevelizeError> {
        Podem::new_observed(netlist, config, None)
    }

    /// [`Podem::new`] feeding telemetry to an optional collector: when
    /// implications are enabled, the embedded [`ImplicationEngine`]
    /// build reports its `implic.learn` span through `obs`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new_observed(
        netlist: &'n Netlist,
        config: PodemConfig,
        obs: Option<&mut dyn Collector>,
    ) -> Result<Self, LevelizeError> {
        let mut obs = Obs::new(obs);
        let lv = netlist.levelize()?;
        let report = analyze(netlist)?;
        let mut is_po = vec![false; netlist.gate_count()];
        for &(g, _) in netlist.primary_outputs() {
            is_po[g.index()] = true;
        }
        let implic = config.use_implications.then(|| {
            ImplicationEngine::with_options_observed(
                netlist,
                ImplicOptions::default(),
                obs.as_option(),
            )
        });
        Ok(Podem {
            netlist,
            order: lv.order().to_vec(),
            fanout: netlist.fanout_map(),
            report,
            pi_index: netlist
                .primary_inputs()
                .iter()
                .enumerate()
                .map(|(i, &g)| (g, i))
                .collect(),
            is_po,
            config,
            implic,
        })
    }

    /// Necessary conditions of detection for a single-site fault, as
    /// `(net index, good value)` pairs: the excitation literal's static
    /// implication closure. Any partial assignment whose good-machine
    /// value contradicts one of them cannot be completed into a test.
    /// Returns `None` (empty) when the fault is multi-site or the
    /// engine is disabled, and `Err(())` when the engine statically
    /// proves the fault untestable outright.
    #[allow(clippy::result_unit_err)]
    fn necessity(&self, sites: &[Fault]) -> Result<Vec<(usize, bool)>, ()> {
        let (Some(engine), [f]) = (&self.implic, sites) else {
            return Ok(Vec::new());
        };
        if engine
            .fault_untestable(f.site.gate, f.site.pin, f.stuck)
            .is_some()
        {
            return Err(());
        }
        let activation = match f.site.pin {
            Pin::Output => f.site.gate,
            Pin::Input(p) => self.netlist.gate(f.site.gate).inputs()[p as usize],
        };
        let q = engine.query(activation, !f.stuck);
        Ok(q.implied.iter().map(|l| (l.net.index(), l.value)).collect())
    }

    /// Attempts to generate a test for `fault`.
    #[must_use]
    pub fn solve(&self, fault: Fault) -> (GenOutcome, SolveStats) {
        self.solve_any_of(&[fault])
    }

    /// [`Podem::solve`] feeding telemetry to an optional collector.
    #[must_use]
    pub fn solve_with(
        &self,
        fault: Fault,
        obs: Option<&mut dyn Collector>,
    ) -> (GenOutcome, SolveStats) {
        self.solve_any_of_with(&[fault], obs)
    }

    /// Attempts to generate a test for a fault present at *several* sites
    /// simultaneously (one logical defect with multiple copies — the
    /// time-frame-expansion case, where the same physical fault appears
    /// in every unrolled frame). All sites are stuck in the faulty
    /// machine; a test excites at least one and drives the effect to an
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    #[must_use]
    pub fn solve_any_of(&self, sites: &[Fault]) -> (GenOutcome, SolveStats) {
        self.solve_any_of_with(sites, None)
    }

    /// [`Podem::solve_any_of`] feeding telemetry to an optional
    /// collector.
    ///
    /// Opens an `atpg.podem` span per attempt and flushes the
    /// [`SolveStats`] counters (`backtracks`, `forward_evals`,
    /// `implication_conflicts`) plus one of `tests`/`untestable`/
    /// `aborted` for the outcome; the returned stats are unchanged, so
    /// the legacy view and the collector always agree.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    #[must_use]
    pub fn solve_any_of_with(
        &self,
        sites: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> (GenOutcome, SolveStats) {
        let mut obs = Obs::new(obs);
        obs.enter("atpg.podem");
        let (outcome, stats) = self.search(sites);
        obs.count("attempts", 1);
        obs.count("backtracks", u64::from(stats.backtracks));
        obs.count("forward_evals", stats.forward_evals);
        obs.count(
            "implication_conflicts",
            u64::from(stats.implication_conflicts),
        );
        obs.count(
            match outcome {
                GenOutcome::Test(_) => "tests",
                GenOutcome::Untestable => "untestable",
                GenOutcome::Aborted => "aborted",
            },
            1,
        );
        obs.exit();
        (outcome, stats)
    }

    fn search(&self, sites: &[Fault]) -> (GenOutcome, SolveStats) {
        assert!(!sites.is_empty(), "need at least one fault site");
        let mut stats = SolveStats::default();
        let Ok(necessity) = self.necessity(sites) else {
            // Statically proven untestable: no search at all.
            return (GenOutcome::Untestable, stats);
        };
        let n_pi = self.netlist.primary_inputs().len();
        let mut assign: Vec<Logic> = vec![Logic::X; n_pi];
        let mut vals = vec![DVal::X; self.netlist.gate_count()];
        // Decision stack: (pi index, tried_both).
        let mut stack: Vec<(usize, bool)> = Vec::new();

        loop {
            self.forward(&assign, sites, &mut vals);
            stats.forward_evals += 1;

            if self.detected(&vals) {
                return (GenOutcome::Test(TestCube { assignment: assign }), stats);
            }

            // A good-machine value contradicting a static necessity of
            // detection dooms every completion of this assignment: call
            // the dead end now instead of searching into the subtree.
            let implication_conflict = necessity
                .iter()
                .any(|&(i, v)| vals[i].good.to_bool().is_some_and(|b| b != v));
            if implication_conflict {
                stats.implication_conflicts += 1;
            }

            let next = if implication_conflict {
                None
            } else {
                self.objective(&vals, sites)
                    .and_then(|(net, v)| self.backtrace(&vals, net, v))
            };

            match next {
                Some((pi, v)) => {
                    assign[pi] = Logic::from(v);
                    stack.push((pi, false));
                }
                None => {
                    // Backtrack.
                    loop {
                        match stack.pop() {
                            None => return (GenOutcome::Untestable, stats),
                            Some((pi, true)) => {
                                assign[pi] = Logic::X;
                            }
                            Some((pi, false)) => {
                                stats.backtracks += 1;
                                if stats.backtracks >= self.config.backtrack_limit {
                                    return (GenOutcome::Aborted, stats);
                                }
                                let flipped = match assign[pi] {
                                    Logic::Zero => Logic::One,
                                    Logic::One => Logic::Zero,
                                    Logic::X => unreachable!("decision PIs are assigned"),
                                };
                                assign[pi] = flipped;
                                stack.push((pi, true));
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    /// The effective value seen by `gate`'s input `pin`, applying the
    /// fault if it sits on that pin.
    fn pin_val(&self, vals: &[DVal], sites: &[Fault], gate: GateId, pin: usize) -> DVal {
        let src = self.netlist.gate(gate).inputs()[pin];
        let mut v = vals[src.index()];
        for f in sites {
            if f.site.gate == gate && f.site.pin == Pin::Input(pin as u8) {
                v.faulty = Logic::from(f.stuck);
            }
        }
        v
    }

    /// Full forward implication of the current PI assignment.
    fn forward(&self, assign: &[Logic], sites: &[Fault], vals: &mut [DVal]) {
        for (i, &pi) in self.netlist.primary_inputs().iter().enumerate() {
            let mut v = DVal::known(assign[i]);
            for f in sites {
                if f.site == dft_netlist::PortRef::output(pi) {
                    v.faulty = Logic::from(f.stuck);
                }
            }
            vals[pi.index()] = v;
        }
        for &id in &self.order {
            let gate = self.netlist.gate(id);
            let mut v = match gate.kind() {
                GateKind::Input => continue,
                GateKind::Const0 => DVal::ZERO,
                GateKind::Const1 => DVal::ONE,
                GateKind::Dff => DVal::X, // uncontrollable state
                kind => {
                    let mut goods = Vec::with_capacity(gate.fanin());
                    let mut faults_ = Vec::with_capacity(gate.fanin());
                    for pin in 0..gate.fanin() {
                        let pv = self.pin_val(vals, sites, id, pin);
                        goods.push(pv.good);
                        faults_.push(pv.faulty);
                    }
                    DVal {
                        good: Logic::eval_gate(kind, &goods),
                        faulty: Logic::eval_gate(kind, &faults_),
                    }
                }
            };
            for f in sites {
                if f.site == dft_netlist::PortRef::output(id) {
                    v.faulty = Logic::from(f.stuck);
                }
            }
            vals[id.index()] = v;
        }
    }

    fn detected(&self, vals: &[DVal]) -> bool {
        self.netlist
            .primary_outputs()
            .iter()
            .any(|&(g, _)| vals[g.index()].is_d())
    }

    /// The good-machine value at a fault's activation point, and the
    /// gate to backtrace from when exciting.
    fn excitation(&self, vals: &[DVal], fault: Fault) -> (Logic, GateId) {
        match fault.site.pin {
            Pin::Output => (vals[fault.site.gate.index()].good, fault.site.gate),
            Pin::Input(p) => {
                let src = self.netlist.gate(fault.site.gate).inputs()[p as usize];
                (vals[src.index()].good, src)
            }
        }
    }

    /// Next objective `(net, value)`, or `None` when the current partial
    /// assignment can no longer lead to a test.
    fn objective(&self, vals: &[DVal], sites: &[Fault]) -> Option<(GateId, bool)> {
        // Is any site excited (a fault effect exists somewhere)?
        let mut excitable: Option<(GateId, bool)> = None;
        let mut any_excited = false;
        for &f in sites {
            let (site_good, driver) = self.excitation(vals, f);
            match site_good.to_bool() {
                None => {
                    if excitable.is_none() {
                        excitable = Some((driver, !f.stuck));
                    }
                }
                Some(v) if v != f.stuck => any_excited = true,
                Some(_) => {}
            }
        }
        if !any_excited {
            return excitable; // excite (or dead end if None)
        }
        // Excited: advance the D-frontier.
        let frontier = self.d_frontier(vals, sites);
        let mut best: Option<(u32, GateId, usize)> = None;
        for g in frontier {
            if !self.x_path_to_po(vals, g) {
                continue;
            }
            // Choose the frontier gate cheapest to observe.
            let co = self.report.observability(g);
            // Pick an X input pin to set to the noncontrolling value.
            let gate = self.netlist.gate(g);
            let pin = (0..gate.fanin()).find(|&p| self.pin_val(vals, sites, g, p).good == Logic::X);
            if let Some(pin) = pin {
                if best.is_none_or(|(c, _, _)| co < c) {
                    best = Some((co, g, pin));
                }
            }
        }
        let best = match best {
            Some(b) => b,
            // No frontier progress possible: excite another site if one
            // remains, else dead end.
            None => return excitable,
        };
        let (_, g, pin) = best;
        let gate = self.netlist.gate(g);
        let noncontrolling = match gate.kind().controlling_value() {
            Some(c) => !c,
            // XOR family: any known value propagates; aim for 0.
            None => false,
        };
        let src = gate.inputs()[pin];
        Some((src, noncontrolling))
    }

    /// Gates with a fault effect on an input and an undetermined output.
    fn d_frontier(&self, vals: &[DVal], sites: &[Fault]) -> Vec<GateId> {
        let mut out = Vec::new();
        for (id, gate) in self.netlist.iter() {
            if gate.kind().is_source() || !vals[id.index()].has_x() {
                continue;
            }
            let has_d = (0..gate.fanin()).any(|p| self.pin_val(vals, sites, id, p).is_d());
            if has_d {
                out.push(id);
            }
        }
        out
    }

    /// Whether an X-path (gates with undetermined outputs) connects `from`
    /// to some primary output.
    fn x_path_to_po(&self, vals: &[DVal], from: GateId) -> bool {
        let mut seen = vec![false; self.netlist.gate_count()];
        let mut stack = vec![from];
        while let Some(g) = stack.pop() {
            if seen[g.index()] {
                continue;
            }
            seen[g.index()] = true;
            if self.is_po[g.index()] {
                return true;
            }
            for &(reader, _) in &self.fanout[g.index()] {
                if !seen[reader.index()]
                    && !self.netlist.gate(reader).kind().is_storage()
                    && vals[reader.index()].has_x()
                {
                    stack.push(reader);
                }
            }
        }
        false
    }

    /// Maps an objective `(net, value)` to a primary-input assignment by
    /// walking X-paths toward inputs, guided by SCOAP costs.
    fn backtrace(&self, vals: &[DVal], mut net: GateId, mut v: bool) -> Option<(usize, bool)> {
        loop {
            let gate = self.netlist.gate(net);
            match gate.kind() {
                GateKind::Input => {
                    return Some((self.pi_index[&net], v));
                }
                GateKind::Const0 | GateKind::Const1 | GateKind::Dff => return None,
                GateKind::Buf => net = gate.inputs()[0],
                GateKind::Not => {
                    v = !v;
                    net = gate.inputs()[0];
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let c = gate.kind().controlling_value().expect("AND/OR family");
                    let v_target = v != gate.kind().inverts();
                    let x_inputs: Vec<GateId> = gate
                        .inputs()
                        .iter()
                        .copied()
                        .filter(|&s| vals[s.index()].good == Logic::X)
                        .collect();
                    if x_inputs.is_empty() {
                        return None;
                    }
                    let pick = if v_target == c {
                        // One controlling input suffices: easiest.
                        x_inputs
                            .into_iter()
                            .min_by_key(|&s| self.report.measure(s).control(c))
                    } else {
                        // All inputs must be noncontrolling: hardest first.
                        x_inputs
                            .into_iter()
                            .max_by_key(|&s| self.report.measure(s).control(!c))
                    };
                    net = pick.expect("nonempty");
                    v = v_target == c;
                    v = if v { c } else { !c };
                }
                GateKind::Xor | GateKind::Xnor => {
                    let mut parity = gate.kind() == GateKind::Xnor;
                    let mut pick = None;
                    for &s in gate.inputs() {
                        match vals[s.index()].good.to_bool() {
                            Some(b) => parity ^= b,
                            None => {
                                if pick.is_none() {
                                    pick = Some(s);
                                }
                            }
                        }
                    }
                    let s = pick?;
                    // Remaining X inputs (other than `s`) are treated as 0
                    // by this heuristic; forward implication corrects us.
                    net = s;
                    v = v != parity;
                }
            }
        }
    }
}

/// One-shot convenience wrapper around [`Podem`].
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn podem(
    netlist: &Netlist,
    fault: Fault,
    config: &PodemConfig,
) -> Result<GenOutcome, LevelizeError> {
    podem_observed(netlist, fault, config, None)
}

/// [`podem`] feeding telemetry to an optional collector (both the
/// solver build — `implic.learn` when implications are on — and the
/// `atpg.podem` search span).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn podem_observed(
    netlist: &Netlist,
    fault: Fault,
    config: &PodemConfig,
    obs: Option<&mut dyn Collector>,
) -> Result<GenOutcome, LevelizeError> {
    let mut obs = Obs::new(obs);
    let solver = Podem::new_observed(netlist, *config, obs.as_option())?;
    Ok(solver.solve_with(fault, obs.as_option()).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::{simulate, universe};
    use dft_netlist::circuits::{c17, comparator, full_adder, majority, parity_tree};
    use dft_netlist::{Netlist, PortRef};
    use dft_sim::PatternSet;

    /// Every generated cube must actually detect its fault (independent
    /// check through the fault simulator).
    fn verify_all(netlist: &Netlist) {
        let faults = universe(netlist);
        let solver = Podem::new(netlist, PodemConfig::default()).unwrap();
        for &f in &faults {
            let (outcome, _) = solver.solve(f);
            match outcome {
                GenOutcome::Test(cube) => {
                    let row = cube.filled(false);
                    let p = PatternSet::from_rows(row.len(), &[row]);
                    let r = simulate(netlist, &p, &[f]).unwrap();
                    assert_eq!(
                        r.first_detected[0],
                        Some(0),
                        "cube for {f} does not detect it on {}",
                        netlist.name()
                    );
                }
                GenOutcome::Untestable => {
                    // Cross-check with exhaustive fault simulation.
                    let k = netlist.primary_inputs().len();
                    assert!(k <= 12, "exhaustive check infeasible");
                    let rows: Vec<Vec<bool>> = (0..1usize << k)
                        .map(|v| (0..k).map(|i| v >> i & 1 == 1).collect())
                        .collect();
                    let p = PatternSet::from_rows(k, &rows);
                    let r = simulate(netlist, &p, &[f]).unwrap();
                    assert_eq!(
                        r.first_detected[0],
                        None,
                        "{f} declared untestable but a test exists on {}",
                        netlist.name()
                    );
                }
                GenOutcome::Aborted => panic!("abort on tiny circuit for {f}"),
            }
        }
    }

    #[test]
    fn complete_and_sound_on_c17() {
        verify_all(&c17());
    }

    #[test]
    fn complete_and_sound_on_full_adder() {
        verify_all(&full_adder());
    }

    #[test]
    fn complete_and_sound_on_majority() {
        verify_all(&majority());
    }

    #[test]
    fn complete_and_sound_on_parity_tree() {
        verify_all(&parity_tree(5));
    }

    #[test]
    fn complete_and_sound_on_comparator() {
        verify_all(&comparator(3));
    }

    #[test]
    fn complete_and_sound_on_random_logic() {
        let n = dft_netlist::circuits::random_combinational(9, 40, 77);
        verify_all(&n);
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        use dft_netlist::GateKind;
        let mut n = Netlist::new("redundant");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = n.add_gate(GateKind::Or, &[a, g]).unwrap();
        n.mark_output(y, "y").unwrap();
        let f = dft_fault::Fault::stuck_at_0(PortRef::output(g));
        let outcome = podem(&n, f, &PodemConfig::default()).unwrap();
        assert_eq!(outcome, GenOutcome::Untestable);
    }

    #[test]
    fn state_behind_dffs_is_uncontrollable() {
        // y = AND(a, q) where q is an uncontrollable DFF: the a s-a-0
        // fault cannot be tested combinationally (needs q = 1).
        use dft_netlist::GateKind;
        let mut n = Netlist::new("seq");
        let a = n.add_input("a");
        let d = n.add_dff(a).unwrap();
        let y = n.add_gate(GateKind::And, &[a, d]).unwrap();
        n.mark_output(y, "y").unwrap();
        let f = dft_fault::Fault::stuck_at_0(PortRef::input(y, 0));
        let outcome = podem(&n, f, &PodemConfig::default()).unwrap();
        assert_eq!(
            outcome,
            GenOutcome::Untestable,
            "combinational ATPG must give up on state — the paper's motivation for scan"
        );
    }

    #[test]
    fn cube_helpers() {
        let c1 = TestCube {
            assignment: vec![Logic::One, Logic::X, Logic::Zero],
        };
        let c2 = TestCube {
            assignment: vec![Logic::X, Logic::Zero, Logic::Zero],
        };
        assert!(c1.compatible(&c2));
        let m = c1.merged(&c2);
        assert_eq!(m.assignment, vec![Logic::One, Logic::Zero, Logic::Zero]);
        assert_eq!(m.care_count(), 3);
        assert_eq!(c1.filled(true), vec![true, true, false]);
        let c3 = TestCube {
            assignment: vec![Logic::Zero, Logic::X, Logic::X],
        };
        assert!(!c1.compatible(&c3));
    }
}
