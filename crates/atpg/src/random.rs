//! Random, weighted-random and exhaustive pattern generation.
//!
//! §IV-A of the paper: with scan in place, "adaptive random test
//! generation \[87\], \[95\], \[98\] are again viable approaches"; §V-A adds
//! that "combinational logic is highly susceptible to random patterns" —
//! with the PLA exception quantified in experiment E11.

use dft_fault::{DetectionResult, Fault, Ppsfp};
use dft_netlist::{LevelizeError, Netlist};
use dft_sim::PatternSet;
use dft_testability::analyze;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a random-generation campaign.
#[derive(Clone, Debug)]
pub struct RandomAtpgOutcome {
    /// The patterns that were applied (in application order).
    pub patterns: PatternSet,
    /// Detection results over the supplied fault list.
    pub detection: DetectionResult,
}

impl RandomAtpgOutcome {
    /// Final fault coverage.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.detection.coverage()
    }
}

/// Applies up to `budget` uniform random patterns (with fault dropping),
/// stopping early once `target_coverage` is reached.
///
/// Patterns are generated in wide 256-pattern chunks, so when
/// stopping at a partial coverage target a few more than the exact
/// stopping point may be applied; a run that detects *every* fault is
/// trimmed to the last useful pattern. Deterministic in `seed`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn random_atpg(
    netlist: &Netlist,
    faults: &[Fault],
    budget: usize,
    target_coverage: f64,
    seed: u64,
) -> Result<RandomAtpgOutcome, LevelizeError> {
    let weights = vec![0.5; netlist.primary_inputs().len()];
    weighted_random_atpg(netlist, faults, &weights, budget, target_coverage, seed)
}

/// Patterns graded per engine call during random generation: 4 blocks
/// of 64, exactly the point where [`Ppsfp`]'s `LaneWidth::Auto` switches
/// to 256-lane wide words — one levelized baseline sweep and one event
/// propagation per fault then cover the whole chunk. First detections
/// are independent of the chunk size (the engine reports the global
/// first within the set); only the coverage-target check granularity
/// changes.
const RANDOM_CHUNK: usize = 256;

/// Weighted-random generation (the paper's reference \[95\]): input *i* is
/// driven to 1 with probability `weights[i]`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the input count.
pub fn weighted_random_atpg(
    netlist: &Netlist,
    faults: &[Fault],
    weights: &[f64],
    budget: usize,
    target_coverage: f64,
    seed: u64,
) -> Result<RandomAtpgOutcome, LevelizeError> {
    assert_eq!(weights.len(), netlist.primary_inputs().len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut applied = PatternSet::new(weights.len());
    let mut first_detected: Vec<Option<usize>> = vec![None; faults.len()];
    let mut live: Vec<usize> = (0..faults.len()).collect();
    // Compile the PPSFP engine once for the whole campaign; each
    // 64-pattern batch is then a single `run` with no recompilation.
    let engine = Ppsfp::new(netlist)?;

    while applied.len() < budget && !live.is_empty() {
        let chunk = RANDOM_CHUNK.min(budget - applied.len());
        let base = applied.len();
        let batch = PatternSet::weighted_random(weights, chunk, &mut rng);
        let live_faults: Vec<Fault> = live.iter().map(|&i| faults[i]).collect();
        let r = engine.run(&batch, &live_faults);
        let mut still = Vec::with_capacity(live.len());
        for (k, &fi) in live.iter().enumerate() {
            match r.first_detected[k] {
                Some(p) => first_detected[fi] = Some(base + p),
                None => still.push(fi),
            }
        }
        live = still;
        applied.extend_from(&batch);
        let covered = (faults.len() - live.len()) as f64 / faults.len().max(1) as f64;
        if covered >= target_coverage {
            break;
        }
    }

    // Full coverage: everything past the last first-detection is dead
    // weight from the wide chunk — trim it so a fast-falling circuit
    // isn't padded out to the chunk boundary.
    if live.is_empty() && !faults.is_empty() {
        let useful = first_detected.iter().flatten().max().map_or(0, |&p| p + 1);
        if useful < applied.len() {
            let rows: Vec<Vec<bool>> = (0..useful).map(|p| applied.get(p)).collect();
            applied = PatternSet::from_rows(weights.len(), &rows);
        }
    }

    Ok(RandomAtpgOutcome {
        detection: DetectionResult {
            first_detected,
            pattern_count: applied.len(),
        },
        patterns: applied,
    })
}

/// Derives per-input weights from SCOAP controllabilities: inputs that
/// feed logic needing mostly 1s get a higher 1-probability. A cheap
/// stand-in for the adaptive schemes of \[87\]/\[95\].
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn scoap_weights(netlist: &Netlist) -> Result<Vec<f64>, LevelizeError> {
    let report = analyze(netlist)?;
    let fanout = netlist.fanout_map();
    Ok(netlist
        .primary_inputs()
        .iter()
        .map(|&pi| {
            // Look at what the input feeds: AND-ish consumers want 1s to
            // open paths, OR-ish want 0s. Approximate with the consumer
            // gates' output controllability imbalance.
            let mut want1 = 1.0f64;
            let mut want0 = 1.0f64;
            for &(reader, _) in &fanout[pi.index()] {
                let m = report.measure(reader);
                // Harder-to-1 consumers pull the weight toward 1.
                want1 += f64::from(m.cc1.min(1_000));
                want0 += f64::from(m.cc0.min(1_000));
            }
            (want1 / (want0 + want1)).clamp(0.1, 0.9)
        })
        .collect())
}

/// Applies every one of the 2ⁿ input patterns (n ≤ 30) with fault
/// dropping — "exhaustive" functional testing, §I-B.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the input count exceeds
/// [`dft_sim::exhaustive::MAX_EXHAUSTIVE_INPUTS`].
pub fn exhaustive_atpg(
    netlist: &Netlist,
    faults: &[Fault],
) -> Result<DetectionResult, LevelizeError> {
    let n = netlist.primary_inputs().len();
    let blocks = dft_sim::exhaustive::block_count(n);
    let lanes = dft_sim::exhaustive::lanes(n) as usize;
    let view = dft_fault::FaultyView::new(netlist)?;
    let state = vec![0u64; view.storage().len()];
    let outputs: Vec<_> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();
    let lane_mask = if lanes == 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    };

    let mut first_detected: Vec<Option<usize>> = vec![None; faults.len()];
    let mut live: Vec<usize> = (0..faults.len()).collect();
    for b in 0..blocks {
        if live.is_empty() {
            break;
        }
        let words = dft_sim::exhaustive::input_words(n, b);
        let good = view.eval_block(&words, &state, None);
        live.retain(|&fi| {
            let vals = view.eval_block(&words, &state, Some(faults[fi]));
            let mut diff = 0u64;
            for &g in &outputs {
                diff |= (vals[g.index()] ^ good[g.index()]) & lane_mask;
            }
            if diff != 0 {
                first_detected[fi] = Some(b as usize * 64 + diff.trailing_zeros() as usize);
                false
            } else {
                true
            }
        });
    }
    Ok(DetectionResult {
        first_detected,
        pattern_count: (blocks as usize) * lanes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::universe;
    use dft_netlist::circuits::random_pattern_resistant_pla;
    use dft_netlist::circuits::{c17, majority, random_combinational};

    #[test]
    fn random_covers_easy_logic_quickly() {
        let n = c17();
        let faults = universe(&n);
        let r = random_atpg(&n, &faults, 512, 1.0, 1).unwrap();
        assert_eq!(r.coverage(), 1.0);
        assert!(r.patterns.len() <= 192, "c17 should fall fast");
    }

    #[test]
    fn early_stop_at_target_coverage() {
        let n = random_combinational(10, 80, 2);
        let faults = universe(&n);
        let partial = random_atpg(&n, &faults, 10_000, 0.5, 3).unwrap();
        let full = random_atpg(&n, &faults, 10_000, 1.0, 3).unwrap();
        assert!(partial.patterns.len() <= full.patterns.len());
        assert!(partial.coverage() >= 0.5);
    }

    #[test]
    fn pla_resists_random_patterns() {
        // The paper's §V-A: a 20-input AND term activates with
        // probability 2⁻²⁰ — random patterns all but never test it.
        let pla = random_pattern_resistant_pla(22, 6, 20, 2, 4).synthesize("hard_pla");
        let faults = universe(&pla);
        let r = random_atpg(&pla, &faults, 2_000, 1.0, 5).unwrap();
        assert!(
            r.coverage() < 0.9,
            "2000 random patterns must miss wide AND terms (got {})",
            r.coverage()
        );
    }

    #[test]
    fn exhaustive_matches_random_limit_on_small_circuit() {
        let n = majority();
        let faults = universe(&n);
        let ex = exhaustive_atpg(&n, &faults).unwrap();
        assert_eq!(ex.coverage(), 1.0);
        assert_eq!(ex.pattern_count, 8);
    }

    #[test]
    fn scoap_weights_are_probabilities() {
        let n = random_combinational(8, 60, 9);
        let w = scoap_weights(&n).unwrap();
        assert_eq!(w.len(), 8);
        assert!(w.iter().all(|&p| (0.1..=0.9).contains(&p)));
    }

    #[test]
    fn weighted_random_beats_uniform_on_and_dominated_logic() {
        // A wide AND cone: uniform random hits the all-1 activation with
        // probability 2⁻ⁿ; weighting inputs toward 1 finds it faster.
        use dft_netlist::{GateKind, Netlist};
        let mut n = Netlist::new("wide_and");
        let ins: Vec<_> = (0..12).map(|i| n.add_input(format!("x{i}"))).collect();
        let g = n.add_gate(GateKind::And, &ins).unwrap();
        n.mark_output(g, "y").unwrap();
        let faults = universe(&n);
        let uniform = random_atpg(&n, &faults, 1_000, 1.0, 7).unwrap();
        let weighted = weighted_random_atpg(&n, &faults, &[0.9; 12], 1_000, 1.0, 7).unwrap();
        assert!(weighted.coverage() >= uniform.coverage());
        assert!(weighted.coverage() > 0.9);
    }
}
