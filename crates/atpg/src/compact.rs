//! Test-set compaction.
//!
//! §IV of the paper notes scan's "apparent disadvantage … the
//! serialization of the test": every pattern costs a full chain shift, so
//! pattern count directly multiplies test time (experiment E9 measures
//! it). Compaction fights back: merge compatible cubes statically, then
//! drop patterns that detect nothing new in a reverse-order pass.

use dft_fault::{Fault, Ppsfp};
use dft_netlist::{LevelizeError, Netlist};
use dft_sim::PatternSet;

use crate::podem::TestCube;

/// Greedy static merging of compatible cubes (first-fit).
///
/// Cubes with non-conflicting care bits are merged; the result is a
/// smaller cube list covering the same deterministic objectives.
#[must_use]
pub fn merge_cubes(cubes: &[TestCube]) -> Vec<TestCube> {
    let mut merged: Vec<TestCube> = Vec::new();
    // Densest cubes first: they are the hardest to place.
    let mut order: Vec<&TestCube> = cubes.iter().collect();
    order.sort_by_key(|c| std::cmp::Reverse(c.care_count()));
    for cube in order {
        match merged.iter_mut().find(|m| m.compatible(cube)) {
            Some(m) => *m = m.merged(cube),
            None => merged.push(cube.clone()),
        }
    }
    merged
}

/// Patterns graded per reverse-drop window: 4 blocks of 64, the point
/// where [`Ppsfp`]'s `LaneWidth::Auto` switches to 256-lane wide words,
/// so one baseline sweep and one event propagation per fault grade the
/// whole window. The greedy result is window-size-invariant (see
/// [`reverse_order_drop`]).
const DROP_WINDOW: usize = 256;

/// Reverse-order pattern dropping: fault-simulate the set in reverse and
/// keep only patterns that detect a not-yet-detected fault.
///
/// Patterns late in a deterministically grown set tend to target hard
/// faults and incidentally cover the easy ones, so reversing maximizes
/// the drop count.
///
/// Implementation: the set is walked in reverse *windows* of 256
/// patterns, each packed (newest pattern in lane 0) and
/// graded in one [`Ppsfp`] pass over the still-undetected faults. A
/// fault's first-detecting lane is exactly the latest pattern in the
/// window that detects it, and the greedy reverse pass keeps a pattern
/// iff some surviving fault has its latest detection there — so one
/// dropping fault-sim pass per window reproduces the pattern-at-a-time
/// greedy result exactly (for *any* window size), turning the old
/// O(patterns × full-set sims) loop into O(patterns / window)
/// cone-restricted passes with cross-window fault dropping.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn reverse_order_drop(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
) -> Result<PatternSet, LevelizeError> {
    let n_pi = patterns.input_count();
    if patterns.is_empty() || faults.is_empty() {
        return Ok(PatternSet::new(n_pi));
    }
    let engine = Ppsfp::new(netlist)?;
    let mut live: Vec<Fault> = faults.to_vec();
    let mut kept: Vec<usize> = Vec::new();
    let mut end = patterns.len();
    while end > 0 && !live.is_empty() {
        let start = end.saturating_sub(DROP_WINDOW);
        // Lane l of the window is pattern end-1-l: reverse order, so a
        // fault's first-detecting lane is its latest detecting pattern.
        let window: Vec<Vec<bool>> = (start..end).rev().map(|p| patterns.get(p)).collect();
        let set = PatternSet::from_rows(n_pi, &window);
        let r = engine.run(&set, &live);
        let mut keep_lane = vec![false; end - start];
        let mut still = Vec::with_capacity(live.len());
        for (i, d) in r.first_detected.iter().enumerate() {
            match d {
                Some(lane) => keep_lane[*lane] = true,
                None => still.push(live[i]),
            }
        }
        for (lane, keep) in keep_lane.iter().enumerate() {
            if *keep {
                kept.push(end - 1 - lane);
            }
        }
        live = still;
        end = start;
    }
    kept.sort_unstable();
    let rows: Vec<Vec<bool>> = kept.iter().map(|&p| patterns.get(p)).collect();
    Ok(PatternSet::from_rows(n_pi, &rows))
}

/// Full compaction pipeline for deterministic cubes: merge, fill
/// don't-cares with 0, then reverse-order drop against `faults`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn compact(
    netlist: &Netlist,
    cubes: &[TestCube],
    faults: &[Fault],
) -> Result<PatternSet, LevelizeError> {
    let merged = merge_cubes(cubes);
    let rows: Vec<Vec<bool>> = merged.iter().map(|c| c.filled(false)).collect();
    let set = PatternSet::from_rows(netlist.primary_inputs().len(), &rows);
    reverse_order_drop(netlist, &set, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::podem::{GenOutcome, Podem, PodemConfig};
    use dft_fault::{simulate, universe};
    use dft_netlist::circuits::c17;
    use dft_sim::Logic;

    fn cube(bits: &[Option<bool>]) -> TestCube {
        TestCube {
            assignment: bits
                .iter()
                .map(|b| b.map(Logic::from).unwrap_or(Logic::X))
                .collect(),
        }
    }

    #[test]
    fn merge_combines_compatible_cubes() {
        let cubes = vec![
            cube(&[Some(true), None, None]),
            cube(&[None, Some(false), None]),
            cube(&[Some(false), None, Some(true)]),
        ];
        let merged = merge_cubes(&cubes);
        assert_eq!(merged.len(), 2);
        let total_care: usize = merged.iter().map(TestCube::care_count).sum();
        assert_eq!(total_care, 4);
    }

    #[test]
    fn merge_of_identical_cubes_is_one() {
        let c = cube(&[Some(true), Some(false)]);
        let merged = merge_cubes(&[c.clone(), c.clone(), c]);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn compaction_preserves_coverage_and_shrinks() {
        let n = c17();
        let faults = universe(&n);
        let solver = Podem::new(&n, PodemConfig::default()).unwrap();
        let cubes: Vec<TestCube> = faults
            .iter()
            .filter_map(|&f| match solver.solve(f).0 {
                GenOutcome::Test(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(cubes.len(), faults.len(), "c17 is fully testable");
        let compacted = compact(&n, &cubes, &faults).unwrap();
        assert!(
            compacted.len() < cubes.len(),
            "compaction must shrink {} cubes (got {})",
            cubes.len(),
            compacted.len()
        );
        let r = simulate(&n, &compacted, &faults).unwrap();
        assert_eq!(r.coverage(), 1.0, "compaction must not lose coverage");
    }

    /// The pattern-at-a-time greedy the windowed engine must reproduce
    /// byte for byte.
    fn naive_reverse_order_drop(
        netlist: &dft_netlist::Netlist,
        patterns: &PatternSet,
        faults: &[dft_fault::Fault],
    ) -> PatternSet {
        let mut kept_rows: Vec<Vec<bool>> = Vec::new();
        let mut undetected: Vec<dft_fault::Fault> = faults.to_vec();
        for p in (0..patterns.len()).rev() {
            if undetected.is_empty() {
                break;
            }
            let row = patterns.get(p);
            let single = PatternSet::from_rows(patterns.input_count(), std::slice::from_ref(&row));
            let r = dft_fault::simulate(netlist, &single, &undetected).unwrap();
            let mut caught_any = false;
            let mut still = Vec::with_capacity(undetected.len());
            for (i, f) in undetected.iter().enumerate() {
                if r.first_detected[i].is_some() {
                    caught_any = true;
                } else {
                    still.push(*f);
                }
            }
            if caught_any {
                kept_rows.push(row);
                undetected = still;
            }
        }
        kept_rows.reverse();
        PatternSet::from_rows(patterns.input_count(), &kept_rows)
    }

    #[test]
    fn windowed_drop_is_byte_identical_to_naive_greedy() {
        use dft_netlist::circuits::{random_combinational, redundant_fixture};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut cases: Vec<(dft_netlist::Netlist, PatternSet)> = Vec::new();
        // c17 exhaustive plus a duplicated set (heavy dropping).
        let mut rows: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        rows.extend(rows.clone());
        cases.push((c17(), PatternSet::from_rows(5, &rows)));
        // Multi-window random rosters, including a ragged final window.
        for (seed, count) in [(9u64, 150usize), (5, 200)] {
            let n = random_combinational(12, 80, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
            let p = PatternSet::random(12, count, &mut rng);
            cases.push((n, p));
        }
        let fixture = redundant_fixture();
        let width = fixture.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(3);
        let p = PatternSet::random(width, 70, &mut rng);
        cases.push((fixture, p));
        for (n, p) in cases {
            let faults = universe(&n);
            let fast = reverse_order_drop(&n, &p, &faults).unwrap();
            let naive = naive_reverse_order_drop(&n, &p, &faults);
            assert_eq!(fast, naive, "kept sets differ on {}", n.name());
        }
    }

    #[test]
    fn reverse_drop_removes_redundant_patterns() {
        let n = c17();
        let faults = universe(&n);
        // Duplicate an exhaustive set: at least half must drop.
        let mut rows: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        rows.extend(rows.clone());
        let set = PatternSet::from_rows(5, &rows);
        let dropped = reverse_order_drop(&n, &set, &faults).unwrap();
        assert!(
            dropped.len() <= 10,
            "64 patterns → few: got {}",
            dropped.len()
        );
        let r = simulate(&n, &dropped, &faults).unwrap();
        assert_eq!(r.coverage(), 1.0);
    }
}
