//! # dft-atpg
//!
//! Automatic test-pattern generation for the *tessera* DFT toolkit.
//!
//! §I of Williams & Parker frames the VLSI testing problem as the twin
//! costs of *test generation* and *test verification*; §IV's structured
//! techniques exist to make the generators here applicable ("techniques
//! such as the D-Algorithm, compiled code Boolean simulation, and
//! adaptive random test generation are again viable"). This crate
//! implements those generators:
//!
//! * [`podem`] — PI-decision based deterministic ATPG (complete for
//!   combinational logic).
//! * [`dalg`] — the D-Algorithm (Roth, the paper's reference \[93\]):
//!   internal-line decisions with a J-frontier, cross-checked against
//!   PODEM.
//! * [`random_atpg`] / [`weighted_random_atpg`] — random-pattern
//!   generation with fault dropping (references \[87\], \[95\], \[98\]).
//! * [`exhaustive_atpg`] — all-2ⁿ application for small cones.
//! * [`compact`] — static cube merging plus reverse-order pattern
//!   dropping.
//! * [`generate_tests`] — the production flow: random phase, then
//!   deterministic top-off, then compaction; returns patterns, per-fault
//!   status and effort counters (used by the Eq. (1) scaling experiment).
//!
//! ```
//! use dft_netlist::circuits::c17;
//! use dft_fault::universe;
//! use dft_atpg::{generate_tests, AtpgConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c17 = c17();
//! let faults = universe(&c17);
//! let run = generate_tests(&c17, &faults, &AtpgConfig::default())?;
//! assert_eq!(run.coverage(), 1.0);
//! assert!(run.patterns.len() <= 16, "c17 needs only a handful of tests");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod compact;
mod dalg;
mod engine;
pub mod parallel;
mod podem;
mod random;
mod timeframe;
mod v5;

pub use compact::{compact, merge_cubes, reverse_order_drop};
pub use dalg::{dalg, dalg_observed, dalg_with, DalgConfig};
pub use engine::{
    generate_tests, generate_tests_observed, AtpgConfig, AtpgRun, DeterministicEngine, FaultStatus,
};
pub use parallel::{deterministic_phase, DetDriver, DetPhase, DetVerdict, WorkerStats};
pub use podem::{podem, podem_observed, GenOutcome, Podem, PodemConfig, SolveStats, TestCube};
pub use random::{
    exhaustive_atpg, random_atpg, scoap_weights, weighted_random_atpg, RandomAtpgOutcome,
};
pub use timeframe::{sequential_podem, Unrolled};
pub use v5::DVal;
