//! The production ATPG flow: random phase, deterministic top-off,
//! compaction.

use dft_fault::{simulate, Fault};
use dft_implic::ImplicationEngine;
use dft_netlist::{LevelizeError, Netlist};
use dft_sim::PatternSet;

use crate::compact::compact;
use crate::dalg::dalg_with;
use crate::podem::{GenOutcome, Podem, PodemConfig, TestCube};
use crate::random::random_atpg;

/// Which deterministic engine tops off the random phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeterministicEngine {
    /// PI-decision PODEM (default; fastest here).
    #[default]
    Podem,
    /// Roth's D-Algorithm.
    DAlgorithm,
}

/// Configuration for [`generate_tests`].
#[derive(Clone, Debug)]
pub struct AtpgConfig {
    /// Random patterns to try before deterministic generation
    /// (0 disables the random phase).
    pub random_budget: usize,
    /// Random-phase seed.
    pub seed: u64,
    /// Deterministic engine for the top-off phase.
    pub engine: DeterministicEngine,
    /// Backtrack limit per fault.
    pub backtrack_limit: u32,
    /// Run compaction on the final set.
    pub compact: bool,
    /// Build a static implication engine (`dft-implic`) for the
    /// deterministic phase: statically-untestable faults skip search
    /// and learned implications prune dead branches early.
    pub use_implications: bool,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_budget: 256,
            seed: 0,
            engine: DeterministicEngine::Podem,
            backtrack_limit: 10_000,
            compact: true,
            use_implications: true,
        }
    }
}

/// Per-fault status after a [`generate_tests`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultStatus {
    /// Detected during the random phase.
    DetectedRandom,
    /// Detected by a deterministic test.
    DetectedDeterministic,
    /// Proven redundant.
    Untestable,
    /// Deterministic search aborted (backtrack limit).
    Aborted,
}

/// The result of a full ATPG run.
#[derive(Clone, Debug)]
pub struct AtpgRun {
    /// Final (compacted) test set.
    pub patterns: PatternSet,
    /// Per-fault outcome, aligned with the input fault list.
    pub status: Vec<FaultStatus>,
    /// Total deterministic backtracks.
    pub backtracks: u64,
    /// Total forward implications (effort proxy for Eq. (1)).
    pub forward_evals: u64,
}

impl AtpgRun {
    /// Coverage counting untestable faults as covered (they cannot cause
    /// an escape — the usual "testable coverage" figure) — and raw
    /// detected-only coverage via [`AtpgRun::detected_coverage`].
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.status.is_empty() {
            return 1.0;
        }
        let ok = self
            .status
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    FaultStatus::DetectedRandom
                        | FaultStatus::DetectedDeterministic
                        | FaultStatus::Untestable
                )
            })
            .count();
        ok as f64 / self.status.len() as f64
    }

    /// Fraction of faults actually detected by the pattern set.
    #[must_use]
    pub fn detected_coverage(&self) -> f64 {
        if self.status.is_empty() {
            return 1.0;
        }
        let ok = self
            .status
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    FaultStatus::DetectedRandom | FaultStatus::DetectedDeterministic
                )
            })
            .count();
        ok as f64 / self.status.len() as f64
    }

    /// Number of aborted faults.
    #[must_use]
    pub fn aborted(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Aborted))
            .count()
    }
}

/// Runs the full ATPG flow on a combinational netlist (or the
/// combinational test view extracted by `dft-scan`).
///
/// 1. Random phase: up to `random_budget` patterns with fault dropping.
/// 2. Deterministic phase: PODEM or the D-Algorithm per surviving fault.
/// 3. Optional compaction (cube merge + reverse-order drop), re-verified
///    by fault simulation.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn generate_tests(
    netlist: &Netlist,
    faults: &[Fault],
    config: &AtpgConfig,
) -> Result<AtpgRun, LevelizeError> {
    let mut status = vec![FaultStatus::Aborted; faults.len()];
    let mut cubes: Vec<TestCube> = Vec::new();
    let mut random_rows: Vec<Vec<bool>> = Vec::new();
    let mut backtracks = 0u64;
    let mut forward_evals = 0u64;

    // Phase 1: random with dropping.
    let mut remaining: Vec<usize> = (0..faults.len()).collect();
    if config.random_budget > 0 {
        let r = random_atpg(netlist, faults, config.random_budget, 1.0, config.seed)?;
        // Keep only the useful prefix patterns (those that detected
        // something first).
        let mut used: Vec<usize> = r
            .detection
            .first_detected
            .iter()
            .flatten()
            .copied()
            .collect();
        used.sort_unstable();
        used.dedup();
        for &p in &used {
            random_rows.push(r.patterns.get(p));
        }
        remaining = r
            .detection
            .first_detected
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_none().then_some(i))
            .collect();
        for (i, d) in r.detection.first_detected.iter().enumerate() {
            if d.is_some() {
                status[i] = FaultStatus::DetectedRandom;
            }
        }
    }

    // Phase 2: deterministic top-off. One implication engine is shared
    // across every D-algorithm call; the PODEM solver builds its own.
    let podem_cfg = PodemConfig {
        backtrack_limit: config.backtrack_limit,
        use_implications: config.use_implications,
    };
    let solver = Podem::new(netlist, podem_cfg)?;
    let implic_engine = (config.use_implications
        && config.engine == DeterministicEngine::DAlgorithm)
        .then(|| ImplicationEngine::new(netlist));
    for &fi in &remaining {
        let outcome = match config.engine {
            DeterministicEngine::Podem => {
                let (o, stats) = solver.solve(faults[fi]);
                backtracks += u64::from(stats.backtracks);
                forward_evals += stats.forward_evals;
                o
            }
            DeterministicEngine::DAlgorithm => {
                let (o, stats) =
                    dalg_with(netlist, faults[fi], &podem_cfg, implic_engine.as_ref())?;
                backtracks += u64::from(stats.backtracks);
                forward_evals += stats.forward_evals;
                o
            }
        };
        status[fi] = match outcome {
            GenOutcome::Test(cube) => {
                cubes.push(cube);
                FaultStatus::DetectedDeterministic
            }
            GenOutcome::Untestable => FaultStatus::Untestable,
            GenOutcome::Aborted => FaultStatus::Aborted,
        };
    }

    // Phase 3: assemble + compact.
    let n_pi = netlist.primary_inputs().len();
    let patterns = if config.compact {
        let mut set = compact(netlist, &cubes, faults)?;
        // Compaction covers deterministic targets; re-add the random rows
        // and drop again to be sure nothing regressed.
        let mut all_rows: Vec<Vec<bool>> = random_rows;
        all_rows.extend((0..set.len()).map(|p| set.get(p)));
        set = PatternSet::from_rows(n_pi, &all_rows);
        crate::compact::reverse_order_drop(netlist, &set, faults)?
    } else {
        let mut rows = random_rows;
        rows.extend(cubes.iter().map(|c| c.filled(false)));
        PatternSet::from_rows(n_pi, &rows)
    };

    // Final verification pass: statuses must be consistent with the
    // actual pattern set (detected faults stay detected).
    debug_assert!({
        let r = simulate(netlist, &patterns, faults)?;
        status.iter().enumerate().all(|(i, s)| match s {
            FaultStatus::DetectedRandom | FaultStatus::DetectedDeterministic => {
                r.first_detected[i].is_some()
            }
            _ => true,
        })
    });

    Ok(AtpgRun {
        patterns,
        status,
        backtracks,
        forward_evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::universe;
    use dft_netlist::circuits::{c17, comparator, random_combinational};

    #[test]
    fn full_flow_covers_c17() {
        let n = c17();
        let faults = universe(&n);
        let run = generate_tests(&n, &faults, &AtpgConfig::default()).unwrap();
        assert_eq!(run.coverage(), 1.0);
        assert_eq!(run.detected_coverage(), 1.0);
        let r = simulate(&n, &run.patterns, &faults).unwrap();
        assert_eq!(r.coverage(), 1.0, "patterns must actually detect");
    }

    #[test]
    fn deterministic_only_flow() {
        let n = comparator(3);
        let faults = universe(&n);
        let cfg = AtpgConfig {
            random_budget: 0,
            ..AtpgConfig::default()
        };
        let run = generate_tests(&n, &faults, &cfg).unwrap();
        assert!(run.coverage() > 0.99);
        assert!(run
            .status
            .iter()
            .all(|s| !matches!(s, FaultStatus::DetectedRandom)));
    }

    #[test]
    fn dalg_engine_flow() {
        let n = c17();
        let faults = universe(&n);
        let cfg = AtpgConfig {
            engine: DeterministicEngine::DAlgorithm,
            random_budget: 0,
            ..AtpgConfig::default()
        };
        let run = generate_tests(&n, &faults, &cfg).unwrap();
        assert_eq!(run.coverage(), 1.0);
    }

    #[test]
    fn compaction_shrinks_without_losing_coverage() {
        let n = random_combinational(10, 60, 3);
        let faults = universe(&n);
        let with = generate_tests(&n, &faults, &AtpgConfig::default()).unwrap();
        let without = generate_tests(
            &n,
            &faults,
            &AtpgConfig {
                compact: false,
                ..AtpgConfig::default()
            },
        )
        .unwrap();
        assert!(with.patterns.len() <= without.patterns.len());
        let r = simulate(&n, &with.patterns, &faults).unwrap();
        assert!((r.coverage() - with.detected_coverage()).abs() < 1e-9);
    }

    #[test]
    fn effort_counters_accumulate() {
        let n = random_combinational(10, 80, 11);
        let faults = universe(&n);
        let cfg = AtpgConfig {
            random_budget: 0,
            ..AtpgConfig::default()
        };
        let run = generate_tests(&n, &faults, &cfg).unwrap();
        assert!(run.forward_evals > 0);
    }
}
