//! The production ATPG flow: random phase, deterministic top-off,
//! compaction.

use dft_fault::{simulate, Fault};
use dft_netlist::{LevelizeError, Netlist};
use dft_obs::{Collector, Obs};
use dft_sim::PatternSet;

use crate::compact::reverse_order_drop;
use crate::parallel::{deterministic_phase, DetVerdict};
use crate::random::random_atpg;

/// Which deterministic engine tops off the random phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeterministicEngine {
    /// PI-decision PODEM (default; fastest here).
    #[default]
    Podem,
    /// Roth's D-Algorithm.
    DAlgorithm,
}

/// Configuration for [`generate_tests`].
///
/// `#[non_exhaustive]`: construct via [`Default`] and the `with_*`
/// builders so new knobs can be added without breaking downstream
/// crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct AtpgConfig {
    /// Random patterns to try before deterministic generation
    /// (0 disables the random phase).
    pub random_budget: usize,
    /// Random-phase seed.
    pub seed: u64,
    /// Deterministic engine for the top-off phase.
    pub engine: DeterministicEngine,
    /// Backtrack limit per fault.
    pub backtrack_limit: u32,
    /// Run compaction on the final set.
    pub compact: bool,
    /// Build a static implication engine (`dft-implic`) for the
    /// deterministic phase: statically-untestable faults skip search
    /// and learned implications prune dead branches early.
    pub use_implications: bool,
    /// Worker threads for the deterministic phase (0 = all cores). The
    /// result is identical for every value — see [`crate::parallel`].
    pub threads: usize,
    /// Fault-simulate each batch's fresh cubes over the unattempted
    /// queue tail and drop the faults they already detect, so no solver
    /// runs on an already-covered fault.
    pub collateral_dropping: bool,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_budget: 256,
            seed: 0,
            engine: DeterministicEngine::Podem,
            backtrack_limit: 10_000,
            compact: true,
            use_implications: true,
            threads: 0,
            collateral_dropping: true,
        }
    }
}

impl AtpgConfig {
    /// Defaults (same as [`Default`], spelled for builder chains).
    #[must_use]
    pub fn new() -> Self {
        AtpgConfig::default()
    }

    /// Sets [`AtpgConfig::random_budget`].
    #[must_use]
    pub fn with_random_budget(mut self, random_budget: usize) -> Self {
        self.random_budget = random_budget;
        self
    }

    /// Sets [`AtpgConfig::seed`].
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets [`AtpgConfig::engine`].
    #[must_use]
    pub fn with_engine(mut self, engine: DeterministicEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets [`AtpgConfig::backtrack_limit`].
    #[must_use]
    pub fn with_backtrack_limit(mut self, backtrack_limit: u32) -> Self {
        self.backtrack_limit = backtrack_limit;
        self
    }

    /// Sets [`AtpgConfig::compact`].
    #[must_use]
    pub fn with_compact(mut self, compact: bool) -> Self {
        self.compact = compact;
        self
    }

    /// Sets [`AtpgConfig::use_implications`].
    #[must_use]
    pub fn with_use_implications(mut self, use_implications: bool) -> Self {
        self.use_implications = use_implications;
        self
    }

    /// Sets [`AtpgConfig::threads`].
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets [`AtpgConfig::collateral_dropping`].
    #[must_use]
    pub fn with_collateral_dropping(mut self, collateral_dropping: bool) -> Self {
        self.collateral_dropping = collateral_dropping;
        self
    }
}

/// Per-fault status after a [`generate_tests`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultStatus {
    /// Detected during the random phase.
    DetectedRandom,
    /// Detected by a deterministic test.
    DetectedDeterministic,
    /// Proven redundant.
    Untestable,
    /// Deterministic search aborted (backtrack limit).
    Aborted,
}

/// The result of a full ATPG run.
#[derive(Clone, Debug)]
pub struct AtpgRun {
    /// Final (compacted) test set.
    pub patterns: PatternSet,
    /// Per-fault outcome, aligned with the input fault list.
    pub status: Vec<FaultStatus>,
    /// Total deterministic backtracks.
    pub backtracks: u64,
    /// Total forward implications (effort proxy for Eq. (1)).
    pub forward_evals: u64,
}

impl AtpgRun {
    /// Coverage counting untestable faults as covered (they cannot cause
    /// an escape — the usual "testable coverage" figure) — and raw
    /// detected-only coverage via [`AtpgRun::detected_coverage`].
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.status.is_empty() {
            return 1.0;
        }
        let ok = self
            .status
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    FaultStatus::DetectedRandom
                        | FaultStatus::DetectedDeterministic
                        | FaultStatus::Untestable
                )
            })
            .count();
        ok as f64 / self.status.len() as f64
    }

    /// Fraction of faults actually detected by the pattern set.
    #[must_use]
    pub fn detected_coverage(&self) -> f64 {
        if self.status.is_empty() {
            return 1.0;
        }
        let ok = self
            .status
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    FaultStatus::DetectedRandom | FaultStatus::DetectedDeterministic
                )
            })
            .count();
        ok as f64 / self.status.len() as f64
    }

    /// Number of aborted faults.
    #[must_use]
    pub fn aborted(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Aborted))
            .count()
    }
}

/// Runs the full ATPG flow on a combinational netlist (or the
/// combinational test view extracted by `dft-scan`).
///
/// 1. Random phase: up to `random_budget` patterns with fault dropping.
/// 2. Deterministic phase: PODEM or the D-Algorithm per surviving fault.
/// 3. Optional compaction (cube merge + reverse-order drop), re-verified
///    by fault simulation.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn generate_tests(
    netlist: &Netlist,
    faults: &[Fault],
    config: &AtpgConfig,
) -> Result<AtpgRun, LevelizeError> {
    generate_tests_observed(netlist, faults, config, None)
}

/// [`generate_tests`] feeding telemetry to an optional collector.
///
/// Opens an `atpg.generate` span with one child span per flow phase —
/// `atpg.random`, `atpg.deterministic` (which also nests the solver's
/// `implic.learn` build when implications are on), `atpg.compact` —
/// flushing each phase's effort counters once. The deterministic phase
/// aggregates its per-fault [`crate::SolveStats`] into phase totals
/// (`attempts`, `backtracks`, `forward_evals`, `implication_conflicts`,
/// `tests`, `untestable`, `aborted`) rather than emitting one span per
/// fault, keeping reports bounded on large fault lists. The returned
/// [`AtpgRun`] counters are unchanged, so the legacy view and the
/// collector always agree.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn generate_tests_observed(
    netlist: &Netlist,
    faults: &[Fault],
    config: &AtpgConfig,
    obs: Option<&mut dyn Collector>,
) -> Result<AtpgRun, LevelizeError> {
    let mut obs = Obs::new(obs);
    obs.enter("atpg.generate");
    obs.count("faults", faults.len() as u64);
    let mut status = vec![FaultStatus::Aborted; faults.len()];
    let mut random_rows: Vec<Vec<bool>> = Vec::new();
    let mut backtracks = 0u64;
    let mut forward_evals = 0u64;

    // Phase 1: random with dropping.
    let mut remaining: Vec<usize> = (0..faults.len()).collect();
    if config.random_budget > 0 {
        obs.enter("atpg.random");
        let r = random_atpg(netlist, faults, config.random_budget, 1.0, config.seed)?;
        // Keep only the useful prefix patterns (those that detected
        // something first).
        let mut used: Vec<usize> = r
            .detection
            .first_detected
            .iter()
            .flatten()
            .copied()
            .collect();
        used.sort_unstable();
        used.dedup();
        for &p in &used {
            random_rows.push(r.patterns.get(p));
        }
        remaining = r
            .detection
            .first_detected
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_none().then_some(i))
            .collect();
        for (i, d) in r.detection.first_detected.iter().enumerate() {
            if d.is_some() {
                status[i] = FaultStatus::DetectedRandom;
            }
        }
        obs.count("patterns", r.patterns.len() as u64);
        obs.count("kept_patterns", random_rows.len() as u64);
        obs.count("detected", (faults.len() - remaining.len()) as u64);
        obs.exit();
    }

    // Phase 2: deterministic top-off via the threaded batch driver
    // (crate::parallel) — identical output for any thread count.
    obs.enter("atpg.deterministic");
    let det = deterministic_phase(netlist, faults, &remaining, config, obs.as_option())?;
    for (qp, &fi) in remaining.iter().enumerate() {
        status[fi] = match det.verdicts[qp] {
            DetVerdict::Test | DetVerdict::Collateral => FaultStatus::DetectedDeterministic,
            DetVerdict::Untestable => FaultStatus::Untestable,
            DetVerdict::Aborted => FaultStatus::Aborted,
        };
    }
    backtracks += det.backtracks;
    forward_evals += det.forward_evals;
    obs.count("attempts", det.attempts);
    obs.count("backtracks", det.backtracks);
    obs.count("forward_evals", det.forward_evals);
    obs.count("implication_conflicts", det.implication_conflicts);
    obs.count("tests", det.tests);
    obs.count("untestable", det.untestable);
    obs.count("aborted", det.aborted);
    obs.count("collateral_drops", det.collateral);
    obs.exit();

    // Phase 3: assemble + compact. The deterministic rows are already
    // merged per batch and back the collateral credits, so the whole
    // assembly needs only one reverse-order drop (which preserves every
    // detection of the assembled set).
    obs.enter("atpg.compact");
    let n_pi = netlist.primary_inputs().len();
    let mut all_rows = random_rows;
    all_rows.extend(det.rows);
    let set = PatternSet::from_rows(n_pi, &all_rows);
    let patterns = if config.compact {
        reverse_order_drop(netlist, &set, faults)?
    } else {
        set
    };
    obs.count("cubes", det.cubes);
    obs.count("patterns", patterns.len() as u64);
    obs.exit();

    // Final verification pass: statuses must be consistent with the
    // actual pattern set (detected faults stay detected).
    debug_assert!({
        let r = simulate(netlist, &patterns, faults)?;
        status.iter().enumerate().all(|(i, s)| match s {
            FaultStatus::DetectedRandom | FaultStatus::DetectedDeterministic => {
                r.first_detected[i].is_some()
            }
            _ => true,
        })
    });

    let run = AtpgRun {
        patterns,
        status,
        backtracks,
        forward_evals,
    };
    obs.gauge("coverage", run.coverage());
    obs.exit();
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::universe;
    use dft_netlist::circuits::{c17, comparator, random_combinational};

    #[test]
    fn full_flow_covers_c17() {
        let n = c17();
        let faults = universe(&n);
        let run = generate_tests(&n, &faults, &AtpgConfig::default()).unwrap();
        assert_eq!(run.coverage(), 1.0);
        assert_eq!(run.detected_coverage(), 1.0);
        let r = simulate(&n, &run.patterns, &faults).unwrap();
        assert_eq!(r.coverage(), 1.0, "patterns must actually detect");
    }

    #[test]
    fn deterministic_only_flow() {
        let n = comparator(3);
        let faults = universe(&n);
        let cfg = AtpgConfig {
            random_budget: 0,
            ..AtpgConfig::default()
        };
        let run = generate_tests(&n, &faults, &cfg).unwrap();
        assert!(run.coverage() > 0.99);
        assert!(run
            .status
            .iter()
            .all(|s| !matches!(s, FaultStatus::DetectedRandom)));
    }

    #[test]
    fn dalg_engine_flow() {
        let n = c17();
        let faults = universe(&n);
        let cfg = AtpgConfig {
            engine: DeterministicEngine::DAlgorithm,
            random_budget: 0,
            ..AtpgConfig::default()
        };
        let run = generate_tests(&n, &faults, &cfg).unwrap();
        assert_eq!(run.coverage(), 1.0);
    }

    #[test]
    fn compaction_shrinks_without_losing_coverage() {
        let n = random_combinational(10, 60, 3);
        let faults = universe(&n);
        let with = generate_tests(&n, &faults, &AtpgConfig::default()).unwrap();
        let without = generate_tests(
            &n,
            &faults,
            &AtpgConfig {
                compact: false,
                ..AtpgConfig::default()
            },
        )
        .unwrap();
        assert!(with.patterns.len() <= without.patterns.len());
        let r = simulate(&n, &with.patterns, &faults).unwrap();
        assert!((r.coverage() - with.detected_coverage()).abs() < 1e-9);
    }

    #[test]
    fn effort_counters_accumulate() {
        let n = random_combinational(10, 80, 11);
        let faults = universe(&n);
        let cfg = AtpgConfig {
            random_budget: 0,
            ..AtpgConfig::default()
        };
        let run = generate_tests(&n, &faults, &cfg).unwrap();
        assert!(run.forward_evals > 0);
    }
}
