//! The composite good/faulty value used by the deterministic generators.

use std::fmt;

use dft_sim::Logic;

/// A pair of three-valued components: the net's value in the good machine
/// and in the faulty machine.
///
/// This encodes Roth's five-valued D-calculus — `D` is good-1/faulty-0,
/// `D̄` good-0/faulty-1 — plus the partially-known combinations that a
/// componentwise evaluation produces naturally. Evaluating both
/// components with the ordinary three-valued gate semantics is exactly
/// simulating the good and faulty machines of the paper's Fig. 1 in
/// lock-step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DVal {
    /// Value in the good machine.
    pub good: Logic,
    /// Value in the faulty machine.
    pub faulty: Logic,
}

impl DVal {
    /// Fully unknown.
    pub const X: DVal = DVal {
        good: Logic::X,
        faulty: Logic::X,
    };
    /// Known 0 in both machines.
    pub const ZERO: DVal = DVal {
        good: Logic::Zero,
        faulty: Logic::Zero,
    };
    /// Known 1 in both machines.
    pub const ONE: DVal = DVal {
        good: Logic::One,
        faulty: Logic::One,
    };
    /// Roth's D: good 1, faulty 0.
    pub const D: DVal = DVal {
        good: Logic::One,
        faulty: Logic::Zero,
    };
    /// Roth's D̄: good 0, faulty 1.
    pub const DBAR: DVal = DVal {
        good: Logic::Zero,
        faulty: Logic::One,
    };

    /// A value equal in both machines.
    #[must_use]
    pub fn known(v: Logic) -> DVal {
        DVal { good: v, faulty: v }
    }

    /// Whether this is a fault effect (both components known, different).
    #[must_use]
    pub fn is_d(self) -> bool {
        matches!(
            (self.good.to_bool(), self.faulty.to_bool()),
            (Some(a), Some(b)) if a != b
        )
    }

    /// Whether both machines agree on a known value.
    #[must_use]
    pub fn known_equal(self) -> Option<bool> {
        match (self.good.to_bool(), self.faulty.to_bool()) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Whether either component is still unknown.
    #[must_use]
    pub fn has_x(self) -> bool {
        !self.good.is_known() || !self.faulty.is_known()
    }
}

impl fmt::Display for DVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.good, self.faulty) {
            (Logic::One, Logic::Zero) => f.write_str("D"),
            (Logic::Zero, Logic::One) => f.write_str("D̄"),
            (g, ff) if g == ff => write!(f, "{g}"),
            (g, ff) => write!(f, "{g}/{ff}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(DVal::D.is_d());
        assert!(DVal::DBAR.is_d());
        assert!(!DVal::ONE.is_d());
        assert!(!DVal::X.is_d());
        assert_eq!(DVal::ONE.known_equal(), Some(true));
        assert_eq!(DVal::D.known_equal(), None);
        assert!(DVal::X.has_x());
        assert!(!DVal::D.has_x());
        let half = DVal {
            good: Logic::One,
            faulty: Logic::X,
        };
        assert!(half.has_x());
        assert!(!half.is_d());
    }

    #[test]
    fn display() {
        assert_eq!(DVal::D.to_string(), "D");
        assert_eq!(DVal::DBAR.to_string(), "D̄");
        assert_eq!(DVal::ZERO.to_string(), "0");
        assert_eq!(DVal::X.to_string(), "X");
        let half = DVal {
            good: Logic::Zero,
            faulty: Logic::X,
        };
        assert_eq!(half.to_string(), "0/X");
    }
}
