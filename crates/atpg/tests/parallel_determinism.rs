//! The threaded deterministic driver's contract: the thread count is a
//! throughput knob, never a result knob. `generate_tests` must hand back
//! an identical run — patterns, order, statuses, effort counters — for
//! every `threads` setting, and full compaction must never cost patterns
//! or coverage.

use dft_atpg::{generate_tests, AtpgConfig, DeterministicEngine};
use dft_fault::{simulate, universe};
use dft_netlist::circuits::{c17, random_combinational, redundant_fixture};
use dft_netlist::Netlist;

fn roster() -> Vec<Netlist> {
    vec![
        c17(),
        redundant_fixture(),
        // Multi-batch queue so inter-batch dropping is exercised.
        random_combinational(12, 80, 9),
    ]
}

#[test]
fn test_set_is_identical_for_any_thread_count() {
    for n in roster() {
        let faults = universe(&n);
        for engine in [DeterministicEngine::Podem, DeterministicEngine::DAlgorithm] {
            // The D-Algorithm is orders slower per fault; its determinism
            // is engine-independent (the driver is the same code path),
            // so exercise it on the small circuits only.
            if engine == DeterministicEngine::DAlgorithm && n.gate_count() > 20 {
                continue;
            }
            // random_budget 0: every fault reaches the threaded phase.
            let cfg = AtpgConfig::new()
                .with_random_budget(0)
                .with_engine(engine)
                .with_threads(1);
            let base = generate_tests(&n, &faults, &cfg).unwrap();
            for t in [2, 8] {
                let run = generate_tests(&n, &faults, &cfg.clone().with_threads(t)).unwrap();
                assert_eq!(
                    base.patterns,
                    run.patterns,
                    "patterns differ at {t} threads on {} ({engine:?})",
                    n.name()
                );
                assert_eq!(base.status, run.status, "statuses differ at {t} threads");
                assert_eq!(base.backtracks, run.backtracks);
                assert_eq!(base.forward_evals, run.forward_evals);
                assert!((base.coverage() - run.coverage()).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn test_set_is_identical_with_a_random_phase_too() {
    for n in roster() {
        let faults = universe(&n);
        let cfg = AtpgConfig::new().with_threads(1);
        let base = generate_tests(&n, &faults, &cfg).unwrap();
        for t in [2, 8] {
            let run = generate_tests(&n, &faults, &cfg.clone().with_threads(t)).unwrap();
            assert_eq!(base.patterns, run.patterns, "on {}", n.name());
            assert_eq!(base.status, run.status);
        }
    }
}

#[test]
fn compaction_never_costs_patterns_or_coverage() {
    for n in roster() {
        let faults = universe(&n);
        for threads in [1, 4] {
            let cfg = AtpgConfig::new().with_threads(threads);
            let compacted = generate_tests(&n, &faults, &cfg).unwrap();
            let raw = generate_tests(&n, &faults, &cfg.clone().with_compact(false)).unwrap();
            assert!(
                compacted.patterns.len() <= raw.patterns.len(),
                "compaction grew the set on {} ({} vs {})",
                n.name(),
                compacted.patterns.len(),
                raw.patterns.len()
            );
            let with = simulate(&n, &compacted.patterns, &faults).unwrap();
            let without = simulate(&n, &raw.patterns, &faults).unwrap();
            assert!(
                with.coverage() >= without.coverage(),
                "compaction lost coverage on {}",
                n.name()
            );
            // Statuses stay truthful either way: every fault marked
            // detected is detected by the final set.
            assert!((with.coverage() - compacted.detected_coverage()).abs() < 1e-12);
        }
    }
}
