//! Selective-trace event-driven simulation.

use dft_netlist::{GateId, LevelizeError, Netlist};

use crate::Logic;

/// An event-driven simulator: only gates whose inputs changed are
/// re-evaluated.
///
/// For low-activity stimulus (a tester toggling one pin, a degating line
/// being asserted) this visits a small fraction of the network. The
/// `events` counter exposes the activity, which the partitioning
/// experiment (E16) uses to show how degating confines activity to one
/// module.
///
/// ```
/// use dft_netlist::circuits::c17;
/// use dft_sim::{EventSim, Logic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c17 = c17();
/// let mut sim = EventSim::new(&c17)?;
/// sim.set_inputs(&[Logic::Zero; 5]);
/// sim.settle();
/// let before = sim.events();
/// sim.set_input(0, Logic::One); // toggle one pin
/// sim.settle();
/// assert!(sim.events() - before < 7); // far fewer than a full pass
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventSim<'n> {
    netlist: &'n Netlist,
    fanout: Vec<Vec<(GateId, u8)>>,
    level: Vec<u32>,
    values: Vec<Logic>,
    dirty: Vec<bool>,
    /// Gates pending evaluation, bucketed by level.
    queue: Vec<Vec<GateId>>,
    events: u64,
}

impl<'n> EventSim<'n> {
    /// Compiles an event simulator; all values start at X.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist) -> Result<Self, LevelizeError> {
        let lv = netlist.levelize()?;
        let depth = lv.depth() as usize;
        let mut sim = EventSim {
            netlist,
            fanout: netlist.fanout_map(),
            level: netlist.ids().map(|id| lv.level(id)).collect(),
            values: vec![Logic::X; netlist.gate_count()],
            dirty: vec![false; netlist.gate_count()],
            queue: vec![Vec::new(); depth + 2],
            events: 0,
        };
        // Constants settle immediately (they have no inputs to trigger
        // an event, so seed them here).
        for (id, gate) in netlist.iter() {
            match gate.kind() {
                dft_netlist::GateKind::Const0 => sim.drive(id, Logic::Zero),
                dft_netlist::GateKind::Const1 => sim.drive(id, Logic::One),
                _ => {}
            }
        }
        sim.settle();
        Ok(sim)
    }

    /// Current value of a gate's output net.
    #[must_use]
    pub fn value(&self, id: GateId) -> Logic {
        self.values[id.index()]
    }

    /// Total gate evaluations performed so far (the activity metric).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Drives primary input `index` (position in
    /// [`Netlist::primary_inputs`]) to `value`, scheduling its fanout.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_input(&mut self, index: usize, value: Logic) {
        let id = self.netlist.primary_inputs()[index];
        self.drive(id, value);
    }

    /// Drives all primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length.
    pub fn set_inputs(&mut self, values: &[Logic]) {
        assert_eq!(values.len(), self.netlist.primary_inputs().len());
        for (i, &v) in values.iter().enumerate() {
            self.set_input(i, v);
        }
    }

    /// Forces a storage element's output (present state), scheduling its
    /// fanout. The element is identified by its gate id.
    pub fn set_state(&mut self, dff: GateId, value: Logic) {
        self.drive(dff, value);
    }

    fn drive(&mut self, id: GateId, value: Logic) {
        if self.values[id.index()] == value {
            return;
        }
        self.values[id.index()] = value;
        self.schedule_fanout(id);
    }

    fn schedule_fanout(&mut self, id: GateId) {
        for &(reader, _pin) in &self.fanout[id.index()] {
            if self.netlist.gate(reader).kind().is_source() {
                continue; // DFF data input: not evaluated until clocked
            }
            let ri = reader.index();
            if !self.dirty[ri] {
                self.dirty[ri] = true;
                self.queue[self.level[ri] as usize].push(reader);
            }
        }
    }

    /// Propagates all pending events until the network is quiescent.
    /// Returns the number of gate evaluations performed by this call.
    pub fn settle(&mut self) -> u64 {
        let start = self.events;
        let mut lvl = 0;
        while lvl < self.queue.len() {
            while let Some(id) = self.queue[lvl].pop() {
                self.dirty[id.index()] = false;
                let gate = self.netlist.gate(id);
                let mut buf: Vec<Logic> = Vec::with_capacity(gate.fanin());
                buf.extend(gate.inputs().iter().map(|&s| self.values[s.index()]));
                let new = Logic::eval_gate(gate.kind(), &buf);
                self.events += 1;
                if new != self.values[id.index()] {
                    self.values[id.index()] = new;
                    self.schedule_fanout(id);
                }
            }
            lvl += 1;
        }
        self.events - start
    }

    /// Clocks every storage element (state ← settled data-input value),
    /// then settles the resulting activity.
    pub fn clock(&mut self) {
        let updates: Vec<(GateId, Logic)> = self
            .netlist
            .storage_elements()
            .into_iter()
            .map(|dff| {
                let d = self.netlist.gate(dff).inputs()[0];
                (dff, self.values[d.index()])
            })
            .collect();
        for (dff, v) in updates {
            self.drive(dff, v);
        }
        self.settle();
    }

    /// The primary-output row under the current values.
    #[must_use]
    pub fn outputs(&self) -> Vec<Logic> {
        self.netlist
            .primary_outputs()
            .iter()
            .map(|&(g, _)| self.values[g.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::{c17, full_adder, shift_register};
    use dft_sim_test_support::assert_agrees_with_parallel;

    mod dft_sim_test_support {
        use super::super::*;
        use crate::{ParallelSim, PatternSet};

        /// Event simulation and parallel simulation must agree on every
        /// output for every pattern.
        pub fn assert_agrees_with_parallel(netlist: &Netlist, patterns: &[Vec<bool>]) {
            let psim = ParallelSim::new(netlist).unwrap();
            let set = PatternSet::from_rows(netlist.primary_inputs().len(), patterns);
            let presp = psim.run(&set);
            let mut esim = EventSim::new(netlist).unwrap();
            for (pi, pattern) in patterns.iter().enumerate() {
                let logic: Vec<Logic> = pattern.iter().map(|&b| Logic::from(b)).collect();
                esim.set_inputs(&logic);
                esim.settle();
                let eout = esim.outputs();
                for (o, &v) in eout.iter().enumerate() {
                    assert_eq!(
                        v.to_bool(),
                        Some(presp.output_bit(o, pi)),
                        "output {o} pattern {pi}"
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_parallel_on_c17() {
        let n = c17();
        let patterns: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        assert_agrees_with_parallel(&n, &patterns);
    }

    #[test]
    fn agrees_with_parallel_on_full_adder() {
        let n = full_adder();
        let patterns: Vec<Vec<bool>> = (0..8u8)
            .map(|v| (0..3).map(|i| v >> i & 1 == 1).collect())
            .collect();
        assert_agrees_with_parallel(&n, &patterns);
    }

    #[test]
    fn single_pin_toggle_is_cheap() {
        let n = c17();
        let mut sim = EventSim::new(&n).unwrap();
        sim.set_inputs(&[Logic::Zero; 5]);
        let full = sim.settle();
        assert!(full <= 6, "first settle visits at most every gate");
        sim.set_input(4, Logic::One); // input "7" only feeds g19
        let delta = sim.settle();
        assert!(delta <= 2, "toggling one pin must stay local, got {delta}");
    }

    #[test]
    fn clock_shifts_state() {
        let n = shift_register(3);
        let mut sim = EventSim::new(&n).unwrap();
        for dff in n.storage_elements() {
            sim.set_state(dff, Logic::Zero);
        }
        sim.set_inputs(&[Logic::One]);
        sim.settle();
        sim.clock();
        let q: Vec<Logic> = n.storage_elements().iter().map(|&d| sim.value(d)).collect();
        assert_eq!(q, vec![Logic::One, Logic::Zero, Logic::Zero]);
    }

    #[test]
    fn no_change_no_events() {
        let n = c17();
        let mut sim = EventSim::new(&n).unwrap();
        sim.set_inputs(&[Logic::One; 5]);
        sim.settle();
        let before = sim.events();
        sim.set_inputs(&[Logic::One; 5]); // identical values
        sim.settle();
        assert_eq!(sim.events(), before);
    }
}
