//! Shared 64-lane word-evaluation primitives.
//!
//! Every packed simulator in the workspace — [`ParallelSim`](crate::ParallelSim),
//! the compiled [`Kernel`](crate::Kernel), and the fault simulators in
//! `dft-fault` — evaluates gates over `u64` words where each bit lane is an
//! independent pattern (or machine). This module is the single home for
//! that per-gate fold and for the stuck-value masking the fault engines
//! layer on top, so the word semantics cannot drift between engines.

use dft_netlist::GateKind;

/// The packed word a stuck-at value forces: all-ones for s-a-1, all-zeros
/// for s-a-0.
#[must_use]
pub fn stuck_word(stuck: bool) -> u64 {
    if stuck {
        u64::MAX
    } else {
        0
    }
}

/// Forces `stuck` onto the lanes selected by `mask`, leaving the other
/// lanes of `word` untouched — the per-lane injection primitive of
/// parallel-fault simulation (one faulty machine per lane).
#[must_use]
pub fn apply_stuck_mask(word: u64, mask: u64, stuck: bool) -> u64 {
    if stuck {
        word | mask
    } else {
        word & !mask
    }
}

/// Folds a gate over packed operand words without allocating.
///
/// Constants need no operands; every other kind consumes the iterator
/// left-to-right. `Input`/`Dff` are pass-throughs of their single operand
/// (matching [`GateKind::eval_word`], which this is the allocation-free
/// dual of).
///
/// # Panics
///
/// Panics if `operands` is empty for a kind that requires fan-in.
#[must_use]
pub fn fold_word<I: Iterator<Item = u64>>(kind: GateKind, mut operands: I) -> u64 {
    match kind {
        GateKind::Const0 => 0,
        GateKind::Const1 => u64::MAX,
        _ => {
            let first = operands
                .next()
                .expect("non-constant gates have at least one operand");
            match kind {
                GateKind::Buf | GateKind::Input | GateKind::Dff => first,
                GateKind::Not => !first,
                GateKind::And => operands.fold(first, |a, b| a & b),
                GateKind::Nand => !operands.fold(first, |a, b| a & b),
                GateKind::Or => operands.fold(first, |a, b| a | b),
                GateKind::Nor => !operands.fold(first, |a, b| a | b),
                GateKind::Xor => operands.fold(first, |a, b| a ^ b),
                GateKind::Xnor => !operands.fold(first, |a, b| a ^ b),
                GateKind::Const0 | GateKind::Const1 => unreachable!("handled above"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_eval_word_on_all_kinds() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            assert_eq!(
                fold_word(kind, [a, b].into_iter()),
                kind.eval_word(&[a, b]),
                "{kind:?}"
            );
        }
        assert_eq!(fold_word(GateKind::Buf, [a].into_iter()), a);
        assert_eq!(fold_word(GateKind::Not, [a].into_iter()), !a);
        assert_eq!(fold_word(GateKind::Const0, std::iter::empty()), 0);
        assert_eq!(fold_word(GateKind::Const1, std::iter::empty()), u64::MAX);
    }

    #[test]
    fn stuck_masking() {
        assert_eq!(apply_stuck_mask(0b0000, 0b0110, true), 0b0110);
        assert_eq!(apply_stuck_mask(0b1111, 0b0110, false), 0b1001);
        assert_eq!(stuck_word(true), u64::MAX);
        assert_eq!(stuck_word(false), 0);
    }
}
