//! Shared word-evaluation primitives: 64-lane words and wide blocks.
//!
//! Every packed simulator in the workspace — [`ParallelSim`](crate::ParallelSim),
//! the compiled [`Kernel`](crate::Kernel), and the fault simulators in
//! `dft-fault` — evaluates gates over `u64` words where each bit lane is an
//! independent pattern (or machine). This module is the single home for
//! that per-gate fold and for the stuck-value masking the fault engines
//! layer on top, so the word semantics cannot drift between engines.
//!
//! The fold is lane-width-parametric: a *wide word* `[u64; W]` carries
//! `64 × W` pattern lanes (`W = 4` → 256 lanes, `W = 8` → 512 lanes) and
//! [`fold_wide`] folds a gate over all of them in one call. The unrolled
//! fixed-`W` array loops compile to straight-line vector code (SSE2/AVX2/
//! AVX-512 as the target allows), so one op dispatch — kind match, CSR
//! operand walk, destination write — is amortized over `W` words instead
//! of one. [`LaneWidth`] is the run-time knob engines expose for picking
//! `W`; the 64-lane [`fold_word`] is the `W = 1` instantiation, so the
//! two can never disagree.

use dft_netlist::GateKind;

/// Lane width of a packed simulation run: how many 64-pattern `u64`
/// words ride in one wide block.
///
/// This is the run-time dispatch knob for the wide kernels (engines
/// monomorphize per width and `match` on the resolved word count), wired
/// into `PpsfpOptions`/`SerialOptions` in `dft-fault`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LaneWidth {
    /// Pick per run from the workload's 64-pattern block count: 256
    /// lanes when at least 4 blocks are queued, plain 64-lane words
    /// below that (narrow workloads would waste folds on empty tail
    /// words). 512 lanes is opt-in: on the event-propagation path the
    /// fold *count* barely drops with width (disturbances are dense
    /// across blocks) while the word work per fold scales with `W`, and
    /// measurement puts the dense-sweep savings break-even near `W = 4`.
    #[default]
    Auto,
    /// Classic 64 patterns per word (`W = 1`).
    W64,
    /// 256 patterns per wide block (`W = 4`, `u64x4`).
    W256,
    /// 512 patterns per wide block (`W = 8`, `u64x8`).
    W512,
}

impl LaneWidth {
    /// The fixed word count `W`, or `None` for [`LaneWidth::Auto`].
    #[must_use]
    pub fn words(self) -> Option<usize> {
        match self {
            LaneWidth::Auto => None,
            LaneWidth::W64 => Some(1),
            LaneWidth::W256 => Some(4),
            LaneWidth::W512 => Some(8),
        }
    }

    /// Pattern lanes per wide block (`64 × W`), or `None` for `Auto`.
    #[must_use]
    pub fn lanes(self) -> Option<usize> {
        self.words().map(|w| w * 64)
    }

    /// Resolves the word count for a workload of `block_count`
    /// 64-pattern blocks (the run-time dispatch point).
    #[must_use]
    pub fn resolve_words(self, block_count: usize) -> usize {
        match self.words() {
            Some(w) => w,
            None if block_count >= 4 => 4,
            None => 1,
        }
    }
}

/// The packed word a stuck-at value forces: all-ones for s-a-1, all-zeros
/// for s-a-0.
#[must_use]
pub fn stuck_word(stuck: bool) -> u64 {
    if stuck {
        u64::MAX
    } else {
        0
    }
}

/// [`stuck_word`] over a wide block: every lane of every word forced.
#[must_use]
pub fn stuck_wide<const W: usize>(stuck: bool) -> [u64; W] {
    [stuck_word(stuck); W]
}

/// Forces `stuck` onto the lanes selected by `mask`, leaving the other
/// lanes of `word` untouched — the per-lane injection primitive of
/// parallel-fault simulation (one faulty machine per lane).
#[must_use]
pub fn apply_stuck_mask(word: u64, mask: u64, stuck: bool) -> u64 {
    if stuck {
        word | mask
    } else {
        word & !mask
    }
}

/// Element-wise binary op over wide blocks; the fixed-`W` loop unrolls
/// and vectorizes.
#[inline]
fn zip_wide<const W: usize>(mut a: [u64; W], b: [u64; W], f: impl Fn(u64, u64) -> u64) -> [u64; W] {
    for i in 0..W {
        a[i] = f(a[i], b[i]);
    }
    a
}

/// Element-wise complement of a wide block.
#[inline]
fn not_wide<const W: usize>(mut a: [u64; W]) -> [u64; W] {
    for x in &mut a {
        *x = !*x;
    }
    a
}

/// Folds a gate over packed wide-block operands without allocating: the
/// lane-width-parametric generalization of [`fold_word`] (which is its
/// `W = 1` instantiation).
///
/// Constants need no operands; every other kind consumes the iterator
/// left-to-right. `Input`/`Dff` are pass-throughs of their single
/// operand.
///
/// # Panics
///
/// Panics if `operands` is empty for a kind that requires fan-in.
#[inline]
#[must_use]
pub fn fold_wide<const W: usize, I: Iterator<Item = [u64; W]>>(
    kind: GateKind,
    mut operands: I,
) -> [u64; W] {
    match kind {
        GateKind::Const0 => [0; W],
        GateKind::Const1 => [u64::MAX; W],
        _ => {
            let first = operands
                .next()
                .expect("non-constant gates have at least one operand");
            match kind {
                GateKind::Buf | GateKind::Input | GateKind::Dff => first,
                GateKind::Not => not_wide(first),
                GateKind::And => operands.fold(first, |a, b| zip_wide(a, b, |x, y| x & y)),
                GateKind::Nand => {
                    not_wide(operands.fold(first, |a, b| zip_wide(a, b, |x, y| x & y)))
                }
                GateKind::Or => operands.fold(first, |a, b| zip_wide(a, b, |x, y| x | y)),
                GateKind::Nor => {
                    not_wide(operands.fold(first, |a, b| zip_wide(a, b, |x, y| x | y)))
                }
                GateKind::Xor => operands.fold(first, |a, b| zip_wide(a, b, |x, y| x ^ y)),
                GateKind::Xnor => {
                    not_wide(operands.fold(first, |a, b| zip_wide(a, b, |x, y| x ^ y)))
                }
                GateKind::Const0 | GateKind::Const1 => unreachable!("handled above"),
            }
        }
    }
}

/// Folds a gate over packed 64-lane operand words without allocating.
///
/// The single-word (`W = 1`) instantiation of [`fold_wide`], kept as the
/// named entry point of the classic engines — routing it through the
/// wide fold guarantees the two lane layouts cannot drift.
///
/// # Panics
///
/// Panics if `operands` is empty for a kind that requires fan-in.
#[inline]
#[must_use]
pub fn fold_word<I: Iterator<Item = u64>>(kind: GateKind, operands: I) -> u64 {
    fold_wide::<1, _>(kind, operands.map(|w| [w]))[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_eval_word_on_all_kinds() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            assert_eq!(
                fold_word(kind, [a, b].into_iter()),
                kind.eval_word(&[a, b]),
                "{kind:?}"
            );
        }
        assert_eq!(fold_word(GateKind::Buf, [a].into_iter()), a);
        assert_eq!(fold_word(GateKind::Not, [a].into_iter()), !a);
        assert_eq!(fold_word(GateKind::Const0, std::iter::empty()), 0);
        assert_eq!(fold_word(GateKind::Const1, std::iter::empty()), u64::MAX);
    }

    #[test]
    fn stuck_masking() {
        assert_eq!(apply_stuck_mask(0b0000, 0b0110, true), 0b0110);
        assert_eq!(apply_stuck_mask(0b1111, 0b0110, false), 0b1001);
        assert_eq!(stuck_word(true), u64::MAX);
        assert_eq!(stuck_word(false), 0);
        assert_eq!(stuck_wide::<4>(true), [u64::MAX; 4]);
        assert_eq!(stuck_wide::<8>(false), [0u64; 8]);
    }

    #[test]
    fn wide_fold_agrees_with_per_word_fold() {
        // Every word of a wide fold must equal an independent 64-lane
        // fold of the corresponding operand words.
        let ops: [[u64; 4]; 3] = [
            [0xDEAD_BEEF, 0x0123_4567, u64::MAX, 0],
            [0xFFFF_0000_FFFF_0000, 0x5555_5555_5555_5555, 7, 42],
            [0x0F0F_0F0F_0F0F_0F0F, 0xAAAA_AAAA_AAAA_AAAA, 1, u64::MAX],
        ];
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ] {
            let narrow_ops = if matches!(kind, GateKind::Not | GateKind::Buf) {
                1
            } else {
                3
            };
            let wide = fold_wide::<4, _>(kind, ops.iter().copied().take(narrow_ops));
            for w in 0..4 {
                let narrow = fold_word(kind, ops.iter().take(narrow_ops).map(|o| o[w]));
                assert_eq!(wide[w], narrow, "{kind:?} word {w}");
            }
        }
    }

    #[test]
    fn lane_width_resolution() {
        assert_eq!(LaneWidth::W64.resolve_words(100), 1);
        assert_eq!(LaneWidth::W256.resolve_words(1), 4);
        assert_eq!(LaneWidth::W512.resolve_words(1), 8);
        assert_eq!(LaneWidth::Auto.resolve_words(16), 4);
        assert_eq!(LaneWidth::Auto.resolve_words(8), 4);
        assert_eq!(LaneWidth::Auto.resolve_words(4), 4);
        assert_eq!(LaneWidth::Auto.resolve_words(3), 1);
        assert_eq!(LaneWidth::Auto.resolve_words(0), 1);
        assert_eq!(LaneWidth::W512.lanes(), Some(512));
        assert_eq!(LaneWidth::Auto.words(), None);
    }
}
