//! Exhaustive (all-2ⁿ-pattern) evaluation.
//!
//! The self-test techniques of §V all apply *every* input pattern:
//! syndrome testing counts output 1s, Walsh testing accumulates signed
//! sums, autonomous testing compares every response. This module
//! enumerates the full input space in 64-pattern blocks using the
//! classic counter-stripe trick, so a 20-input circuit costs 2²⁰/64 ≈
//! 16 K block evaluations rather than a million scalar ones.

use dft_netlist::{GateId, Netlist};

use crate::ParallelSim;

/// Practical ceiling on exhaustive input width (2³⁰ block-evaluations
/// would already take minutes on large circuits; the paper's point is
/// precisely that exhaustive testing explodes — see experiment E4).
pub const MAX_EXHAUSTIVE_INPUTS: usize = 30;

/// The first six inputs' packed lane stripes: input *i* of a 64-lane
/// block alternates with period 2^(i+1).
const STRIPES: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Packs the input words for exhaustive block `block` over `n` inputs:
/// lane *j* of the block is global pattern `block·64 + j`, and input *i*
/// of pattern *p* is bit *i* of *p*.
#[must_use]
pub fn input_words(n: usize, block: u64) -> Vec<u64> {
    (0..n)
        .map(|i| {
            if i < 6 {
                STRIPES[i]
            } else if block >> (i - 6) & 1 == 1 {
                u64::MAX
            } else {
                0
            }
        })
        .collect()
}

/// Number of 64-pattern blocks needed to cover `n` inputs.
///
/// # Panics
///
/// Panics if `n` exceeds [`MAX_EXHAUSTIVE_INPUTS`].
#[must_use]
pub fn block_count(n: usize) -> u64 {
    assert!(
        n <= MAX_EXHAUSTIVE_INPUTS,
        "exhaustive application of {n} inputs is infeasible (limit {MAX_EXHAUSTIVE_INPUTS}) — \
         which is the survey's point; partition the network instead"
    );
    if n < 6 {
        1
    } else {
        1u64 << (n - 6)
    }
}

/// Number of valid lanes in a block (64 unless `n < 6`).
#[must_use]
pub fn lanes(n: usize) -> u32 {
    if n >= 6 {
        64
    } else {
        1 << n
    }
}

/// Visits every exhaustive block of `netlist`, passing the block index
/// and the packed per-gate values to `visit`.
///
/// Storage elements are held at 0 (exhaustive testing is a combinational
/// technique; scan provides the state access).
///
/// # Errors
///
/// Returns [`dft_netlist::LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the input count exceeds [`MAX_EXHAUSTIVE_INPUTS`].
pub fn for_each_block<F>(netlist: &Netlist, mut visit: F) -> Result<(), dft_netlist::LevelizeError>
where
    F: FnMut(u64, &[u64]),
{
    let sim = ParallelSim::new(netlist)?;
    let n = netlist.primary_inputs().len();
    let state = vec![0u64; netlist.storage_elements().len()];
    for block in 0..block_count(n) {
        let words = input_words(n, block);
        let vals = sim.eval_block(&words, &state);
        visit(block, &vals);
    }
    Ok(())
}

/// Counts, for each requested gate, how many of the 2ⁿ input patterns
/// drive it to 1 — the minterm count `K` of the paper's syndrome
/// definition (Def. 1: S = K/2ⁿ).
///
/// # Errors
///
/// Returns [`dft_netlist::LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the input count exceeds [`MAX_EXHAUSTIVE_INPUTS`].
pub fn minterm_counts(
    netlist: &Netlist,
    gates: &[GateId],
) -> Result<Vec<u64>, dft_netlist::LevelizeError> {
    let n = netlist.primary_inputs().len();
    let lane_mask = if lanes(n) == 64 {
        u64::MAX
    } else {
        (1u64 << lanes(n)) - 1
    };
    let mut counts = vec![0u64; gates.len()];
    for_each_block(netlist, |_, vals| {
        for (slot, &g) in gates.iter().enumerate() {
            counts[slot] += u64::from((vals[g.index()] & lane_mask).count_ones());
        }
    })?;
    Ok(counts)
}

/// Collects the full truth table of one gate as packed 64-bit rows
/// (pattern *p* is bit `p % 64` of row `p / 64`).
///
/// # Errors
///
/// Returns [`dft_netlist::LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the input count exceeds [`MAX_EXHAUSTIVE_INPUTS`].
pub fn truth_table(
    netlist: &Netlist,
    gate: GateId,
) -> Result<Vec<u64>, dft_netlist::LevelizeError> {
    let mut rows = Vec::new();
    for_each_block(netlist, |_, vals| rows.push(vals[gate.index()]))?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::{full_adder, majority, parity_tree};

    #[test]
    fn input_words_enumerate_binary_counting() {
        // For n = 8, block 2: patterns 128..191; input 7 = bit 7 of p.
        let words = input_words(8, 2);
        for lane in 0..64u64 {
            let p = 2 * 64 + lane;
            for (i, w) in words.iter().enumerate() {
                assert_eq!(w >> lane & 1 == 1, p >> i & 1 == 1, "input {i} lane {lane}");
            }
        }
    }

    #[test]
    fn block_count_and_lanes() {
        assert_eq!(block_count(3), 1);
        assert_eq!(lanes(3), 8);
        assert_eq!(block_count(6), 1);
        assert_eq!(lanes(6), 64);
        assert_eq!(block_count(10), 16);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn refuses_huge_input_spaces() {
        let _ = block_count(40);
    }

    #[test]
    fn majority_minterm_count() {
        // maj3 is 1 on exactly 4 of 8 minterms.
        let n = majority();
        let out = n.find_output("maj").unwrap();
        let counts = minterm_counts(&n, &[out]).unwrap();
        assert_eq!(counts, vec![4]);
    }

    #[test]
    fn parity_minterm_count_is_half() {
        let n = parity_tree(7);
        let out = n.primary_outputs()[0].0;
        let counts = minterm_counts(&n, &[out]).unwrap();
        assert_eq!(counts, vec![64]); // half of 2^7
    }

    #[test]
    fn adder_sum_and_carry_counts() {
        let fa = full_adder();
        let sum = fa.find_output("sum").unwrap();
        let cout = fa.find_output("cout").unwrap();
        let counts = minterm_counts(&fa, &[sum, cout]).unwrap();
        assert_eq!(counts, vec![4, 4]);
    }

    #[test]
    fn truth_table_matches_minterms() {
        let n = majority();
        let out = n.find_output("maj").unwrap();
        let tt = truth_table(&n, out).unwrap();
        assert_eq!(tt.len(), 1);
        let mask = (1u64 << 8) - 1;
        assert_eq!((tt[0] & mask).count_ones(), 4);
    }
}
