//! The compiled simulation kernel: a flattened, cache-friendly program.
//!
//! [`Kernel`] lowers a levelized netlist into structure-of-arrays form:
//! one straight-line op stream in evaluation order, with every gate's
//! operand slots stored contiguously in a CSR-style index pool. No graph
//! traversal, no per-gate `Vec` rebuilding, no pointer chasing — the hot
//! loop touches four flat arrays. It is the shared execution core behind
//! [`CompiledSim`](crate::CompiledSim) (whole-netlist runs) and the PPSFP
//! fault simulator in `dft-fault` (cone-restricted incremental runs).
//!
//! Because ops are emitted in levelization order, an op's index is also a
//! topological timestamp: any subset of ops replayed in ascending index
//! order evaluates each gate after all of its in-subset drivers. The
//! cone-restricted fault engines rely on exactly this property.

use std::ops::Range;

use dft_netlist::{GateId, GateKind, LevelizeError, Netlist};

use crate::word;

/// A netlist compiled into a flat SoA op program over 64-lane words.
///
/// Value state lives outside the kernel in a caller-owned slot array of
/// `gate_count` words (indexed by [`GateId::index`]), so one kernel can
/// serve many concurrent evaluation contexts (one per thread) without
/// aliasing.
#[derive(Clone, Debug)]
pub struct Kernel {
    gate_count: usize,
    /// Per-op gate kind, in levelized evaluation order.
    kinds: Vec<GateKind>,
    /// Per-op destination slot.
    dst: Vec<u32>,
    /// CSR offsets into `args`: op `i` reads `args[arg_start[i]..arg_start[i+1]]`.
    arg_start: Vec<u32>,
    /// Flattened operand slot indices for every op.
    args: Vec<u32>,
    /// Gate index → op index (`u32::MAX` for sources, which have no op).
    op_of_gate: Vec<u32>,
    /// Primary-input slots, in `Netlist::primary_inputs` order.
    pi_slots: Vec<u32>,
    /// Storage-element slots, in `Netlist::storage_elements` order.
    storage_slots: Vec<u32>,
    /// Slots of `Const1` gates (sources whose word is all-ones).
    const1_slots: Vec<u32>,
}

impl Kernel {
    /// Compiles `netlist` into a flat op program over its levelization.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &Netlist) -> Result<Self, LevelizeError> {
        let lv = netlist.levelize()?;
        let n = netlist.gate_count();
        let mut kinds = Vec::new();
        let mut dst = Vec::new();
        let mut arg_start = vec![0u32];
        let mut args = Vec::new();
        let mut op_of_gate = vec![u32::MAX; n];
        for &id in lv.order() {
            let gate = netlist.gate(id);
            if gate.kind().is_source() {
                continue;
            }
            op_of_gate[id.index()] = kinds.len() as u32;
            kinds.push(gate.kind());
            dst.push(id.index() as u32);
            args.extend(gate.inputs().iter().map(|s| s.index() as u32));
            arg_start.push(args.len() as u32);
        }
        Ok(Kernel {
            gate_count: n,
            kinds,
            dst,
            arg_start,
            args,
            op_of_gate,
            pi_slots: netlist
                .primary_inputs()
                .iter()
                .map(|g| g.index() as u32)
                .collect(),
            storage_slots: netlist
                .storage_elements()
                .iter()
                .map(|g| g.index() as u32)
                .collect(),
            const1_slots: netlist
                .iter()
                .filter(|(_, g)| g.kind() == GateKind::Const1)
                .map(|(id, _)| id.index() as u32)
                .collect(),
        })
    }

    /// Number of value slots (= gate count of the compiled netlist).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    /// Number of compiled ops (non-source gates).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.kinds.len()
    }

    /// The op that computes `gate`, or `None` if it is a source (primary
    /// input or storage output — its slot is written by the caller).
    #[must_use]
    pub fn op_of_gate(&self, gate: GateId) -> Option<usize> {
        match self.op_of_gate[gate.index()] {
            u32::MAX => None,
            op => Some(op as usize),
        }
    }

    /// Kind of op `i`.
    #[must_use]
    pub fn op_kind(&self, i: usize) -> GateKind {
        self.kinds[i]
    }

    /// Destination slot of op `i`.
    #[must_use]
    pub fn op_dst(&self, i: usize) -> u32 {
        self.dst[i]
    }

    /// Operand slots of op `i`.
    #[must_use]
    pub fn op_args(&self, i: usize) -> &[u32] {
        &self.args[self.arg_start[i] as usize..self.arg_start[i + 1] as usize]
    }

    /// Primary-input slots, in `Netlist::primary_inputs` order.
    #[must_use]
    pub fn pi_slots(&self) -> &[u32] {
        &self.pi_slots
    }

    /// Storage-element slots, in `Netlist::storage_elements` order.
    #[must_use]
    pub fn storage_slots(&self) -> &[u32] {
        &self.storage_slots
    }

    /// Evaluates op `i` with operands supplied by `read` (slot → word).
    ///
    /// This is the cone-restricted entry point: a fault simulator reads
    /// changed slots from its own overlay and unchanged slots from a
    /// cached baseline.
    #[inline]
    #[must_use]
    pub fn eval_op_with(&self, i: usize, mut read: impl FnMut(u32) -> u64) -> u64 {
        word::fold_word(self.kinds[i], self.op_args(i).iter().map(|&a| read(a)))
    }

    /// Writes the constant-source words into `vals` (`Const1` slots become
    /// all-ones; `Const0` slots are left for the caller's zero-fill).
    /// Constants are sources in this netlist model, so they are not ops —
    /// call this (or zero-init plus it) before [`Kernel::eval_into`].
    pub fn init_constants(&self, vals: &mut [u64]) {
        for &slot in &self.const1_slots {
            vals[slot as usize] = u64::MAX;
        }
    }

    /// Runs the whole program over `vals` in place. Source slots (primary
    /// inputs, storage, constants — see [`Kernel::init_constants`]) must
    /// already hold their words; every other slot is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != gate_count`.
    pub fn eval_into(&self, vals: &mut [u64]) {
        assert_eq!(vals.len(), self.gate_count, "value array width mismatch");
        for i in 0..self.kinds.len() {
            let word = self.eval_op_with(i, |a| vals[a as usize]);
            vals[self.dst[i] as usize] = word;
        }
    }

    /// Evaluates one packed 64-lane block with storage held at 0,
    /// returning a freshly allocated value array.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len()` disagrees with the primary input count.
    #[must_use]
    pub fn eval_block(&self, pi_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            pi_words.len(),
            self.pi_slots.len(),
            "pattern width must match primary input count"
        );
        let mut vals = vec![0u64; self.gate_count];
        self.init_constants(&mut vals);
        for (&slot, &w) in self.pi_slots.iter().zip(pi_words) {
            vals[slot as usize] = w;
        }
        self.eval_into(&mut vals);
        vals
    }

    /// Evaluates op `i` over wide blocks with operands supplied by `read`
    /// (slot → `[u64; W]`): the lane-width-parametric twin of
    /// [`Kernel::eval_op_with`], used by the wide fault engines' overlay
    /// reads.
    #[inline]
    #[must_use]
    pub fn eval_op_wide_with<const W: usize>(
        &self,
        i: usize,
        mut read: impl FnMut(u32) -> [u64; W],
    ) -> [u64; W] {
        word::fold_wide(self.kinds[i], self.op_args(i).iter().map(|&a| read(a)))
    }

    /// Writes the constant-source wide blocks into `vals` (the wide twin
    /// of [`Kernel::init_constants`]).
    pub fn init_constants_wide<const W: usize>(&self, vals: &mut [[u64; W]]) {
        for &slot in &self.const1_slots {
            vals[slot as usize] = [u64::MAX; W];
        }
    }

    /// Runs ops `range` over wide-block `vals` in place, assuming every
    /// slot an in-range op reads is already valid — either a source slot
    /// or the destination of an earlier op. Calling this with consecutive
    /// ranges covering `0..op_count` is equivalent to one
    /// [`Kernel::eval_into_wide`] sweep; the cache-blocked drivers use
    /// exactly that decomposition (see [`Kernel::level_bands`]).
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != gate_count` or `range` is out of bounds.
    pub fn eval_range_wide<const W: usize>(&self, range: Range<usize>, vals: &mut [[u64; W]]) {
        assert_eq!(vals.len(), self.gate_count, "value array width mismatch");
        assert!(range.end <= self.kinds.len(), "op range out of bounds");
        for i in range {
            let block = self.eval_op_wide_with(i, |a| vals[a as usize]);
            vals[self.dst[i] as usize] = block;
        }
    }

    /// Runs the whole program over wide-block `vals` in place: the
    /// `[u64; W]` twin of [`Kernel::eval_into`]. Source slots must
    /// already hold their blocks; every other slot is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != gate_count`.
    pub fn eval_into_wide<const W: usize>(&self, vals: &mut [[u64; W]]) {
        self.eval_range_wide(0..self.kinds.len(), vals);
    }

    /// Evaluates one packed wide block (`64 × W` patterns) with storage
    /// held at 0, returning a freshly allocated value array. The `W = 1`
    /// instantiation matches [`Kernel::eval_block`] word-for-word.
    ///
    /// # Panics
    ///
    /// Panics if `pi_blocks.len()` disagrees with the primary input count.
    #[must_use]
    pub fn eval_block_wide<const W: usize>(&self, pi_blocks: &[[u64; W]]) -> Vec<[u64; W]> {
        assert_eq!(
            pi_blocks.len(),
            self.pi_slots.len(),
            "pattern width must match primary input count"
        );
        let mut vals = vec![[0u64; W]; self.gate_count];
        self.init_constants_wide(&mut vals);
        for (&slot, &b) in self.pi_slots.iter().zip(pi_blocks) {
            vals[slot as usize] = b;
        }
        self.eval_into_wide(&mut vals);
        vals
    }

    /// Default per-band working-set budget in bytes, sized to leave a
    /// comfortable share of a typical 32 KiB L1d for the band's op
    /// metadata and the pattern blocks being swept.
    pub const BAND_BYTES: usize = 16 * 1024;

    /// [`Kernel::level_bands`] with the slot budget derived from
    /// [`Kernel::BAND_BYTES`] for wide blocks of `words` × `u64` (never
    /// fewer than 32 slots per band, so tiny budgets cannot degenerate
    /// into per-op bands).
    #[must_use]
    pub fn level_bands_for_width(&self, words: usize) -> Vec<Range<usize>> {
        self.level_bands((Self::BAND_BYTES / (8 * words.max(1))).max(32))
    }

    /// Partitions the op stream into contiguous *bands* whose slot
    /// working sets stay within `max_slots` distinct slots (destinations
    /// plus operands), for cache-blocked sweeps: evaluating one band
    /// across many pattern blocks back-to-back keeps both the band's op
    /// metadata and its value slots hot instead of streaming the whole
    /// netlist's state through cache once per block.
    ///
    /// Bands preserve op order, so replaying every band in sequence is a
    /// full levelized sweep; a band always contains at least one op even
    /// if that op alone exceeds the budget.
    #[must_use]
    pub fn level_bands(&self, max_slots: usize) -> Vec<Range<usize>> {
        let mut bands = Vec::new();
        let mut start = 0usize;
        // Epoch-stamped membership test: slot_seen[s] == epoch means slot
        // s is already counted in the current band.
        let mut slot_seen = vec![0u32; self.gate_count];
        let mut epoch = 0u32;
        let mut band_slots = 0usize;
        for i in 0..self.kinds.len() {
            let mut op_new = 0usize;
            let dst = self.dst[i] as usize;
            if slot_seen[dst] != epoch + 1 {
                op_new += 1;
            }
            for &a in self.op_args(i) {
                if slot_seen[a as usize] != epoch + 1 {
                    op_new += 1;
                }
            }
            if band_slots + op_new > max_slots && i > start {
                bands.push(start..i);
                start = i;
                epoch += 1;
                band_slots = 0;
            }
            // (Re)count this op's slots against the current band.
            if slot_seen[dst] != epoch + 1 {
                slot_seen[dst] = epoch + 1;
                band_slots += 1;
            }
            for &a in self.op_args(i) {
                if slot_seen[a as usize] != epoch + 1 {
                    slot_seen[a as usize] = epoch + 1;
                    band_slots += 1;
                }
            }
        }
        if start < self.kinds.len() {
            bands.push(start..self.kinds.len());
        }
        bands
    }

    /// Evaluates many wide pattern blocks band-major: for each level band
    /// (see [`Kernel::level_bands`]), sweep that band across *all* blocks
    /// before moving on. Each entry of `blocks` is a full value array
    /// (`gate_count` wide slots) with sources already loaded; on return it
    /// holds the fully evaluated values, identical to calling
    /// [`Kernel::eval_into_wide`] per block.
    ///
    /// `bands` must come from [`Kernel::level_bands`] on this kernel (or
    /// otherwise tile `0..op_count` in order).
    ///
    /// # Panics
    ///
    /// Panics if any block's length differs from `gate_count`.
    pub fn eval_blocks_banded<const W: usize>(
        &self,
        bands: &[Range<usize>],
        blocks: &mut [Vec<[u64; W]>],
    ) {
        for band in bands {
            for vals in blocks.iter_mut() {
                self.eval_range_wide(band.clone(), vals);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::{c17, random_combinational};
    use dft_netlist::GateKind;

    #[test]
    fn ops_are_in_ascending_topological_order() {
        let n = random_combinational(10, 150, 11);
        let k = Kernel::new(&n).unwrap();
        for i in 0..k.op_count() {
            for &a in k.op_args(i) {
                let src = GateId::from_index(a as usize);
                if let Some(src_op) = k.op_of_gate(src) {
                    assert!(src_op < i, "op {i} reads slot written by later op");
                }
            }
        }
    }

    #[test]
    fn matches_direct_levelized_eval() {
        let n = c17();
        let k = Kernel::new(&n).unwrap();
        for v in 0..32u64 {
            let pi: Vec<u64> = (0..5)
                .map(|i| if v >> i & 1 == 1 { u64::MAX } else { 0 })
                .collect();
            let vals = k.eval_block(&pi);
            let lv = n.levelize().unwrap();
            let mut direct = vec![0u64; n.gate_count()];
            for (i, &g) in n.primary_inputs().iter().enumerate() {
                direct[g.index()] = pi[i];
            }
            for &id in lv.order() {
                let gate = n.gate(id);
                if gate.kind().is_source() {
                    continue;
                }
                let words: Vec<u64> = gate.inputs().iter().map(|&s| direct[s.index()]).collect();
                direct[id.index()] = gate.kind().eval_word(&words);
            }
            assert_eq!(vals, direct, "input {v:05b}");
        }
    }

    #[test]
    fn sources_have_no_op() {
        let n = c17();
        let k = Kernel::new(&n).unwrap();
        for &pi in n.primary_inputs() {
            assert_eq!(k.op_of_gate(pi), None);
        }
        assert_eq!(k.op_count(), 6);
    }

    #[test]
    fn wide_block_matches_per_word_blocks() {
        let n = random_combinational(12, 200, 3);
        let k = Kernel::new(&n).unwrap();
        // Four distinct 64-lane input blocks, evaluated once as a single
        // 256-lane wide block and once word-by-word.
        let pi_blocks: Vec<[u64; 4]> = (0..12u32)
            .map(|i| {
                [
                    0x0123_4567_89AB_CDEFu64.rotate_left(i),
                    0xFEDC_BA98_7654_3210u64.rotate_right(i),
                    u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    !u64::from(i),
                ]
            })
            .collect();
        let wide = k.eval_block_wide::<4>(&pi_blocks);
        for w in 0..4 {
            let pi: Vec<u64> = pi_blocks.iter().map(|b| b[w]).collect();
            let narrow = k.eval_block(&pi);
            for (slot, &v) in narrow.iter().enumerate() {
                assert_eq!(wide[slot][w], v, "slot {slot} word {w}");
            }
        }
    }

    #[test]
    fn banded_eval_matches_full_sweep() {
        let n = random_combinational(12, 300, 9);
        let k = Kernel::new(&n).unwrap();
        let pi_blocks: Vec<[u64; 4]> = (0..12u32)
            .map(|i| [u64::from(i) * 3, !(u64::from(i) << 7), 0xAAAA, u64::MAX])
            .collect();
        let reference = k.eval_block_wide::<4>(&pi_blocks);
        // Absurdly small budget forces many bands; results must not change.
        for budget in [1, 7, 64, 100_000] {
            let bands = k.level_bands(budget);
            assert_eq!(bands.last().unwrap().end, k.op_count());
            assert_eq!(bands[0].start, 0);
            for pair in bands.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "bands must tile the op stream");
            }
            let mut vals = vec![[0u64; 4]; k.gate_count()];
            k.init_constants_wide(&mut vals);
            for (&slot, &b) in k.pi_slots().iter().zip(&pi_blocks) {
                vals[slot as usize] = b;
            }
            let mut blocks = vec![vals];
            k.eval_blocks_banded(&bands, &mut blocks);
            assert_eq!(blocks[0], reference, "budget {budget}");
        }
    }

    #[test]
    fn constants_are_compiled_as_ops() {
        let mut n = dft_netlist::Netlist::new("t");
        let one = n.add_const(true);
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::And, &[one, a]).unwrap();
        n.mark_output(y, "y").unwrap();
        let k = Kernel::new(&n).unwrap();
        let vals = k.eval_block(&[u64::MAX]);
        assert_eq!(vals[one.index()], u64::MAX);
        assert_eq!(vals[y.index()], u64::MAX);
    }
}
