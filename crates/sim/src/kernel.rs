//! The compiled simulation kernel: a flattened, cache-friendly program.
//!
//! [`Kernel`] lowers a levelized netlist into structure-of-arrays form:
//! one straight-line op stream in evaluation order, with every gate's
//! operand slots stored contiguously in a CSR-style index pool. No graph
//! traversal, no per-gate `Vec` rebuilding, no pointer chasing — the hot
//! loop touches four flat arrays. It is the shared execution core behind
//! [`CompiledSim`](crate::CompiledSim) (whole-netlist runs) and the PPSFP
//! fault simulator in `dft-fault` (cone-restricted incremental runs).
//!
//! Because ops are emitted in levelization order, an op's index is also a
//! topological timestamp: any subset of ops replayed in ascending index
//! order evaluates each gate after all of its in-subset drivers. The
//! cone-restricted fault engines rely on exactly this property.

use dft_netlist::{GateId, GateKind, LevelizeError, Netlist};

use crate::word;

/// A netlist compiled into a flat SoA op program over 64-lane words.
///
/// Value state lives outside the kernel in a caller-owned slot array of
/// `gate_count` words (indexed by [`GateId::index`]), so one kernel can
/// serve many concurrent evaluation contexts (one per thread) without
/// aliasing.
#[derive(Clone, Debug)]
pub struct Kernel {
    gate_count: usize,
    /// Per-op gate kind, in levelized evaluation order.
    kinds: Vec<GateKind>,
    /// Per-op destination slot.
    dst: Vec<u32>,
    /// CSR offsets into `args`: op `i` reads `args[arg_start[i]..arg_start[i+1]]`.
    arg_start: Vec<u32>,
    /// Flattened operand slot indices for every op.
    args: Vec<u32>,
    /// Gate index → op index (`u32::MAX` for sources, which have no op).
    op_of_gate: Vec<u32>,
    /// Primary-input slots, in `Netlist::primary_inputs` order.
    pi_slots: Vec<u32>,
    /// Storage-element slots, in `Netlist::storage_elements` order.
    storage_slots: Vec<u32>,
    /// Slots of `Const1` gates (sources whose word is all-ones).
    const1_slots: Vec<u32>,
}

impl Kernel {
    /// Compiles `netlist` into a flat op program over its levelization.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &Netlist) -> Result<Self, LevelizeError> {
        let lv = netlist.levelize()?;
        let n = netlist.gate_count();
        let mut kinds = Vec::new();
        let mut dst = Vec::new();
        let mut arg_start = vec![0u32];
        let mut args = Vec::new();
        let mut op_of_gate = vec![u32::MAX; n];
        for &id in lv.order() {
            let gate = netlist.gate(id);
            if gate.kind().is_source() {
                continue;
            }
            op_of_gate[id.index()] = kinds.len() as u32;
            kinds.push(gate.kind());
            dst.push(id.index() as u32);
            args.extend(gate.inputs().iter().map(|s| s.index() as u32));
            arg_start.push(args.len() as u32);
        }
        Ok(Kernel {
            gate_count: n,
            kinds,
            dst,
            arg_start,
            args,
            op_of_gate,
            pi_slots: netlist
                .primary_inputs()
                .iter()
                .map(|g| g.index() as u32)
                .collect(),
            storage_slots: netlist
                .storage_elements()
                .iter()
                .map(|g| g.index() as u32)
                .collect(),
            const1_slots: netlist
                .iter()
                .filter(|(_, g)| g.kind() == GateKind::Const1)
                .map(|(id, _)| id.index() as u32)
                .collect(),
        })
    }

    /// Number of value slots (= gate count of the compiled netlist).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    /// Number of compiled ops (non-source gates).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.kinds.len()
    }

    /// The op that computes `gate`, or `None` if it is a source (primary
    /// input or storage output — its slot is written by the caller).
    #[must_use]
    pub fn op_of_gate(&self, gate: GateId) -> Option<usize> {
        match self.op_of_gate[gate.index()] {
            u32::MAX => None,
            op => Some(op as usize),
        }
    }

    /// Kind of op `i`.
    #[must_use]
    pub fn op_kind(&self, i: usize) -> GateKind {
        self.kinds[i]
    }

    /// Destination slot of op `i`.
    #[must_use]
    pub fn op_dst(&self, i: usize) -> u32 {
        self.dst[i]
    }

    /// Operand slots of op `i`.
    #[must_use]
    pub fn op_args(&self, i: usize) -> &[u32] {
        &self.args[self.arg_start[i] as usize..self.arg_start[i + 1] as usize]
    }

    /// Primary-input slots, in `Netlist::primary_inputs` order.
    #[must_use]
    pub fn pi_slots(&self) -> &[u32] {
        &self.pi_slots
    }

    /// Storage-element slots, in `Netlist::storage_elements` order.
    #[must_use]
    pub fn storage_slots(&self) -> &[u32] {
        &self.storage_slots
    }

    /// Evaluates op `i` with operands supplied by `read` (slot → word).
    ///
    /// This is the cone-restricted entry point: a fault simulator reads
    /// changed slots from its own overlay and unchanged slots from a
    /// cached baseline.
    #[inline]
    #[must_use]
    pub fn eval_op_with(&self, i: usize, mut read: impl FnMut(u32) -> u64) -> u64 {
        word::fold_word(self.kinds[i], self.op_args(i).iter().map(|&a| read(a)))
    }

    /// Writes the constant-source words into `vals` (`Const1` slots become
    /// all-ones; `Const0` slots are left for the caller's zero-fill).
    /// Constants are sources in this netlist model, so they are not ops —
    /// call this (or zero-init plus it) before [`Kernel::eval_into`].
    pub fn init_constants(&self, vals: &mut [u64]) {
        for &slot in &self.const1_slots {
            vals[slot as usize] = u64::MAX;
        }
    }

    /// Runs the whole program over `vals` in place. Source slots (primary
    /// inputs, storage, constants — see [`Kernel::init_constants`]) must
    /// already hold their words; every other slot is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != gate_count`.
    pub fn eval_into(&self, vals: &mut [u64]) {
        assert_eq!(vals.len(), self.gate_count, "value array width mismatch");
        for i in 0..self.kinds.len() {
            let word = self.eval_op_with(i, |a| vals[a as usize]);
            vals[self.dst[i] as usize] = word;
        }
    }

    /// Evaluates one packed 64-lane block with storage held at 0,
    /// returning a freshly allocated value array.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len()` disagrees with the primary input count.
    #[must_use]
    pub fn eval_block(&self, pi_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            pi_words.len(),
            self.pi_slots.len(),
            "pattern width must match primary input count"
        );
        let mut vals = vec![0u64; self.gate_count];
        self.init_constants(&mut vals);
        for (&slot, &w) in self.pi_slots.iter().zip(pi_words) {
            vals[slot as usize] = w;
        }
        self.eval_into(&mut vals);
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::{c17, random_combinational};
    use dft_netlist::GateKind;

    #[test]
    fn ops_are_in_ascending_topological_order() {
        let n = random_combinational(10, 150, 11);
        let k = Kernel::new(&n).unwrap();
        for i in 0..k.op_count() {
            for &a in k.op_args(i) {
                let src = GateId::from_index(a as usize);
                if let Some(src_op) = k.op_of_gate(src) {
                    assert!(src_op < i, "op {i} reads slot written by later op");
                }
            }
        }
    }

    #[test]
    fn matches_direct_levelized_eval() {
        let n = c17();
        let k = Kernel::new(&n).unwrap();
        for v in 0..32u64 {
            let pi: Vec<u64> = (0..5)
                .map(|i| if v >> i & 1 == 1 { u64::MAX } else { 0 })
                .collect();
            let vals = k.eval_block(&pi);
            let lv = n.levelize().unwrap();
            let mut direct = vec![0u64; n.gate_count()];
            for (i, &g) in n.primary_inputs().iter().enumerate() {
                direct[g.index()] = pi[i];
            }
            for &id in lv.order() {
                let gate = n.gate(id);
                if gate.kind().is_source() {
                    continue;
                }
                let words: Vec<u64> = gate.inputs().iter().map(|&s| direct[s.index()]).collect();
                direct[id.index()] = gate.kind().eval_word(&words);
            }
            assert_eq!(vals, direct, "input {v:05b}");
        }
    }

    #[test]
    fn sources_have_no_op() {
        let n = c17();
        let k = Kernel::new(&n).unwrap();
        for &pi in n.primary_inputs() {
            assert_eq!(k.op_of_gate(pi), None);
        }
        assert_eq!(k.op_count(), 6);
    }

    #[test]
    fn constants_are_compiled_as_ops() {
        let mut n = dft_netlist::Netlist::new("t");
        let one = n.add_const(true);
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::And, &[one, a]).unwrap();
        n.mark_output(y, "y").unwrap();
        let k = Kernel::new(&n).unwrap();
        let vals = k.eval_block(&[u64::MAX]);
        assert_eq!(vals[one.index()], u64::MAX);
        assert_eq!(vals[y.index()], u64::MAX);
    }
}
