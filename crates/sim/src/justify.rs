//! Backward (justification) implication tables for three-valued
//! reasoning.
//!
//! Forward evaluation ([`Logic::eval_gate`]) answers "what does this
//! gate drive, given its inputs?". Deterministic ATPG and static
//! implication analysis also need the reverse question: *which input
//! values are forced by a known output value?* The answers here are the
//! classic D-algorithm backward-implication rules; they are shared by
//! the D-algorithm in `dft-atpg` and the static implication engine in
//! `dft-implic` so the two can never drift apart.
//!
//! Every returned `(pin, value)` pair is a *necessary* condition: any
//! complete input assignment producing `out` at the gate output agrees
//! with it. Choice points (e.g. "some AND input must be 0") are not
//! enumerated — that is the search engine's job, not implication's.

use dft_netlist::GateKind;

use crate::value::Logic;

/// Input pins forced by a known output value, given the currently-known
/// input values `ins` (one [`Logic`] per pin, `X` = unknown).
///
/// Rules:
/// * `Buf`/`Not` map the output straight through (inverted for `Not`).
/// * AND/NAND/OR/NOR at the *noncontrolled* response force every input
///   to the noncontrolling value.
/// * AND/NAND/OR/NOR at the *controlled* response force the last
///   unknown input to the controlling value once all other inputs are
///   known noncontrolling.
/// * XOR/XNOR force the last unknown input to whatever parity completes
///   the known output.
///
/// Source gates (`Input`, `Const*`, `Dff`) force nothing.
#[must_use]
pub fn forced_inputs(kind: GateKind, out: bool, ins: &[Logic]) -> Vec<(usize, Logic)> {
    let mut forced = Vec::new();
    match kind {
        GateKind::Buf => forced.push((0, Logic::from(out))),
        GateKind::Not => forced.push((0, Logic::from(!out))),
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let c = kind.controlling_value().expect("AND/OR family");
            let controlled_out = c != kind.inverts();
            if out != controlled_out {
                // Only the all-noncontrolling row produces this output.
                for pin in 0..ins.len() {
                    forced.push((pin, Logic::from(!c)));
                }
            } else {
                // Some input must be controlling; forced only when all
                // other inputs are known noncontrolling and exactly one
                // pin remains unknown.
                let has_c = ins.iter().any(|&v| v == Logic::from(c));
                if !has_c {
                    let unknown: Vec<usize> = ins
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| !v.is_known())
                        .map(|(p, _)| p)
                        .collect();
                    if unknown.len() == 1 {
                        forced.push((unknown[0], Logic::from(c)));
                    }
                }
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut parity = out != (kind == GateKind::Xnor);
            let mut unknown = Vec::new();
            for (p, v) in ins.iter().enumerate() {
                match v.to_bool() {
                    Some(b) => parity ^= b,
                    None => unknown.push(p),
                }
            }
            if unknown.len() == 1 {
                forced.push((unknown[0], Logic::from(parity)));
            }
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => {}
    }
    forced
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_family_noncontrolled_forces_all_pins() {
        // AND output 1 → every input 1.
        let f = forced_inputs(GateKind::And, true, &[Logic::X, Logic::X]);
        assert_eq!(f, vec![(0, Logic::One), (1, Logic::One)]);
        // NOR output 1 → every input 0.
        let f = forced_inputs(GateKind::Nor, true, &[Logic::X, Logic::X, Logic::X]);
        assert_eq!(
            f,
            vec![(0, Logic::Zero), (1, Logic::Zero), (2, Logic::Zero)]
        );
    }

    #[test]
    fn and_family_controlled_forces_last_unknown() {
        // AND output 0 with in0 already 1 → in1 must be 0.
        let f = forced_inputs(GateKind::And, false, &[Logic::One, Logic::X]);
        assert_eq!(f, vec![(1, Logic::Zero)]);
        // Two unknowns: nothing is forced.
        let f = forced_inputs(GateKind::And, false, &[Logic::X, Logic::X]);
        assert!(f.is_empty());
        // A known controlling input already justifies the output.
        let f = forced_inputs(GateKind::And, false, &[Logic::Zero, Logic::X]);
        assert!(f.is_empty());
    }

    #[test]
    fn xor_forces_completing_parity() {
        let f = forced_inputs(GateKind::Xor, true, &[Logic::One, Logic::X]);
        assert_eq!(f, vec![(1, Logic::Zero)]);
        let f = forced_inputs(GateKind::Xnor, true, &[Logic::One, Logic::X]);
        assert_eq!(f, vec![(1, Logic::One)]);
        let f = forced_inputs(GateKind::Xor, true, &[Logic::X, Logic::X]);
        assert!(f.is_empty());
    }

    #[test]
    fn single_input_gates_map_through() {
        assert_eq!(
            forced_inputs(GateKind::Not, true, &[Logic::X]),
            vec![(0, Logic::Zero)]
        );
        assert_eq!(
            forced_inputs(GateKind::Buf, false, &[Logic::X]),
            vec![(0, Logic::Zero)]
        );
    }

    #[test]
    fn sources_force_nothing() {
        assert!(forced_inputs(GateKind::Input, true, &[]).is_empty());
        assert!(forced_inputs(GateKind::Dff, false, &[Logic::X]).is_empty());
    }
}
