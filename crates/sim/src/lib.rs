//! # dft-sim
//!
//! Logic-simulation engines for the *tessera* DFT toolkit.
//!
//! The paper's techniques all rest on the ability to predict a network's
//! good-machine response. This crate provides several engines, each tuned
//! to a different consumer:
//!
//! * [`ParallelSim`] — 64 patterns per machine word, levelized evaluation.
//!   The workhorse behind parallel fault simulation (`dft-fault`) and
//!   random-pattern coverage measurement (`dft-bist`).
//! * [`CompiledSim`] / [`Kernel`] — the same 64-lane semantics lowered to
//!   a flat structure-of-arrays op program ("compiled code Boolean
//!   simulation", §IV-A). The kernel is the shared execution core of the
//!   PPSFP fault simulator in `dft-fault`.
//! * [`ThreeValueSim`] — 0/1/X simulation for initialization reasoning
//!   (the paper's "predictability" concern: a machine whose latches power
//!   up unknown).
//! * [`SequentialSim`] — cycle-accurate clocked simulation, used for scan
//!   shift schedules and board-level self-test sessions.
//! * [`EventSim`] — selective-trace event-driven simulation with activity
//!   accounting.
//! * [`exhaustive`] — all-2ⁿ-pattern enumeration (syndrome testing, Walsh
//!   coefficients and autonomous testing all demand exhaustive
//!   application; §V-B–V-D).
//!
//! ```
//! use dft_netlist::circuits::c17;
//! use dft_sim::{PatternSet, ParallelSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c17 = c17();
//! let sim = ParallelSim::new(&c17)?;
//! let patterns = PatternSet::all_inputs_low(5, 1); // one all-zero pattern
//! let resp = sim.run(&patterns);
//! // First-level NANDs all rise, so the second level falls.
//! assert!(!resp.output_bit(0, 0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod compiled;
mod event;
pub mod exhaustive;
pub mod justify;
mod kernel;
mod parallel;
mod pattern;
mod sequential;
mod threeval;
mod value;
pub mod word;

pub use compiled::CompiledSim;
pub use event::EventSim;
pub use kernel::Kernel;
pub use parallel::{ParallelSim, Response};
pub use pattern::PatternSet;
pub use sequential::SequentialSim;
pub use threeval::ThreeValueSim;
pub use value::Logic;
pub use word::LaneWidth;
