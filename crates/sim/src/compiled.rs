//! Compiled-code simulation.
//!
//! §IV-A of the paper lists "compiled code Boolean simulation" among the
//! techniques scan design makes viable again. A compiled simulator
//! flattens the levelized netlist into a straight-line program of
//! operations over a value array — no per-gate graph traversal, no
//! fan-in vector rebuilding — trading compile time for per-pattern
//! speed. The flattening itself lives in [`Kernel`]; this type pairs a
//! kernel with its netlist for whole-pattern-set runs. Same 64-lane
//! semantics as [`ParallelSim`](crate::ParallelSim), cross-checked by
//! test; the bench suite measures the speedup.

use dft_netlist::{LevelizeError, Netlist};
use dft_obs::{Collector, Obs};

use crate::{Kernel, PatternSet, Response};

/// A netlist compiled to a linear op program (64 patterns per word).
///
/// ```
/// use dft_netlist::circuits::c17;
/// use dft_sim::{CompiledSim, PatternSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c17 = c17();
/// let sim = CompiledSim::new(&c17)?;
/// let p = PatternSet::all_inputs_low(5, 1);
/// let r = sim.run(&p);
/// assert!(!r.output_bit(0, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompiledSim<'n> {
    netlist: &'n Netlist,
    kernel: Kernel,
}

impl<'n> CompiledSim<'n> {
    /// Compiles `netlist` into a straight-line program.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist) -> Result<Self, LevelizeError> {
        Ok(CompiledSim {
            netlist,
            kernel: Kernel::new(netlist)?,
        })
    }

    /// Number of compiled instructions.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.kernel.op_count()
    }

    /// The underlying flat op program.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Runs all patterns (storage held at 0), producing the same
    /// [`Response`] as [`ParallelSim::run`](crate::ParallelSim::run).
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run(&self, patterns: &PatternSet) -> Response {
        self.run_with(patterns, None)
    }

    /// [`CompiledSim::run`] feeding telemetry to an optional collector.
    ///
    /// Opens a `sim.compiled` span and flushes `patterns`, `blocks` and
    /// `ops_executed` (instruction count × 64-lane blocks — the
    /// straight-line program executes every op exactly once per block;
    /// on the wide path one wide dispatch covers several blocks but the
    /// counter stays in 64-lane-block units so runs are comparable
    /// across lane widths) after the run; nothing is counted inside the
    /// block loop.
    ///
    /// Workloads of at least eight 64-pattern blocks take the 512-lane
    /// cache-blocked path: blocks are grouped into `[u64; 8]` wide
    /// blocks and evaluated band-major (see [`Kernel::level_bands`]);
    /// the remainder falls back to the scalar per-block loop. The
    /// responses are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run_with(&self, patterns: &PatternSet, obs: Option<&mut dyn Collector>) -> Response {
        assert_eq!(
            patterns.input_count(),
            self.netlist.primary_inputs().len(),
            "pattern width must match primary input count"
        );
        let mut obs = Obs::new(obs);
        obs.enter("sim.compiled");
        let mut values = Vec::with_capacity(patterns.block_count());
        self.run_wide_groups::<8>(patterns, &mut values);
        for b in values.len()..patterns.block_count() {
            values.push(self.eval_block(patterns.block(b)));
        }
        obs.count("patterns", patterns.len() as u64);
        obs.count("blocks", patterns.block_count() as u64);
        obs.count(
            "ops_executed",
            self.kernel.op_count() as u64 * patterns.block_count() as u64,
        );
        obs.exit();
        Response::assemble(self.netlist, patterns.len(), values)
    }

    /// Evaluates one packed 64-lane block.
    #[must_use]
    pub fn eval_block(&self, pi_words: &[u64]) -> Vec<u64> {
        self.kernel.eval_block(pi_words)
    }

    /// Evaluates as many full groups of `W` consecutive 64-lane blocks
    /// as the pattern set holds, appending one value array per 64-lane
    /// block to `values` (deinterleaved from the wide results). Groups
    /// are swept band-major in batches so the band's slots stay hot
    /// across pattern blocks without holding the whole run resident.
    fn run_wide_groups<const W: usize>(&self, patterns: &PatternSet, values: &mut Vec<Vec<u64>>) {
        let full_groups = patterns.block_count() / W;
        if full_groups == 0 {
            return;
        }
        let bands = self.kernel.level_bands_for_width(W);
        // Batch size bounds resident memory at gate_count × W × 16 words.
        const GROUPS_PER_BATCH: usize = 16;
        for batch_start in (0..full_groups).step_by(GROUPS_PER_BATCH) {
            let batch_end = (batch_start + GROUPS_PER_BATCH).min(full_groups);
            let mut blocks: Vec<Vec<[u64; W]>> = (batch_start..batch_end)
                .map(|g| {
                    let mut vals = vec![[0u64; W]; self.kernel.gate_count()];
                    self.kernel.init_constants_wide(&mut vals);
                    for (i, &slot) in self.kernel.pi_slots().iter().enumerate() {
                        let mut wide = [0u64; W];
                        for (w, lane) in wide.iter_mut().enumerate() {
                            *lane = patterns.block(g * W + w)[i];
                        }
                        vals[slot as usize] = wide;
                    }
                    vals
                })
                .collect();
            self.kernel.eval_blocks_banded(&bands, &mut blocks);
            for wide in &blocks {
                for w in 0..W {
                    values.push(wide.iter().map(|b| b[w]).collect());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParallelSim;
    use dft_netlist::circuits::{c17, random_combinational, wallace_multiplier};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agree(n: &Netlist, patterns: &PatternSet) {
        let a = ParallelSim::new(n).unwrap().run(patterns);
        let b = CompiledSim::new(n).unwrap().run(patterns);
        for p in 0..patterns.len() {
            assert_eq!(
                a.output_row(p),
                b.output_row(p),
                "pattern {p} on {}",
                n.name()
            );
        }
    }

    #[test]
    fn matches_parallel_sim_on_c17() {
        let n = c17();
        let rows: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        agree(&n, &PatternSet::from_rows(5, &rows));
    }

    #[test]
    fn matches_parallel_sim_on_random_logic() {
        for seed in 0..4 {
            let n = random_combinational(12, 200, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 99);
            let p = PatternSet::random(12, 100, &mut rng);
            agree(&n, &p);
        }
    }

    #[test]
    fn matches_on_multiplier_with_constants() {
        // The multiplier's final pass emits Const0 sums — exercises the
        // constant-initialization path.
        let n = wallace_multiplier(4);
        let mut rng = StdRng::seed_from_u64(3);
        let p = PatternSet::random(8, 64, &mut rng);
        agree(&n, &p);
    }

    #[test]
    fn wide_path_matches_parallel_sim() {
        // 9 blocks: one full 512-lane group plus a scalar remainder, so
        // both paths and the seam between them are exercised.
        let n = random_combinational(14, 250, 21);
        let mut rng = StdRng::seed_from_u64(17);
        let p = PatternSet::random(14, 9 * 64, &mut rng);
        agree(&n, &p);
        // Non-multiple-of-64 tail on top of the wide path.
        let p = PatternSet::random(14, 8 * 64 + 13, &mut rng);
        agree(&n, &p);
    }

    #[test]
    fn op_count_matches_non_source_gates() {
        let n = c17();
        let sim = CompiledSim::new(&n).unwrap();
        assert_eq!(sim.op_count(), 6);
    }
}
