//! Compiled-code simulation.
//!
//! §IV-A of the paper lists "compiled code Boolean simulation" among the
//! techniques scan design makes viable again. A compiled simulator
//! flattens the levelized netlist into a straight-line program of
//! operations over a value array — no per-gate graph traversal, no
//! fan-in vector rebuilding — trading compile time for per-pattern
//! speed. The flattening itself lives in [`Kernel`]; this type pairs a
//! kernel with its netlist for whole-pattern-set runs. Same 64-lane
//! semantics as [`ParallelSim`](crate::ParallelSim), cross-checked by
//! test; the bench suite measures the speedup.

use dft_netlist::{LevelizeError, Netlist};
use dft_obs::{Collector, Obs};

use crate::{Kernel, PatternSet, Response};

/// A netlist compiled to a linear op program (64 patterns per word).
///
/// ```
/// use dft_netlist::circuits::c17;
/// use dft_sim::{CompiledSim, PatternSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c17 = c17();
/// let sim = CompiledSim::new(&c17)?;
/// let p = PatternSet::all_inputs_low(5, 1);
/// let r = sim.run(&p);
/// assert!(!r.output_bit(0, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompiledSim<'n> {
    netlist: &'n Netlist,
    kernel: Kernel,
}

impl<'n> CompiledSim<'n> {
    /// Compiles `netlist` into a straight-line program.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist) -> Result<Self, LevelizeError> {
        Ok(CompiledSim {
            netlist,
            kernel: Kernel::new(netlist)?,
        })
    }

    /// Number of compiled instructions.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.kernel.op_count()
    }

    /// The underlying flat op program.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Runs all patterns (storage held at 0), producing the same
    /// [`Response`] as [`ParallelSim::run`](crate::ParallelSim::run).
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run(&self, patterns: &PatternSet) -> Response {
        self.run_with(patterns, None)
    }

    /// [`CompiledSim::run`] feeding telemetry to an optional collector.
    ///
    /// Opens a `sim.compiled` span and flushes `patterns`, `blocks` and
    /// `ops_executed` (instruction count × blocks — the straight-line
    /// program executes every op exactly once per block) after the run;
    /// nothing is counted inside the block loop.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run_with(&self, patterns: &PatternSet, obs: Option<&mut dyn Collector>) -> Response {
        assert_eq!(
            patterns.input_count(),
            self.netlist.primary_inputs().len(),
            "pattern width must match primary input count"
        );
        let mut obs = Obs::new(obs);
        obs.enter("sim.compiled");
        let mut values = Vec::with_capacity(patterns.block_count());
        for b in 0..patterns.block_count() {
            values.push(self.eval_block(patterns.block(b)));
        }
        obs.count("patterns", patterns.len() as u64);
        obs.count("blocks", patterns.block_count() as u64);
        obs.count(
            "ops_executed",
            self.kernel.op_count() as u64 * patterns.block_count() as u64,
        );
        obs.exit();
        Response::assemble(self.netlist, patterns.len(), values)
    }

    /// Evaluates one packed 64-lane block.
    #[must_use]
    pub fn eval_block(&self, pi_words: &[u64]) -> Vec<u64> {
        self.kernel.eval_block(pi_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParallelSim;
    use dft_netlist::circuits::{c17, random_combinational, wallace_multiplier};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agree(n: &Netlist, patterns: &PatternSet) {
        let a = ParallelSim::new(n).unwrap().run(patterns);
        let b = CompiledSim::new(n).unwrap().run(patterns);
        for p in 0..patterns.len() {
            assert_eq!(
                a.output_row(p),
                b.output_row(p),
                "pattern {p} on {}",
                n.name()
            );
        }
    }

    #[test]
    fn matches_parallel_sim_on_c17() {
        let n = c17();
        let rows: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        agree(&n, &PatternSet::from_rows(5, &rows));
    }

    #[test]
    fn matches_parallel_sim_on_random_logic() {
        for seed in 0..4 {
            let n = random_combinational(12, 200, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 99);
            let p = PatternSet::random(12, 100, &mut rng);
            agree(&n, &p);
        }
    }

    #[test]
    fn matches_on_multiplier_with_constants() {
        // The multiplier's final pass emits Const0 sums — exercises the
        // constant-initialization path.
        let n = wallace_multiplier(4);
        let mut rng = StdRng::seed_from_u64(3);
        let p = PatternSet::random(8, 64, &mut rng);
        agree(&n, &p);
    }

    #[test]
    fn op_count_matches_non_source_gates() {
        let n = c17();
        let sim = CompiledSim::new(&n).unwrap();
        assert_eq!(sim.op_count(), 6);
    }
}
