//! Three-valued (0/1/X) full-netlist simulation.

use dft_netlist::{GateId, LevelizeError, Netlist};

use crate::Logic;

/// A levelized three-valued simulator.
///
/// Used wherever unknowns matter: power-on state reasoning (the paper's
/// *predictability* requirement, §III-B), X-propagation checks during
/// test generation, and verification that a CLEAR/PRESET test point
/// really puts the machine into a known state.
///
/// ```
/// use dft_netlist::{Netlist, GateKind};
/// use dft_sim::{Logic, ThreeValueSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let g = n.add_gate(GateKind::And, &[a, a])?;
/// n.mark_output(g, "y")?;
/// let sim = ThreeValueSim::new(&n)?;
/// let vals = sim.eval(&[Logic::X], &[]);
/// assert_eq!(vals[g.index()], Logic::X);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ThreeValueSim<'n> {
    netlist: &'n Netlist,
    order: Vec<GateId>,
    storage: Vec<GateId>,
}

impl<'n> ThreeValueSim<'n> {
    /// Compiles a three-valued simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist) -> Result<Self, LevelizeError> {
        let lv = netlist.levelize()?;
        Ok(ThreeValueSim {
            netlist,
            order: lv.order().to_vec(),
            storage: netlist.storage_elements(),
        })
    }

    /// The storage elements, in state-vector order.
    #[must_use]
    pub fn storage(&self) -> &[GateId] {
        &self.storage
    }

    /// Evaluates one frame: `pis` in primary-input order, `state` in
    /// [`ThreeValueSim::storage`] order (empty slice means all-X).
    /// Returns per-gate values indexed by [`GateId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `pis` or a non-empty `state` have the wrong length.
    #[must_use]
    pub fn eval(&self, pis: &[Logic], state: &[Logic]) -> Vec<Logic> {
        assert_eq!(pis.len(), self.netlist.primary_inputs().len());
        let mut vals = vec![Logic::X; self.netlist.gate_count()];
        for (i, &pi) in self.netlist.primary_inputs().iter().enumerate() {
            vals[pi.index()] = pis[i];
        }
        for (id, gate) in self.netlist.iter() {
            match gate.kind() {
                dft_netlist::GateKind::Const0 => vals[id.index()] = Logic::Zero,
                dft_netlist::GateKind::Const1 => vals[id.index()] = Logic::One,
                _ => {}
            }
        }
        if !state.is_empty() {
            assert_eq!(state.len(), self.storage.len());
            for (i, &s) in self.storage.iter().enumerate() {
                vals[s.index()] = state[i];
            }
        }
        self.eval_into(&mut vals);
        vals
    }

    /// Evaluates the combinational frame in place over pre-seeded source
    /// values. Storage slots keep their present-state value.
    pub fn eval_into(&self, vals: &mut [Logic]) {
        let mut buf: Vec<Logic> = Vec::with_capacity(8);
        for &id in &self.order {
            let gate = self.netlist.gate(id);
            if gate.kind().is_source() {
                continue;
            }
            buf.clear();
            buf.extend(gate.inputs().iter().map(|&s| vals[s.index()]));
            vals[id.index()] = Logic::eval_gate(gate.kind(), &buf);
        }
    }

    /// Computes the next state implied by the frame values returned from
    /// [`ThreeValueSim::eval`].
    #[must_use]
    pub fn next_state(&self, vals: &[Logic]) -> Vec<Logic> {
        self.storage
            .iter()
            .map(|&s| vals[self.netlist.gate(s).inputs()[0].index()])
            .collect()
    }

    /// Extracts the primary-output row from frame values.
    #[must_use]
    pub fn outputs(&self, vals: &[Logic]) -> Vec<Logic> {
        self.netlist
            .primary_outputs()
            .iter()
            .map(|&(g, _)| vals[g.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::{binary_counter, full_adder};
    use dft_netlist::GateKind;

    #[test]
    fn known_inputs_give_known_outputs() {
        let fa = full_adder();
        let sim = ThreeValueSim::new(&fa).unwrap();
        let vals = sim.eval(&[Logic::One, Logic::One, Logic::Zero], &[]);
        let outs = sim.outputs(&vals);
        assert_eq!(outs, vec![Logic::Zero, Logic::One]);
    }

    #[test]
    fn x_state_propagates_until_controlled() {
        // Counter with enable=0: next state = q XOR 0 = q, so X stays X.
        let n = binary_counter(2);
        let sim = ThreeValueSim::new(&n).unwrap();
        let vals = sim.eval(&[Logic::Zero], &[Logic::X, Logic::X]);
        assert_eq!(sim.next_state(&vals), vec![Logic::X, Logic::X]);
        // With enable=1, bit0 toggles X->X (XOR with X is X) — still X:
        // counters are unpredictable without a reset, which is the paper's
        // point about CLEAR/PRESET test points.
        let vals = sim.eval(&[Logic::One], &[Logic::X, Logic::X]);
        assert_eq!(sim.next_state(&vals)[0], Logic::X);
    }

    #[test]
    fn controlling_value_overrides_x_state() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let d = n.add_dff(a).unwrap();
        let y = n.add_gate(GateKind::And, &[a, d]).unwrap();
        n.mark_output(y, "y").unwrap();
        let sim = ThreeValueSim::new(&n).unwrap();
        let vals = sim.eval(&[Logic::Zero], &[Logic::X]);
        assert_eq!(sim.outputs(&vals), vec![Logic::Zero]);
    }

    #[test]
    fn constants_evaluate_even_though_they_are_sources() {
        let mut n = Netlist::new("t");
        let one = n.add_const(true);
        let zero = n.add_const(false);
        let y = n.add_gate(GateKind::And, &[one, one]).unwrap();
        let z = n.add_gate(GateKind::Or, &[zero, zero]).unwrap();
        n.mark_output(y, "y").unwrap();
        n.mark_output(z, "z").unwrap();
        let sim = ThreeValueSim::new(&n).unwrap();
        let vals = sim.eval(&[], &[]);
        assert_eq!(sim.outputs(&vals), vec![Logic::One, Logic::Zero]);
    }

    use dft_netlist::Netlist;
}
