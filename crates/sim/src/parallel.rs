//! 64-way bit-parallel levelized simulation.

use dft_netlist::{GateId, GateKind, Levelization, LevelizeError, Netlist};

use crate::PatternSet;

/// A compiled, levelized 64-pattern-parallel simulator for one netlist.
///
/// Construction levelizes once; each [`ParallelSim::run`] evaluates all
/// blocks of a [`PatternSet`], treating storage elements as frame sources
/// (value = provided present state, default all-0). The complete value
/// matrix is retained so fault simulators and testability tools can
/// observe internal nets, not just primary outputs.
///
/// ```
/// use dft_netlist::circuits::full_adder;
/// use dft_sim::{ParallelSim, PatternSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fa = full_adder();
/// let sim = ParallelSim::new(&fa)?;
/// // a=1 b=1 cin=0 -> sum=0 cout=1
/// let p = PatternSet::from_rows(3, &[vec![true, true, false]]);
/// let r = sim.run(&p);
/// assert!(!r.output_bit(0, 0)); // sum
/// assert!(r.output_bit(1, 0));  // cout
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParallelSim<'n> {
    netlist: &'n Netlist,
    lv: Levelization,
    storage: Vec<GateId>,
}

/// The response of a parallel simulation run: per-gate packed values for
/// every 64-pattern block.
#[derive(Clone, Debug)]
pub struct Response {
    pattern_count: usize,
    gate_count: usize,
    outputs: Vec<GateId>,
    storage: Vec<GateId>,
    /// `values[block][gate]`
    values: Vec<Vec<u64>>,
}

impl<'n> ParallelSim<'n> {
    /// Compiles a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] if the netlist has a combinational cycle.
    pub fn new(netlist: &'n Netlist) -> Result<Self, LevelizeError> {
        Ok(ParallelSim {
            netlist,
            lv: netlist.levelize()?,
            storage: netlist.storage_elements(),
        })
    }

    /// The netlist this simulator was compiled for.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The levelization used for evaluation.
    #[must_use]
    pub fn levelization(&self) -> &Levelization {
        &self.lv
    }

    /// Runs all patterns with every storage element's present state at 0.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set width disagrees with the netlist's
    /// primary input count.
    #[must_use]
    pub fn run(&self, patterns: &PatternSet) -> Response {
        let zeros = vec![vec![0u64; self.storage.len()]; patterns.block_count()];
        self.run_with_state(patterns, &zeros)
    }

    /// Runs all patterns with explicit present-state words per block
    /// (`state[block][storage_index]`, storage order as returned by
    /// [`Netlist::storage_elements`]).
    ///
    /// # Panics
    ///
    /// Panics on width mismatches between the pattern set, state matrix
    /// and netlist.
    #[must_use]
    pub fn run_with_state(&self, patterns: &PatternSet, state: &[Vec<u64>]) -> Response {
        assert_eq!(
            patterns.input_count(),
            self.netlist.primary_inputs().len(),
            "pattern width must match primary input count"
        );
        assert_eq!(
            state.len(),
            patterns.block_count(),
            "one state vector per pattern block required"
        );
        let mut values = Vec::with_capacity(patterns.block_count());
        #[allow(clippy::needless_range_loop)] // block indexes patterns and state in lockstep
        for block in 0..patterns.block_count() {
            assert_eq!(state[block].len(), self.storage.len());
            values.push(self.eval_block(patterns.block(block), &state[block]));
        }
        Response {
            pattern_count: patterns.len(),
            gate_count: self.netlist.gate_count(),
            outputs: self
                .netlist
                .primary_outputs()
                .iter()
                .map(|&(g, _)| g)
                .collect(),
            storage: self.storage.clone(),
            values,
        }
    }

    /// Evaluates one block of packed input words (and packed present
    /// state), returning packed values for every gate.
    #[must_use]
    pub fn eval_block(&self, pi_words: &[u64], state_words: &[u64]) -> Vec<u64> {
        let mut vals = vec![0u64; self.netlist.gate_count()];
        for (i, &pi) in self.netlist.primary_inputs().iter().enumerate() {
            vals[pi.index()] = pi_words[i];
        }
        for (i, &s) in self.storage.iter().enumerate() {
            vals[s.index()] = state_words[i];
        }
        self.eval_block_into(&mut vals);
        vals
    }

    /// Evaluates the combinational frame in place: `vals` must already
    /// contain source values (primary inputs and storage outputs) and is
    /// filled with every gate's packed value.
    ///
    /// Storage gates are **not** overwritten — their slot keeps the
    /// present-state value; the next state is available at their data
    /// driver's slot (see [`Response::next_state_word`]).
    pub fn eval_block_into(&self, vals: &mut [u64]) {
        for &id in self.lv.order() {
            let gate = self.netlist.gate(id);
            match gate.kind() {
                GateKind::Input | GateKind::Dff => {}
                kind => {
                    // Fold without allocating (shared with every packed
                    // engine via `word::fold_word`).
                    vals[id.index()] = crate::word::fold_word(
                        kind,
                        gate.inputs().iter().map(|&s| vals[s.index()]),
                    );
                }
            }
        }
    }
}

impl Response {
    /// Builds a response from per-block value matrices (used by the
    /// other simulators in this crate that share the layout).
    pub(crate) fn assemble(
        netlist: &Netlist,
        pattern_count: usize,
        values: Vec<Vec<u64>>,
    ) -> Response {
        Response {
            pattern_count,
            gate_count: netlist.gate_count(),
            outputs: netlist.primary_outputs().iter().map(|&(g, _)| g).collect(),
            storage: netlist.storage_elements(),
            values,
        }
    }

    /// Number of patterns simulated.
    #[must_use]
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Packed values of one gate in one block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn word(&self, gate: GateId, block: usize) -> u64 {
        self.values[block][gate.index()]
    }

    /// The value of `gate` under pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn gate_bit(&self, gate: GateId, pattern: usize) -> bool {
        assert!(pattern < self.pattern_count, "pattern out of range");
        self.values[pattern / 64][gate.index()] >> (pattern % 64) & 1 == 1
    }

    /// The value of primary output `output` (by position) under `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn output_bit(&self, output: usize, pattern: usize) -> bool {
        self.gate_bit(self.outputs[output], pattern)
    }

    /// Extracts the primary output row for one pattern.
    #[must_use]
    pub fn output_row(&self, pattern: usize) -> Vec<bool> {
        (0..self.outputs.len())
            .map(|o| self.output_bit(o, pattern))
            .collect()
    }

    /// Packed next-state word for storage element `i` in `block` — the
    /// value captured from the element's data input.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn next_state_word(&self, netlist: &Netlist, i: usize, block: usize) -> u64 {
        let dff = self.storage[i];
        let d = netlist.gate(dff).inputs()[0];
        self.values[block][d.index()]
    }

    /// Number of gates in the simulated netlist.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::{c17, full_adder, parity_tree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_adder_truth_table() {
        let fa = full_adder();
        let sim = ParallelSim::new(&fa).unwrap();
        let mut rows = Vec::new();
        for bits in 0..8u8 {
            rows.push(vec![bits & 1 == 1, bits & 2 == 2, bits & 4 == 4]);
        }
        let p = PatternSet::from_rows(3, &rows);
        let r = sim.run(&p);
        for bits in 0..8usize {
            let ones = (bits & 1) + (bits >> 1 & 1) + (bits >> 2 & 1);
            assert_eq!(r.output_bit(0, bits), ones % 2 == 1, "sum {bits}");
            assert_eq!(r.output_bit(1, bits), ones >= 2, "cout {bits}");
        }
    }

    #[test]
    fn parity_tree_matches_popcount() {
        let n = parity_tree(8);
        let sim = ParallelSim::new(&n).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let p = PatternSet::random(8, 200, &mut rng);
        let r = sim.run(&p);
        for i in 0..p.len() {
            let ones = p.get(i).iter().filter(|&&b| b).count();
            assert_eq!(r.output_bit(0, i), ones % 2 == 1);
        }
    }

    #[test]
    fn c17_all_32_patterns() {
        let n = c17();
        let sim = ParallelSim::new(&n).unwrap();
        let mut rows = Vec::new();
        for v in 0..32u8 {
            rows.push((0..5).map(|i| v >> i & 1 == 1).collect());
        }
        let p = PatternSet::from_rows(5, &rows);
        let r = sim.run(&p);
        // Reference: direct formula. c17 outputs:
        // g22 = NAND(NAND(x1,x3), NAND(x2, NAND(x3,x6)))
        // g23 = NAND(NAND(x2, NAND(x3,x6)), NAND(NAND(x3,x6), x7))
        for v in 0..32usize {
            let x = |i: usize| v >> i & 1 == 1;
            let n11 = !(x(2) && x(3));
            let n10 = !(x(0) && x(2));
            let n16 = !(x(1) && n11);
            let n19 = !(n11 && x(4));
            let g22 = !(n10 && n16);
            let g23 = !(n16 && n19);
            assert_eq!(r.output_bit(0, v), g22, "g22 at {v:05b}");
            assert_eq!(r.output_bit(1, v), g23, "g23 at {v:05b}");
        }
    }

    #[test]
    fn state_words_feed_dff_consumers() {
        use dft_netlist::{GateKind, Netlist};
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_dff(a).unwrap();
        let y = n.add_gate(GateKind::Xor, &[a, q]).unwrap();
        n.mark_output(y, "y").unwrap();
        let sim = ParallelSim::new(&n).unwrap();
        let p = PatternSet::from_rows(1, &[vec![true], vec![true]]);
        // pattern 0 with state 0, pattern 1 with state 1
        let state = vec![vec![0b10u64]];
        let r = sim.run_with_state(&p, &state);
        assert!(r.output_bit(0, 0)); // 1 ^ 0
        assert!(!r.output_bit(0, 1)); // 1 ^ 1
                                      // next state = a = 1 for both lanes
        assert_eq!(r.next_state_word(&n, 0, 0) & 0b11, 0b11);
    }

    #[test]
    fn multi_block_runs() {
        let n = parity_tree(4);
        let sim = ParallelSim::new(&n).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let p = PatternSet::random(4, 130, &mut rng); // 3 blocks
        let r = sim.run(&p);
        assert_eq!(r.pattern_count(), 130);
        for i in [0, 63, 64, 127, 128, 129] {
            let ones = p.get(i).iter().filter(|&&b| b).count();
            assert_eq!(r.output_bit(0, i), ones % 2 == 1, "pattern {i}");
        }
    }
}
