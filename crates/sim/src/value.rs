//! Three-valued logic.

use std::fmt;

use dft_netlist::GateKind;

/// A ternary logic value: 0, 1 or unknown (X).
///
/// X models uninitialized storage and unassigned inputs. The operations
/// are the standard pessimistic extensions: an AND with any 0 input is 0,
/// with no 0 but some X is X, and so on.
///
/// ```
/// use dft_sim::Logic;
///
/// assert_eq!(Logic::Zero & Logic::X, Logic::Zero);
/// assert_eq!(Logic::One & Logic::X, Logic::X);
/// assert_eq!(!Logic::X, Logic::X);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Logic {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Logic {
    /// Converts a known value to `bool`; `None` for X.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// Whether the value is known (not X).
    #[must_use]
    pub fn is_known(self) -> bool {
        self != Logic::X
    }

    /// Evaluates a gate kind over three-valued inputs.
    ///
    /// Sources (`Input`, `Dff`) pass their single "input" through — the
    /// simulators feed them the externally supplied value.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty for a kind that requires fan-in.
    #[must_use]
    pub fn eval_gate(kind: GateKind, inputs: &[Logic]) -> Logic {
        match kind {
            GateKind::Const0 => Logic::Zero,
            GateKind::Const1 => Logic::One,
            GateKind::Input | GateKind::Buf | GateKind::Dff => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => Logic::fold_and(inputs),
            GateKind::Nand => !Logic::fold_and(inputs),
            GateKind::Or => Logic::fold_or(inputs),
            GateKind::Nor => !Logic::fold_or(inputs),
            GateKind::Xor => Logic::fold_xor(inputs),
            GateKind::Xnor => !Logic::fold_xor(inputs),
        }
    }

    fn fold_and(inputs: &[Logic]) -> Logic {
        let mut acc = Logic::One;
        for &v in inputs {
            acc = acc & v;
        }
        acc
    }

    fn fold_or(inputs: &[Logic]) -> Logic {
        let mut acc = Logic::Zero;
        for &v in inputs {
            acc = acc | v;
        }
        acc
    }

    fn fold_xor(inputs: &[Logic]) -> Logic {
        let mut acc = Logic::Zero;
        for &v in inputs {
            acc = acc ^ v;
        }
        acc
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

impl std::ops::BitAnd for Logic {
    type Output = Logic;
    fn bitand(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }
}

impl std::ops::BitOr for Logic {
    type Output = Logic;
    fn bitor(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl std::ops::BitXor for Logic {
    type Output = Logic;
    fn bitxor(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::X, _) | (_, Logic::X) => Logic::X,
            (a, b) => Logic::from(a != b),
        }
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Logic::Zero => "0",
            Logic::One => "1",
            Logic::X => "X",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    #[test]
    fn and_or_identities() {
        for v in ALL {
            assert_eq!(v & Logic::Zero, Logic::Zero);
            assert_eq!(v | Logic::One, Logic::One);
            assert_eq!(v & Logic::One, v);
            assert_eq!(v | Logic::Zero, v);
        }
    }

    #[test]
    fn xor_with_x_is_x() {
        for v in ALL {
            assert_eq!(v ^ Logic::X, Logic::X);
        }
        assert_eq!(Logic::One ^ Logic::One, Logic::Zero);
        assert_eq!(Logic::One ^ Logic::Zero, Logic::One);
    }

    #[test]
    fn not_is_involutive_on_known_values() {
        assert_eq!(!!Logic::Zero, Logic::Zero);
        assert_eq!(!!Logic::One, Logic::One);
        assert_eq!(!!Logic::X, Logic::X);
    }

    #[test]
    fn gate_eval_matches_boolean_on_known_inputs() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for a in [false, true] {
                for b in [false, true] {
                    let expect = kind.eval_bool(&[a, b]);
                    let got = Logic::eval_gate(kind, &[a.into(), b.into()]);
                    assert_eq!(got, Logic::from(expect), "{kind} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn controlling_input_defeats_x() {
        assert_eq!(
            Logic::eval_gate(GateKind::And, &[Logic::Zero, Logic::X]),
            Logic::Zero
        );
        assert_eq!(
            Logic::eval_gate(GateKind::Nor, &[Logic::One, Logic::X]),
            Logic::Zero
        );
        assert_eq!(
            Logic::eval_gate(GateKind::Or, &[Logic::X, Logic::X]),
            Logic::X
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Logic::from(true), Logic::One);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::Zero.is_known());
        assert!(!Logic::X.is_known());
        assert_eq!(Logic::X.to_string(), "X");
    }
}
