//! Packed pattern sets: 64 test patterns per machine word.

use rand::Rng;

/// A set of input patterns packed bit-parallel: for each primary input
/// there is one `u64` per block of 64 patterns, bit *j* holding pattern
/// *j*'s value.
///
/// This layout lets [`ParallelSim`](crate::ParallelSim) evaluate 64
/// patterns per gate visit — the same trick classic parallel fault
/// simulators use (§I-B of the paper discusses why fault simulation cost
/// dominates; packing is the first-line mitigation).
///
/// ```
/// use dft_sim::PatternSet;
///
/// let mut p = PatternSet::new(3);
/// p.push(&[true, false, true]);
/// p.push(&[false, false, true]);
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.get(0), vec![true, false, true]);
/// assert!(p.bit(2, 1)); // input 2, pattern 1
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternSet {
    input_count: usize,
    len: usize,
    /// `words[block][input]`
    words: Vec<Vec<u64>>,
}

impl PatternSet {
    /// Creates an empty pattern set over `input_count` primary inputs.
    #[must_use]
    pub fn new(input_count: usize) -> Self {
        PatternSet {
            input_count,
            len: 0,
            words: Vec::new(),
        }
    }

    /// `count` patterns driving every input low.
    #[must_use]
    pub fn all_inputs_low(input_count: usize, count: usize) -> Self {
        let mut p = PatternSet::new(input_count);
        for _ in 0..count {
            p.push(&vec![false; input_count]);
        }
        p
    }

    /// `count` uniformly random patterns from `rng`.
    #[must_use]
    pub fn random<R: Rng>(input_count: usize, count: usize, rng: &mut R) -> Self {
        let mut p = PatternSet::new(input_count);
        let mut buf = vec![false; input_count];
        for _ in 0..count {
            for b in &mut buf {
                *b = rng.gen_bool(0.5);
            }
            p.push(&buf);
        }
        p
    }

    /// `count` patterns where input *i* is 1 with probability `weights[i]`
    /// — the "weighted random" generation of the paper's reference \[95\].
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != input_count`.
    #[must_use]
    pub fn weighted_random<R: Rng>(weights: &[f64], count: usize, rng: &mut R) -> Self {
        let mut p = PatternSet::new(weights.len());
        let mut buf = vec![false; weights.len()];
        for _ in 0..count {
            for (b, &w) in buf.iter_mut().zip(weights) {
                *b = rng.gen_bool(w.clamp(0.0, 1.0));
            }
            p.push(&buf);
        }
        p
    }

    /// Builds a set from explicit pattern rows.
    ///
    /// # Panics
    ///
    /// Panics if rows disagree in length.
    #[must_use]
    pub fn from_rows(input_count: usize, rows: &[Vec<bool>]) -> Self {
        let mut p = PatternSet::new(input_count);
        for r in rows {
            p.push(r);
        }
        p
    }

    /// Number of primary inputs per pattern.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Number of patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-pattern blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.words.len()
    }

    /// The packed words of one block: `words[input]`, one `u64` per input.
    ///
    /// Unused high lanes of the final block are zero.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn block(&self, block: usize) -> &[u64] {
        &self.words[block]
    }

    /// Number of valid pattern lanes in `block` (64 except possibly the
    /// last block).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn lanes_in_block(&self, block: usize) -> usize {
        assert!(block < self.words.len(), "block out of range");
        if block + 1 == self.words.len() {
            let rem = self.len % 64;
            if rem == 0 {
                64
            } else {
                rem
            }
        } else {
            64
        }
    }

    /// Appends one pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != input_count`.
    pub fn push(&mut self, pattern: &[bool]) {
        assert_eq!(
            pattern.len(),
            self.input_count,
            "pattern width must match input count"
        );
        let lane = self.len % 64;
        if lane == 0 {
            self.words.push(vec![0u64; self.input_count]);
        }
        let block = self.words.last_mut().expect("just ensured");
        for (i, &b) in pattern.iter().enumerate() {
            if b {
                block[i] |= 1 << lane;
            }
        }
        self.len += 1;
    }

    /// Appends all patterns of another set (same input count).
    ///
    /// # Panics
    ///
    /// Panics if input counts differ.
    pub fn extend_from(&mut self, other: &PatternSet) {
        assert_eq!(self.input_count, other.input_count);
        for i in 0..other.len() {
            self.push(&other.get(i));
        }
    }

    /// The value of input `input` in pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn bit(&self, input: usize, pattern: usize) -> bool {
        assert!(pattern < self.len, "pattern index out of range");
        assert!(input < self.input_count, "input index out of range");
        self.words[pattern / 64][input] >> (pattern % 64) & 1 == 1
    }

    /// Extracts pattern `pattern` as a row of bools.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn get(&self, pattern: usize) -> Vec<bool> {
        (0..self.input_count)
            .map(|i| self.bit(i, pattern))
            .collect()
    }

    /// Iterates over patterns as rows.
    pub fn iter(&self) -> impl Iterator<Item = Vec<bool>> + '_ {
        (0..self.len).map(|p| self.get(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_and_get_round_trip() {
        let rows = vec![
            vec![true, false, true],
            vec![false, true, true],
            vec![false, false, false],
        ];
        let p = PatternSet::from_rows(3, &rows);
        assert_eq!(p.len(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&p.get(i), r);
        }
    }

    #[test]
    fn blocks_fill_at_64() {
        let mut p = PatternSet::new(1);
        for i in 0..65 {
            p.push(&[i % 2 == 0]);
        }
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.lanes_in_block(0), 64);
        assert_eq!(p.lanes_in_block(1), 1);
        assert_eq!(p.block(0)[0], 0x5555_5555_5555_5555);
        assert_eq!(p.block(1)[0], 1);
    }

    #[test]
    fn random_is_seeded() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = PatternSet::random(4, 100, &mut r1);
        let b = PatternSet::random(4, 100, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_random_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = PatternSet::weighted_random(&[0.0, 1.0], 50, &mut rng);
        for i in 0..p.len() {
            assert!(!p.bit(0, i));
            assert!(p.bit(1, i));
        }
    }

    #[test]
    fn extend_concatenates() {
        let a = PatternSet::from_rows(2, &[vec![true, false]]);
        let mut b = PatternSet::from_rows(2, &[vec![false, true]]);
        b.extend_from(&a);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(1), vec![true, false]);
    }

    #[test]
    fn iter_yields_rows_in_order() {
        let rows = vec![vec![true, false], vec![false, false], vec![true, true]];
        let p = PatternSet::from_rows(2, &rows);
        let collected: Vec<Vec<bool>> = p.iter().collect();
        assert_eq!(collected, rows);
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn wrong_width_panics() {
        let mut p = PatternSet::new(2);
        p.push(&[true]);
    }
}
