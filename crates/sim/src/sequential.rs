//! Cycle-accurate sequential simulation.

use dft_netlist::{LevelizeError, Netlist};

use crate::{Logic, ThreeValueSim};

/// A clocked simulator holding the machine's state across cycles.
///
/// Each [`SequentialSim::step`] evaluates the combinational frame with the
/// current state and the supplied primary inputs, returns the primary
/// outputs, and then clocks every storage element (state ← data input).
/// State starts all-X, modelling an unreset power-up — exactly the
/// predictability problem the paper's CLEAR/PRESET discussion addresses.
///
/// ```
/// use dft_netlist::circuits::shift_register;
/// use dft_sim::{Logic, SequentialSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sr = shift_register(3);
/// let mut sim = SequentialSim::new(&sr)?;
/// sim.reset_to(Logic::Zero);
/// sim.step(&[Logic::One]);
/// sim.step(&[Logic::Zero]);
/// // After two shifts of (1, 0), q0=0 q1=1 q2=0.
/// assert_eq!(sim.state(), &[Logic::Zero, Logic::One, Logic::Zero]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SequentialSim<'n> {
    sim: ThreeValueSim<'n>,
    state: Vec<Logic>,
    cycles: u64,
}

impl<'n> SequentialSim<'n> {
    /// Creates a simulator with all storage at X.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist) -> Result<Self, LevelizeError> {
        let sim = ThreeValueSim::new(netlist)?;
        let state = vec![Logic::X; sim.storage().len()];
        Ok(SequentialSim {
            sim,
            state,
            cycles: 0,
        })
    }

    /// Forces every storage element to `value` (a global CLEAR/PRESET).
    pub fn reset_to(&mut self, value: Logic) {
        for s in &mut self.state {
            *s = value;
        }
    }

    /// Overwrites the state vector (storage order).
    ///
    /// # Panics
    ///
    /// Panics if the length disagrees with the storage count.
    pub fn load_state(&mut self, state: &[Logic]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        self.state.copy_from_slice(state);
    }

    /// The current state vector (storage order).
    #[must_use]
    pub fn state(&self) -> &[Logic] {
        &self.state
    }

    /// Number of clock cycles applied so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Applies one clock cycle: evaluate, sample outputs, capture next
    /// state. Returns the primary-output row observed *before* the clock
    /// edge.
    ///
    /// # Panics
    ///
    /// Panics if `pis` has the wrong length.
    pub fn step(&mut self, pis: &[Logic]) -> Vec<Logic> {
        let vals = self.sim.eval(pis, &self.state);
        let outs = self.sim.outputs(&vals);
        self.state = self.sim.next_state(&vals);
        self.cycles += 1;
        outs
    }

    /// Evaluates the current frame *without* clocking (combinational
    /// settle only) — how a level-sensitive tester examines outputs
    /// between clock pulses.
    #[must_use]
    pub fn peek(&self, pis: &[Logic]) -> Vec<Logic> {
        let vals = self.sim.eval(pis, &self.state);
        self.sim.outputs(&vals)
    }

    /// Runs a whole input sequence, collecting each cycle's outputs.
    pub fn run(&mut self, sequence: &[Vec<Logic>]) -> Vec<Vec<Logic>> {
        sequence.iter().map(|pis| self.step(pis)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::{binary_counter, johnson_counter, shift_register};

    fn bits(state: &[Logic]) -> Option<u32> {
        state.iter().enumerate().try_fold(0u32, |acc, (i, &v)| {
            v.to_bool().map(|b| acc | (u32::from(b) << i))
        })
    }

    #[test]
    fn counter_counts_after_reset() {
        let n = binary_counter(4);
        let mut sim = SequentialSim::new(&n).unwrap();
        sim.reset_to(Logic::Zero);
        for expect in 1..=20u32 {
            sim.step(&[Logic::One]);
            assert_eq!(bits(sim.state()), Some(expect % 16));
        }
    }

    #[test]
    fn counter_holds_when_disabled() {
        let n = binary_counter(3);
        let mut sim = SequentialSim::new(&n).unwrap();
        sim.reset_to(Logic::Zero);
        sim.step(&[Logic::One]);
        let before = bits(sim.state());
        sim.step(&[Logic::Zero]);
        assert_eq!(bits(sim.state()), before);
    }

    #[test]
    fn unreset_machine_is_unpredictable() {
        let n = binary_counter(3);
        let mut sim = SequentialSim::new(&n).unwrap();
        let outs = sim.step(&[Logic::One]);
        assert!(outs.contains(&Logic::X));
    }

    #[test]
    fn johnson_counter_cycles_with_period_2n() {
        let n = johnson_counter(3);
        let mut sim = SequentialSim::new(&n).unwrap();
        sim.reset_to(Logic::Zero);
        let start = sim.state().to_vec();
        for _ in 0..6 {
            sim.step(&[Logic::One]);
        }
        assert_eq!(sim.state(), &start[..], "period must be 2n = 6");
        assert_eq!(sim.cycles(), 6);
    }

    #[test]
    fn peek_does_not_clock() {
        let n = shift_register(2);
        let mut sim = SequentialSim::new(&n).unwrap();
        sim.reset_to(Logic::Zero);
        let _ = sim.peek(&[Logic::One]);
        assert_eq!(sim.state(), &[Logic::Zero, Logic::Zero]);
        assert_eq!(sim.cycles(), 0);
    }

    #[test]
    fn run_collects_output_trace() {
        let n = shift_register(1);
        let mut sim = SequentialSim::new(&n).unwrap();
        sim.reset_to(Logic::Zero);
        let seq = vec![vec![Logic::One], vec![Logic::Zero], vec![Logic::One]];
        let trace = sim.run(&seq);
        // Output is the DFF value *before* each edge: 0, then 1, then 0.
        assert_eq!(
            trace,
            vec![vec![Logic::Zero], vec![Logic::One], vec![Logic::Zero]]
        );
    }
}
