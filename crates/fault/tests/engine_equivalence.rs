//! Cross-engine equivalence properties.
//!
//! Every fault-simulation engine in `dft-fault` implements the same
//! specification — fault *f* is detected by pattern *p* iff some primary
//! output differs between the good machine and the machine with *f*
//! injected — so on random levelizable netlists they must produce
//! identical answers. The combinational engines (serial, parallel-fault,
//! deductive, PPSFP) must agree on the full [`DetectionResult`]
//! (first-detecting pattern per fault); the two cycle-based engines
//! (sequential, concurrent) are run on the pattern set as a cycle
//! sequence and must agree on the *detected set* (their per-cycle
//! first-detection coincides on combinational netlists too, which the
//! property also checks).

use dft_fault::{
    engines, ppsfp_with_options, simulate_with_options, universe, FaultSimEngine, PpsfpOptions,
    SerialEngine, SerialOptions,
};
use dft_netlist::circuits::random_combinational;
use dft_sim::{LaneWidth, PatternSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All six engines agree on random combinational netlists.
    #[test]
    fn all_engines_agree_on_random_netlists(
        inputs in 4usize..10,
        gates in 20usize..120,
        netlist_seed in 0u64..1000,
        pattern_seed: u64,
        pattern_count in 1usize..130,
    ) {
        let n = random_combinational(inputs, gates, netlist_seed);
        let faults = universe(&n);
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        let p = PatternSet::random(inputs, pattern_count, &mut rng);
        let reference = SerialEngine::default().run(&n, &p, &faults).unwrap();
        let reference_set = SerialEngine::default()
            .detected_set(&n, &p, &faults)
            .unwrap();
        for eng in engines() {
            let r = eng.run(&n, &p, &faults).unwrap();
            prop_assert_eq!(
                &r,
                &reference,
                "{} first-detection disagrees (netlist seed {}, pattern seed {})",
                eng.name(),
                netlist_seed,
                pattern_seed
            );
            prop_assert_eq!(
                &eng.detected_set(&n, &p, &faults).unwrap(),
                &reference_set,
                "{} detected set disagrees",
                eng.name()
            );
        }
    }

    /// PPSFP is invariant under its tuning knobs: any thread count and
    /// either dropping setting must reproduce the serial result exactly.
    #[test]
    fn ppsfp_options_do_not_change_the_result(
        netlist_seed in 0u64..1000,
        pattern_seed: u64,
        threads in 1usize..6,
        fault_dropping: bool,
    ) {
        let n = random_combinational(8, 80, netlist_seed);
        let faults = universe(&n);
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        let p = PatternSet::random(8, 100, &mut rng);
        let reference = SerialEngine::default().run(&n, &p, &faults).unwrap();
        let opts = PpsfpOptions::new()
            .with_threads(threads)
            .with_fault_dropping(fault_dropping);
        let r = ppsfp_with_options(&n, &p, &faults, opts).unwrap();
        prop_assert_eq!(
            r,
            reference,
            "threads {} dropping {} (netlist seed {})",
            threads,
            fault_dropping,
            netlist_seed
        );
    }

    /// Lane width is an implementation detail: every width (64/256/512
    /// lanes per wide block, plus the Auto heuristic) of both wide
    /// engines must reproduce the narrow serial reference bit for bit —
    /// detected sets *and* first-detecting patterns. The pattern count
    /// ranges over values that leave ragged tails at every width (a
    /// final 64-lane block that is partially masked, and a final wide
    /// group with fewer than `W` live words), so the tail-masking paths
    /// are always on the line.
    #[test]
    fn lane_widths_agree_on_detection(
        netlist_seed in 0u64..1000,
        pattern_seed: u64,
        pattern_count in 1usize..600,
        threads in 1usize..4,
        fault_dropping: bool,
    ) {
        let n = random_combinational(9, 100, netlist_seed);
        let faults = universe(&n);
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        let p = PatternSet::random(9, pattern_count, &mut rng);
        let reference = SerialEngine::default().run(&n, &p, &faults).unwrap();
        for lane_width in [
            LaneWidth::W64,
            LaneWidth::W256,
            LaneWidth::W512,
            LaneWidth::Auto,
        ] {
            let serial_opts = SerialOptions::new()
                .with_fault_dropping(fault_dropping)
                .with_lane_width(lane_width);
            let r = simulate_with_options(&n, &p, &faults, serial_opts).unwrap();
            prop_assert_eq!(
                &r,
                &reference,
                "serial {:?} dropping {} disagrees (netlist seed {}, {} patterns)",
                lane_width,
                fault_dropping,
                netlist_seed,
                pattern_count
            );
            let ppsfp_opts = PpsfpOptions::new()
                .with_threads(threads)
                .with_fault_dropping(fault_dropping)
                .with_lane_width(lane_width);
            let r = ppsfp_with_options(&n, &p, &faults, ppsfp_opts).unwrap();
            prop_assert_eq!(
                &r,
                &reference,
                "ppsfp {:?} threads {} dropping {} disagrees (netlist seed {}, {} patterns)",
                lane_width,
                threads,
                fault_dropping,
                netlist_seed,
                pattern_count
            );
        }
    }
}
