//! Static untestability prefiltering of fault lists.
//!
//! §I-B of the paper counts ~6000 single stuck-at faults for a 1000-gate
//! network and immediately starts shrinking the list (equivalence
//! collapsing takes it to ~3000). This module shrinks it further *before
//! any simulation or search runs*: the static implication engine of
//! `dft-implic` proves some faults untestable — unexcitable nets, or
//! effects that every sensitized path provably blocks — and those faults
//! need never enter a PPSFP campaign or an ATPG queue. A proven-redundant
//! fault has an empty syndrome by construction, so dropping it changes no
//! result, only the work performed.
//!
//! The analysis is sound but incomplete: every fault it flags is really
//! untestable (the soundness proptests in `dft-implic` cross-check this
//! against search ATPG), but some untestable faults slip through and
//! still cost a full search to refute.

use dft_implic::{ImplicationEngine, UntestableReason};
use dft_netlist::Netlist;

use crate::Fault;

/// The result of statically prefiltering a fault list: per-fault
/// verdicts plus the surviving (possibly-testable) sublist.
#[derive(Clone, Debug)]
pub struct Prefilter {
    faults: Vec<Fault>,
    /// Aligned with `faults`: `Some(reason)` iff statically proven
    /// untestable.
    verdicts: Vec<Option<UntestableReason>>,
}

impl Prefilter {
    /// The fault list the filter was run over.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The static verdict for `fault_index` — `Some` iff proven
    /// untestable, with the witness explaining why.
    ///
    /// # Panics
    ///
    /// Panics if `fault_index` is out of range.
    #[must_use]
    pub fn verdict(&self, fault_index: usize) -> Option<&UntestableReason> {
        self.verdicts[fault_index].as_ref()
    }

    /// Whether `fault_index` was proven untestable.
    ///
    /// # Panics
    ///
    /// Panics if `fault_index` is out of range.
    #[must_use]
    pub fn is_untestable(&self, fault_index: usize) -> bool {
        self.verdicts[fault_index].is_some()
    }

    /// The faults that survived the filter (not provably untestable), in
    /// universe order — the list worth handing to a simulator or ATPG.
    #[must_use]
    pub fn testable_faults(&self) -> Vec<Fault> {
        self.faults
            .iter()
            .zip(&self.verdicts)
            .filter(|(_, v)| v.is_none())
            .map(|(&f, _)| f)
            .collect()
    }

    /// The faults proven untestable, with their witnesses.
    #[must_use]
    pub fn untestable_faults(&self) -> Vec<(Fault, UntestableReason)> {
        self.faults
            .iter()
            .zip(&self.verdicts)
            .filter_map(|(&f, v)| v.map(|r| (f, r)))
            .collect()
    }

    /// Number of faults proven untestable.
    #[must_use]
    pub fn untestable_count(&self) -> usize {
        self.verdicts.iter().filter(|v| v.is_some()).count()
    }

    /// Expands detection flags computed over [`Prefilter::testable_faults`]
    /// back over the full list (filtered-out faults are undetectable, so
    /// they expand to `false`).
    ///
    /// # Panics
    ///
    /// Panics if `detected.len()` differs from the surviving-fault count.
    #[must_use]
    pub fn expand_detection(&self, detected: &[bool]) -> Vec<bool> {
        assert_eq!(
            detected.len(),
            self.faults.len() - self.untestable_count(),
            "detection vector must align with testable_faults()"
        );
        let mut it = detected.iter();
        self.verdicts
            .iter()
            .map(|v| v.is_none() && *it.next().unwrap())
            .collect()
    }
}

/// Runs the static implication engine over `netlist` and classifies every
/// fault in `faults` as possibly-testable or provably-untestable.
///
/// Builds a fresh [`ImplicationEngine`] internally;
/// callers holding one already can use [`prefilter_with`].
#[must_use]
pub fn prefilter_untestable(netlist: &Netlist, faults: &[Fault]) -> Prefilter {
    let engine = ImplicationEngine::new(netlist);
    prefilter_with(&engine, faults)
}

/// Like [`prefilter_untestable`], reusing an existing engine (learning is
/// the expensive part; amortize it across consumers).
#[must_use]
pub fn prefilter_with(engine: &ImplicationEngine<'_>, faults: &[Fault]) -> Prefilter {
    let verdicts = faults
        .iter()
        .map(|f| engine.fault_untestable(f.site.gate, f.site.pin, f.stuck))
        .collect();
    Prefilter {
        faults: faults.to_vec(),
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, universe};
    use dft_netlist::circuits::{c17, redundant_fixture};
    use dft_sim::PatternSet;

    fn exhaustive(width: usize) -> PatternSet {
        let rows: Vec<Vec<bool>> = (0..1u32 << width)
            .map(|v| (0..width).map(|i| v >> i & 1 == 1).collect())
            .collect();
        PatternSet::from_rows(width, &rows)
    }

    #[test]
    fn c17_is_fully_testable_so_nothing_is_filtered() {
        let n = c17();
        let faults = universe(&n);
        let pf = prefilter_untestable(&n, &faults);
        assert_eq!(pf.untestable_count(), 0);
        assert_eq!(pf.testable_faults(), faults);
    }

    #[test]
    fn redundant_fixture_loses_faults_and_no_detectable_ones() {
        let n = redundant_fixture();
        let faults = universe(&n);
        let pf = prefilter_untestable(&n, &faults);
        assert!(
            pf.untestable_count() > 0,
            "the fixture exists to be filtered"
        );
        // Soundness spot-check by exhaustive simulation: every filtered
        // fault is genuinely undetectable.
        let r = simulate(&n, &exhaustive(n.primary_inputs().len()), &faults).unwrap();
        for (i, f) in faults.iter().enumerate() {
            if pf.is_untestable(i) {
                assert!(
                    r.first_detected[i].is_none(),
                    "{f} was filtered but exhaustive simulation detects it"
                );
            }
        }
    }

    #[test]
    fn expand_detection_restores_universe_alignment() {
        let n = redundant_fixture();
        let faults = universe(&n);
        let pf = prefilter_untestable(&n, &faults);
        let survivors = pf.testable_faults();
        let r = simulate(&n, &exhaustive(n.primary_inputs().len()), &survivors).unwrap();
        let detected: Vec<bool> = r.first_detected.iter().map(Option::is_some).collect();
        let full = pf.expand_detection(&detected);
        assert_eq!(full.len(), faults.len());
        // Cross-check against simulating the full universe directly.
        let r_full = simulate(&n, &exhaustive(n.primary_inputs().len()), &faults).unwrap();
        for (i, d) in full.iter().enumerate() {
            assert_eq!(*d, r_full.first_detected[i].is_some(), "fault {i}");
        }
    }

    #[test]
    fn witnesses_are_reported() {
        let n = redundant_fixture();
        let faults = universe(&n);
        let pf = prefilter_untestable(&n, &faults);
        for (f, reason) in pf.untestable_faults() {
            // Displayable witness for diagnostics.
            assert!(!format!("{f}: {reason}").is_empty());
        }
    }
}
