//! Fault dictionaries: precomputed response differences for diagnosis.
//!
//! §III-D of the paper worries about *resolution* — once a board fails,
//! which part do you replace? A fault dictionary inverts fault
//! simulation: for every modelled fault, record which (pattern, output)
//! observations it corrupts; at repair time, match the observed failures
//! back to the candidates. (Equivalence classes are indistinguishable by
//! construction — the dictionary returns the whole class.)

use std::collections::BTreeSet;

use dft_netlist::{LevelizeError, Netlist};
use dft_sim::PatternSet;

use crate::{Fault, FaultyView, Ppsfp};

/// Crossover below which [`FaultDictionary::build`] extracts syndromes
/// with the plain serial walk instead of the PPSFP event engine, in
/// units of `faults × pattern-blocks × gates` (the serial walk's exact
/// work, in gate-fold words).
///
/// PPSFP pays fixed costs the serial walk doesn't — kernel compilation,
/// the reader CSR, and a per-block baseline sweep — and its per-fault
/// event machinery only wins once cone restriction has enough circuit
/// to bite on. Measured on the syndrome (no-dropping) path: on c17
/// (≈500 fold words) PPSFP runs ~1.7× *slower* than the reference walk,
/// and it is already ~1.2× faster at 1.25×10⁵ fold words, pulling ahead
/// further as the workload grows. The threshold sits at the bottom of
/// that band so the fast path only claims workloads the serial walk
/// wins outright.
const SERIAL_SYNDROME_WORK_LIMIT: u64 = 100_000;

/// Syndrome extraction via the serial reference walk: every fault fully
/// re-evaluated against every block, mismatches recorded per
/// `(pattern, output)`. No dropping — the dictionary needs *all*
/// detections. Only used below [`SERIAL_SYNDROME_WORK_LIMIT`].
fn serial_syndromes(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
) -> Result<Vec<BTreeSet<(u32, u16)>>, LevelizeError> {
    let view = FaultyView::new(netlist)?;
    let state = vec![0u64; view.storage().len()];
    let outputs: Vec<_> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();
    let good: Vec<Vec<u64>> = (0..patterns.block_count())
        .map(|b| {
            let vals = view.eval_block(patterns.block(b), &state, None);
            outputs.iter().map(|&g| vals[g.index()]).collect()
        })
        .collect();
    Ok(faults
        .iter()
        .map(|&fault| {
            let mut syn = BTreeSet::new();
            for (b, good_b) in good.iter().enumerate() {
                let lanes = patterns.lanes_in_block(b);
                let mask = if lanes == 64 {
                    u64::MAX
                } else {
                    (1u64 << lanes) - 1
                };
                let vals = view.eval_block(patterns.block(b), &state, Some(fault));
                for (oi, &g) in outputs.iter().enumerate() {
                    let mut diff = (vals[g.index()] ^ good_b[oi]) & mask;
                    while diff != 0 {
                        let lane = diff.trailing_zeros();
                        syn.insert(((b * 64) as u32 + lane, oi as u16));
                        diff &= diff - 1;
                    }
                }
            }
            syn
        })
        .collect())
}

/// A fault dictionary over a fixed pattern set.
#[derive(Clone, Debug)]
pub struct FaultDictionary {
    faults: Vec<Fault>,
    /// Per fault: the sorted set of (pattern, output) mismatches.
    syndromes: Vec<BTreeSet<(u32, u16)>>,
    pattern_count: usize,
}

impl FaultDictionary {
    /// Builds the dictionary by fault-simulating every fault against
    /// `patterns` (no dropping — the full syndrome is recorded). Large
    /// dictionaries are built on [`Ppsfp::run_syndromes`], so they get
    /// the fast engine's cone restriction and threading for free; tiny
    /// workloads (below 100 000 gate-fold words)
    /// skip PPSFP's fixed setup and use the serial reference walk, which
    /// outruns the event engine there. The two paths produce identical
    /// syndromes — the crossover is purely a speed decision.
    ///
    /// Before any simulation runs, the static implication engine
    /// ([`crate::prefilter_untestable`]) drops faults it can prove
    /// untestable: their syndrome is empty by construction, so skipping
    /// them changes no entry of the dictionary — only the work done
    /// building it.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    pub fn build(
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
    ) -> Result<Self, LevelizeError> {
        let run = |fl: &[Fault]| -> Result<Vec<BTreeSet<(u32, u16)>>, LevelizeError> {
            let work =
                fl.len() as u64 * patterns.block_count() as u64 * netlist.gate_count() as u64;
            if work < SERIAL_SYNDROME_WORK_LIMIT {
                serial_syndromes(netlist, patterns, fl)
            } else {
                Ok(Ppsfp::new(netlist)?.run_syndromes(patterns, fl))
            }
        };
        let pf = crate::prefilter_untestable(netlist, faults);
        let syndromes = if pf.untestable_count() == 0 {
            run(faults)?
        } else {
            // Simulate the survivors only; proven-untestable faults keep
            // the empty syndrome they provably have.
            let survivors = pf.testable_faults();
            let mut computed = run(&survivors)?.into_iter();
            (0..faults.len())
                .map(|i| {
                    if pf.is_untestable(i) {
                        BTreeSet::new()
                    } else {
                        computed.next().expect("one syndrome per survivor")
                    }
                })
                .collect()
        };
        Ok(FaultDictionary {
            faults: faults.to_vec(),
            syndromes,
            pattern_count: patterns.len(),
        })
    }

    /// The fault list the dictionary covers.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of patterns the dictionary was built over.
    #[must_use]
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// The full syndrome of one fault.
    ///
    /// # Panics
    ///
    /// Panics if `fault_index` is out of range.
    #[must_use]
    pub fn syndrome(&self, fault_index: usize) -> &BTreeSet<(u32, u16)> {
        &self.syndromes[fault_index]
    }

    /// Exact-match diagnosis: the faults whose recorded syndrome equals
    /// the observed failure set. Equivalent faults return together.
    #[must_use]
    pub fn diagnose_exact(&self, observed: &BTreeSet<(u32, u16)>) -> Vec<Fault> {
        self.syndromes
            .iter()
            .zip(&self.faults)
            .filter(|(syn, _)| *syn == observed)
            .map(|(_, &f)| f)
            .collect()
    }

    /// Nearest-match diagnosis for noisy observations: faults ranked by
    /// symmetric-difference distance to the observed set (best first,
    /// capped at `k`).
    #[must_use]
    pub fn diagnose_nearest(
        &self,
        observed: &BTreeSet<(u32, u16)>,
        k: usize,
    ) -> Vec<(Fault, usize)> {
        let mut scored: Vec<(Fault, usize)> = self
            .syndromes
            .iter()
            .zip(&self.faults)
            .map(|(syn, &f)| {
                let dist = syn.symmetric_difference(observed).count();
                (f, dist)
            })
            .collect();
        scored.sort_by_key(|&(f, d)| (d, f.site.gate, f.site.pin, f.stuck));
        scored.truncate(k);
        scored
    }

    /// Diagnostic resolution: the number of distinct syndromes divided by
    /// the number of detected faults (1.0 = every detected fault is
    /// uniquely identifiable).
    #[must_use]
    pub fn resolution(&self) -> f64 {
        let detected: Vec<&BTreeSet<(u32, u16)>> =
            self.syndromes.iter().filter(|s| !s.is_empty()).collect();
        if detected.is_empty() {
            return 1.0;
        }
        let mut unique: Vec<&BTreeSet<(u32, u16)>> = detected.clone();
        unique.sort();
        unique.dedup();
        unique.len() as f64 / detected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collapse, universe};
    use dft_netlist::circuits::c17;
    use rand::SeedableRng;

    fn exhaustive() -> PatternSet {
        let rows: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        PatternSet::from_rows(5, &rows)
    }

    #[test]
    fn injected_fault_is_diagnosed_to_its_class() {
        let n = c17();
        let faults = universe(&n);
        let dict = FaultDictionary::build(&n, &exhaustive(), &faults).unwrap();
        let col = collapse(&n, &faults);
        for (fi, _) in faults.iter().enumerate().step_by(5) {
            let observed = dict.syndrome(fi).clone();
            let candidates = dict.diagnose_exact(&observed);
            assert!(
                candidates.contains(&faults[fi]),
                "true fault missing from diagnosis"
            );
            // Everything diagnosed together must be detection-equivalent:
            // in particular the whole equivalence class matches.
            let rep = col.representative(fi);
            let class: Vec<Fault> = faults
                .iter()
                .enumerate()
                .filter(|&(j, _)| col.representative(j) == rep)
                .map(|(_, &f)| f)
                .collect();
            for f in class {
                assert!(candidates.contains(&f), "class member {f} missing");
            }
        }
    }

    #[test]
    fn nearest_match_tolerates_a_flipped_observation() {
        let n = c17();
        let faults = universe(&n);
        let dict = FaultDictionary::build(&n, &exhaustive(), &faults).unwrap();
        let fi = 7;
        let mut observed = dict.syndrome(fi).clone();
        // Corrupt the observation: drop one entry (tester glitch).
        let first = *observed.iter().next().expect("nonempty syndrome");
        observed.remove(&first);
        let ranked = dict.diagnose_nearest(&observed, 3);
        assert!(
            ranked.iter().any(|&(f, _)| f == faults[fi]),
            "true fault not in top 3: {ranked:?}"
        );
        assert!(ranked[0].1 <= 2);
    }

    #[test]
    fn resolution_reflects_equivalence_classes() {
        let n = c17();
        let faults = universe(&n);
        let dict = FaultDictionary::build(&n, &exhaustive(), &faults).unwrap();
        let col = collapse(&n, &faults);
        // Distinct syndromes can't exceed the number of classes…
        let res = dict.resolution();
        assert!(res <= 1.0);
        assert!(
            res <= col.class_count() as f64 / faults.len() as f64 + 1e-9,
            "resolution {} exceeds class bound",
            res
        );
        // …and exhaustive patterns distinguish a healthy fraction.
        assert!(res > 0.4, "resolution {res}");
    }

    #[test]
    fn prefiltered_build_matches_brute_force_on_redundant_logic() {
        // The fixture has statically-provable untestable faults; the
        // prefiltered build path must produce exactly the syndromes a
        // full simulation would (empty for the filtered faults).
        let n = dft_netlist::circuits::redundant_fixture();
        let faults = universe(&n);
        let rows: Vec<Vec<bool>> = (0..4u8)
            .map(|v| vec![v & 1 == 1, v >> 1 & 1 == 1])
            .collect();
        let patterns = PatternSet::from_rows(2, &rows);
        let dict = FaultDictionary::build(&n, &patterns, &faults).unwrap();
        let engine = crate::Ppsfp::new(&n).unwrap();
        let brute = engine.run_syndromes(&patterns, &faults);
        let pf = crate::prefilter_untestable(&n, &faults);
        assert!(
            pf.untestable_count() > 0,
            "fixture must exercise the skip path"
        );
        for (i, expected) in brute.iter().enumerate() {
            assert_eq!(dict.syndrome(i), expected, "fault {i} syndrome differs");
        }
    }

    #[test]
    fn serial_and_ppsfp_syndrome_paths_agree() {
        // The build crossover is a speed decision only: both extraction
        // paths must produce identical syndromes. c17 × exhaustive sits
        // below the crossover (the build takes the serial walk), so
        // compare it against an explicit PPSFP run; and check the serial
        // helper against PPSFP on a circuit with a ragged tail block.
        let n = c17();
        let faults = universe(&n);
        let p = exhaustive();
        let dict = FaultDictionary::build(&n, &p, &faults).unwrap();
        let ppsfp = crate::Ppsfp::new(&n).unwrap().run_syndromes(&p, &faults);
        for (i, expected) in ppsfp.iter().enumerate() {
            assert_eq!(dict.syndrome(i), expected, "fault {i}");
        }

        let n = dft_netlist::circuits::random_combinational(8, 90, 3);
        let faults = universe(&n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let p = dft_sim::PatternSet::random(8, 100, &mut rng);
        let serial = serial_syndromes(&n, &p, &faults).unwrap();
        let ppsfp = crate::Ppsfp::new(&n).unwrap().run_syndromes(&p, &faults);
        assert_eq!(serial, ppsfp);
    }

    #[test]
    fn empty_observation_diagnoses_only_undetected_faults() {
        let n = c17();
        let faults = universe(&n);
        let dict = FaultDictionary::build(&n, &exhaustive(), &faults).unwrap();
        let candidates = dict.diagnose_exact(&BTreeSet::new());
        // c17 is fully testable: nothing has an empty syndrome.
        assert!(candidates.is_empty());
    }
}
