//! Fault dictionaries: precomputed response differences for diagnosis.
//!
//! §III-D of the paper worries about *resolution* — once a board fails,
//! which part do you replace? A fault dictionary inverts fault
//! simulation: for every modelled fault, record which (pattern, output)
//! observations it corrupts; at repair time, match the observed failures
//! back to the candidates. (Equivalence classes are indistinguishable by
//! construction — the dictionary returns the whole class.)

use std::collections::BTreeSet;

use dft_netlist::{LevelizeError, Netlist};
use dft_sim::PatternSet;

use crate::{Fault, Ppsfp};

/// A fault dictionary over a fixed pattern set.
#[derive(Clone, Debug)]
pub struct FaultDictionary {
    faults: Vec<Fault>,
    /// Per fault: the sorted set of (pattern, output) mismatches.
    syndromes: Vec<BTreeSet<(u32, u16)>>,
    pattern_count: usize,
}

impl FaultDictionary {
    /// Builds the dictionary by fault-simulating every fault against
    /// `patterns` (no dropping — the full syndrome is recorded). Built on
    /// [`Ppsfp::run_syndromes`], so large dictionaries get the fast
    /// engine's cone restriction and threading for free.
    ///
    /// Before any simulation runs, the static implication engine
    /// ([`crate::prefilter_untestable`]) drops faults it can prove
    /// untestable: their syndrome is empty by construction, so skipping
    /// them changes no entry of the dictionary — only the work done
    /// building it.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    pub fn build(
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
    ) -> Result<Self, LevelizeError> {
        let engine = Ppsfp::new(netlist)?;
        let pf = crate::prefilter_untestable(netlist, faults);
        let syndromes = if pf.untestable_count() == 0 {
            engine.run_syndromes(patterns, faults)
        } else {
            // Simulate the survivors only; proven-untestable faults keep
            // the empty syndrome they provably have.
            let survivors = pf.testable_faults();
            let mut computed = engine.run_syndromes(patterns, &survivors).into_iter();
            (0..faults.len())
                .map(|i| {
                    if pf.is_untestable(i) {
                        BTreeSet::new()
                    } else {
                        computed.next().expect("one syndrome per survivor")
                    }
                })
                .collect()
        };
        Ok(FaultDictionary {
            faults: faults.to_vec(),
            syndromes,
            pattern_count: patterns.len(),
        })
    }

    /// The fault list the dictionary covers.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of patterns the dictionary was built over.
    #[must_use]
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// The full syndrome of one fault.
    ///
    /// # Panics
    ///
    /// Panics if `fault_index` is out of range.
    #[must_use]
    pub fn syndrome(&self, fault_index: usize) -> &BTreeSet<(u32, u16)> {
        &self.syndromes[fault_index]
    }

    /// Exact-match diagnosis: the faults whose recorded syndrome equals
    /// the observed failure set. Equivalent faults return together.
    #[must_use]
    pub fn diagnose_exact(&self, observed: &BTreeSet<(u32, u16)>) -> Vec<Fault> {
        self.syndromes
            .iter()
            .zip(&self.faults)
            .filter(|(syn, _)| *syn == observed)
            .map(|(_, &f)| f)
            .collect()
    }

    /// Nearest-match diagnosis for noisy observations: faults ranked by
    /// symmetric-difference distance to the observed set (best first,
    /// capped at `k`).
    #[must_use]
    pub fn diagnose_nearest(
        &self,
        observed: &BTreeSet<(u32, u16)>,
        k: usize,
    ) -> Vec<(Fault, usize)> {
        let mut scored: Vec<(Fault, usize)> = self
            .syndromes
            .iter()
            .zip(&self.faults)
            .map(|(syn, &f)| {
                let dist = syn.symmetric_difference(observed).count();
                (f, dist)
            })
            .collect();
        scored.sort_by_key(|&(f, d)| (d, f.site.gate, f.site.pin, f.stuck));
        scored.truncate(k);
        scored
    }

    /// Diagnostic resolution: the number of distinct syndromes divided by
    /// the number of detected faults (1.0 = every detected fault is
    /// uniquely identifiable).
    #[must_use]
    pub fn resolution(&self) -> f64 {
        let detected: Vec<&BTreeSet<(u32, u16)>> =
            self.syndromes.iter().filter(|s| !s.is_empty()).collect();
        if detected.is_empty() {
            return 1.0;
        }
        let mut unique: Vec<&BTreeSet<(u32, u16)>> = detected.clone();
        unique.sort();
        unique.dedup();
        unique.len() as f64 / detected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collapse, universe};
    use dft_netlist::circuits::c17;

    fn exhaustive() -> PatternSet {
        let rows: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        PatternSet::from_rows(5, &rows)
    }

    #[test]
    fn injected_fault_is_diagnosed_to_its_class() {
        let n = c17();
        let faults = universe(&n);
        let dict = FaultDictionary::build(&n, &exhaustive(), &faults).unwrap();
        let col = collapse(&n, &faults);
        for (fi, _) in faults.iter().enumerate().step_by(5) {
            let observed = dict.syndrome(fi).clone();
            let candidates = dict.diagnose_exact(&observed);
            assert!(
                candidates.contains(&faults[fi]),
                "true fault missing from diagnosis"
            );
            // Everything diagnosed together must be detection-equivalent:
            // in particular the whole equivalence class matches.
            let rep = col.representative(fi);
            let class: Vec<Fault> = faults
                .iter()
                .enumerate()
                .filter(|&(j, _)| col.representative(j) == rep)
                .map(|(_, &f)| f)
                .collect();
            for f in class {
                assert!(candidates.contains(&f), "class member {f} missing");
            }
        }
    }

    #[test]
    fn nearest_match_tolerates_a_flipped_observation() {
        let n = c17();
        let faults = universe(&n);
        let dict = FaultDictionary::build(&n, &exhaustive(), &faults).unwrap();
        let fi = 7;
        let mut observed = dict.syndrome(fi).clone();
        // Corrupt the observation: drop one entry (tester glitch).
        let first = *observed.iter().next().expect("nonempty syndrome");
        observed.remove(&first);
        let ranked = dict.diagnose_nearest(&observed, 3);
        assert!(
            ranked.iter().any(|&(f, _)| f == faults[fi]),
            "true fault not in top 3: {ranked:?}"
        );
        assert!(ranked[0].1 <= 2);
    }

    #[test]
    fn resolution_reflects_equivalence_classes() {
        let n = c17();
        let faults = universe(&n);
        let dict = FaultDictionary::build(&n, &exhaustive(), &faults).unwrap();
        let col = collapse(&n, &faults);
        // Distinct syndromes can't exceed the number of classes…
        let res = dict.resolution();
        assert!(res <= 1.0);
        assert!(
            res <= col.class_count() as f64 / faults.len() as f64 + 1e-9,
            "resolution {} exceeds class bound",
            res
        );
        // …and exhaustive patterns distinguish a healthy fraction.
        assert!(res > 0.4, "resolution {res}");
    }

    #[test]
    fn prefiltered_build_matches_brute_force_on_redundant_logic() {
        // The fixture has statically-provable untestable faults; the
        // prefiltered build path must produce exactly the syndromes a
        // full simulation would (empty for the filtered faults).
        let n = dft_netlist::circuits::redundant_fixture();
        let faults = universe(&n);
        let rows: Vec<Vec<bool>> = (0..4u8)
            .map(|v| vec![v & 1 == 1, v >> 1 & 1 == 1])
            .collect();
        let patterns = PatternSet::from_rows(2, &rows);
        let dict = FaultDictionary::build(&n, &patterns, &faults).unwrap();
        let engine = crate::Ppsfp::new(&n).unwrap();
        let brute = engine.run_syndromes(&patterns, &faults);
        let pf = crate::prefilter_untestable(&n, &faults);
        assert!(
            pf.untestable_count() > 0,
            "fixture must exercise the skip path"
        );
        for (i, expected) in brute.iter().enumerate() {
            assert_eq!(dict.syndrome(i), expected, "fault {i} syndrome differs");
        }
    }

    #[test]
    fn empty_observation_diagnoses_only_undetected_faults() {
        let n = c17();
        let faults = universe(&n);
        let dict = FaultDictionary::build(&n, &exhaustive(), &faults).unwrap();
        let candidates = dict.diagnose_exact(&BTreeSet::new());
        // c17 is fully testable: nothing has an empty syndrome.
        assert!(candidates.is_empty());
    }
}
