//! CMOS stuck-open faults and two-pattern testing.
//!
//! §I-A of the paper: "The problem with CMOS is that there are a number
//! of faults which could change a combinational network into a
//! sequential network. Therefore, the combinational patterns are no
//! longer effective in testing the network in all cases. It still
//! remains to be seen whether … the single Stuck-At fault assumption
//! will survive the CMOS problems."
//!
//! This module models that fault class. A CMOS gate drives its output
//! through a pull-up (PMOS) and a pull-down (NMOS) transistor network;
//! if one transistor is stuck open, input combinations that needed it
//! leave the output *floating*, and the node capacitance retains the
//! previous value — memory where none was designed. Detection therefore
//! needs an ordered **pair** of patterns: the first initializes the
//! node to the complement, the second exposes the float.
//!
//! The model covers the inverting primitives CMOS actually builds
//! (NOT/NAND/NOR):
//!
//! * NAND pull-up: one PMOS per input, in parallel (conducts when that
//!   input is 0). PMOS of input *i* stuck open ⇒ the output floats
//!   exactly when input *i* is the *only* 0.
//! * NAND pull-down: all NMOS in series (conducts when all inputs 1).
//!   Any NMOS stuck open ⇒ the output floats whenever all inputs are 1.
//! * NOR is the dual; NOT degenerates to both.

use dft_netlist::{GateId, GateKind, LevelizeError, Netlist};
use dft_sim::Logic;

/// Which transistor network the open sits in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpenKind {
    /// A PMOS in the pull-up network (associated with one input).
    PullUp,
    /// An NMOS in the pull-down network (associated with one input).
    PullDown,
}

/// One stuck-open fault: the transistor of `pin` in the given network of
/// `gate` never conducts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StuckOpenFault {
    /// The afflicted gate (must be NOT/NAND/NOR).
    pub gate: GateId,
    /// The input whose transistor is open.
    pub pin: u8,
    /// Which network.
    pub kind: OpenKind,
}

impl std::fmt::Display for StuckOpenFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let net = match self.kind {
            OpenKind::PullUp => "pull-up",
            OpenKind::PullDown => "pull-down",
        };
        write!(f, "{}.in{} {net}-open", self.gate, self.pin)
    }
}

/// Enumerates the stuck-open universe: for every inverting primitive,
/// one pull-up and one pull-down open per input. (AND/OR/XOR gates in
/// the netlist are treated as compound cells whose internals this model
/// does not open — CMOS implements them as inverting stages anyway.)
#[must_use]
pub fn stuck_open_universe(netlist: &Netlist) -> Vec<StuckOpenFault> {
    let mut out = Vec::new();
    for (id, gate) in netlist.iter() {
        if !matches!(gate.kind(), GateKind::Not | GateKind::Nand | GateKind::Nor) {
            continue;
        }
        for pin in 0..gate.fanin() {
            for kind in [OpenKind::PullUp, OpenKind::PullDown] {
                out.push(StuckOpenFault {
                    gate: id,
                    pin: pin as u8,
                    kind,
                });
            }
        }
    }
    out
}

/// Whether the faulted gate floats under the given input values (and
/// what it would have driven if healthy).
fn gate_response(kind: GateKind, inputs: &[Logic], fault: Option<&StuckOpenFault>) -> GateResponse {
    // Healthy output.
    let good = Logic::eval_gate(kind, inputs);
    let Some(f) = fault else {
        return GateResponse::Driven(good);
    };
    let pin = f.pin as usize;
    match (kind, f.kind) {
        // NAND pull-up: parallel PMOS; input i's PMOS conducts when
        // input i = 0. Open ⇒ floats when i is the only 0 (no other
        // PMOS conducts and the series pull-down is off).
        (GateKind::Nand | GateKind::Not, OpenKind::PullUp) => {
            let only_zero = inputs.iter().enumerate().all(|(q, &v)| {
                if q == pin {
                    v == Logic::Zero
                } else {
                    v == Logic::One
                }
            });
            if only_zero {
                GateResponse::Floating
            } else {
                GateResponse::Driven(good)
            }
        }
        // NAND pull-down: series NMOS; conducts only when all inputs 1.
        // Any open ⇒ floats whenever the pull-down was the driver.
        (GateKind::Nand | GateKind::Not, OpenKind::PullDown) => {
            let all_one = inputs.iter().all(|&v| v == Logic::One);
            if all_one {
                GateResponse::Floating
            } else {
                GateResponse::Driven(good)
            }
        }
        // NOR pull-down: parallel NMOS per input (conducts when that
        // input is 1). Open ⇒ floats when pin is the only 1.
        (GateKind::Nor, OpenKind::PullDown) => {
            let only_one = inputs.iter().enumerate().all(|(q, &v)| {
                if q == pin {
                    v == Logic::One
                } else {
                    v == Logic::Zero
                }
            });
            if only_one {
                GateResponse::Floating
            } else {
                GateResponse::Driven(good)
            }
        }
        // NOR pull-up: series PMOS; conducts only when all inputs 0.
        (GateKind::Nor, OpenKind::PullUp) => {
            let all_zero = inputs.iter().all(|&v| v == Logic::Zero);
            if all_zero {
                GateResponse::Floating
            } else {
                GateResponse::Driven(good)
            }
        }
        _ => GateResponse::Driven(good),
    }
}

enum GateResponse {
    Driven(Logic),
    Floating,
}

/// Evaluates one pattern against the faulty machine, carrying the
/// faulted node's retained charge in `memory` (X = unknown charge).
/// Returns all node values.
fn eval_faulty(
    netlist: &Netlist,
    order: &[GateId],
    pis: &[Logic],
    fault: &StuckOpenFault,
    memory: &mut Logic,
) -> Vec<Logic> {
    let mut vals = vec![Logic::X; netlist.gate_count()];
    for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
        vals[pi.index()] = pis[i];
    }
    for (id, gate) in netlist.iter() {
        match gate.kind() {
            GateKind::Const0 => vals[id.index()] = Logic::Zero,
            GateKind::Const1 => vals[id.index()] = Logic::One,
            _ => {}
        }
    }
    let mut buf: Vec<Logic> = Vec::with_capacity(8);
    for &id in order {
        let gate = netlist.gate(id);
        if gate.kind().is_source() {
            continue;
        }
        buf.clear();
        buf.extend(gate.inputs().iter().map(|&s| vals[s.index()]));
        let f = (fault.gate == id).then_some(fault);
        vals[id.index()] = match gate_response(gate.kind(), &buf, f) {
            GateResponse::Driven(v) => {
                if fault.gate == id {
                    *memory = v; // the node charges to the driven value
                }
                v
            }
            GateResponse::Floating => *memory,
        };
    }
    vals
}

/// Result of two-pattern stuck-open simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StuckOpenDetection {
    /// For each fault: the index of the first detecting *pair* (pairs
    /// are consecutive patterns `(k, k+1)` of the applied sequence).
    pub first_detected: Vec<Option<usize>>,
    /// Number of pattern pairs examined.
    pub pair_count: usize,
}

impl StuckOpenDetection {
    /// Detected / total.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.first_detected.is_empty() {
            1.0
        } else {
            self.first_detected.iter().filter(|d| d.is_some()).count() as f64
                / self.first_detected.len() as f64
        }
    }
}

/// Applies `sequence` (ordered!) to every stuck-open fault. Node charge
/// starts unknown; a fault is detected at pair `k` when, after applying
/// patterns `0..=k+1` in order, some primary output is known in both
/// machines and differs on pattern `k+1`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if a row's width disagrees with the input count, or the
/// netlist is sequential (combine with scan extraction first).
pub fn simulate_stuck_open(
    netlist: &Netlist,
    sequence: &[Vec<bool>],
    faults: &[StuckOpenFault],
) -> Result<StuckOpenDetection, LevelizeError> {
    assert!(
        netlist.is_combinational(),
        "stuck-open simulation expects a combinational network"
    );
    let lv = netlist.levelize()?;
    let order: Vec<GateId> = lv.order().to_vec();
    let outputs: Vec<GateId> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();

    // Good responses.
    let rows: Vec<Vec<Logic>> = sequence
        .iter()
        .map(|r| {
            assert_eq!(r.len(), netlist.primary_inputs().len());
            r.iter().map(|&b| Logic::from(b)).collect()
        })
        .collect();
    let good: Vec<Vec<Logic>> = {
        // The good machine has no memory: use the same evaluator with a
        // never-floating dummy fault on a nonexistent pin.
        rows.iter()
            .map(|r| {
                let mut vals = vec![Logic::X; netlist.gate_count()];
                for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
                    vals[pi.index()] = r[i];
                }
                for (id, gate) in netlist.iter() {
                    match gate.kind() {
                        GateKind::Const0 => vals[id.index()] = Logic::Zero,
                        GateKind::Const1 => vals[id.index()] = Logic::One,
                        _ => {}
                    }
                }
                let mut buf = Vec::with_capacity(8);
                for &id in &order {
                    let gate = netlist.gate(id);
                    if gate.kind().is_source() {
                        continue;
                    }
                    buf.clear();
                    buf.extend(gate.inputs().iter().map(|&s| vals[s.index()]));
                    vals[id.index()] = Logic::eval_gate(gate.kind(), &buf);
                }
                vals
            })
            .collect()
    };

    let mut first_detected = vec![None; faults.len()];
    for (fi, fault) in faults.iter().enumerate() {
        let mut memory = Logic::X;
        for (k, row) in rows.iter().enumerate() {
            let vals = eval_faulty(netlist, &order, row, fault, &mut memory);
            if k == 0 {
                continue; // nothing initialized yet: pair index starts at 1
            }
            let detected = outputs.iter().any(|&g| {
                matches!(
                    (good[k][g.index()].to_bool(), vals[g.index()].to_bool()),
                    (Some(a), Some(b)) if a != b
                )
            });
            if detected {
                first_detected[fi] = Some(k - 1);
                break;
            }
        }
    }

    Ok(StuckOpenDetection {
        first_detected,
        pair_count: sequence.len().saturating_sub(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::c17;
    use dft_netlist::Netlist;

    fn nand2() -> (Netlist, GateId) {
        let mut n = Netlist::new("nand2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::Nand, &[a, b]).unwrap();
        n.mark_output(g, "y").unwrap();
        (n, g)
    }

    #[test]
    fn classic_two_pattern_test_for_pullup_open() {
        // PMOS of input a open: output floats when (a, b) = (0, 1).
        // Classic test: first (1,1) drives y = 0, then (0,1) — healthy
        // y = 1, faulty y retains 0.
        let (n, g) = nand2();
        let fault = StuckOpenFault {
            gate: g,
            pin: 0,
            kind: OpenKind::PullUp,
        };
        let seq = vec![vec![true, true], vec![false, true]];
        let r = simulate_stuck_open(&n, &seq, &[fault]).unwrap();
        assert_eq!(r.first_detected, vec![Some(0)]);
    }

    #[test]
    fn wrong_order_misses_the_fault() {
        // The same two patterns in the opposite order initialize the
        // node to 1 — the float then *matches* the good value.
        let (n, g) = nand2();
        let fault = StuckOpenFault {
            gate: g,
            pin: 0,
            kind: OpenKind::PullUp,
        };
        let seq = vec![vec![false, true], vec![true, true]];
        let r = simulate_stuck_open(&n, &seq, &[fault]).unwrap();
        assert_eq!(
            r.first_detected,
            vec![None],
            "order matters: stuck-at thinking fails here"
        );
    }

    #[test]
    fn pulldown_open_needs_the_dual_pair() {
        // NMOS open: floats when (1,1). Init with any 1-producing input
        // (e.g. (0,1)), then apply (1,1): healthy 0, faulty retains 1.
        let (n, g) = nand2();
        let fault = StuckOpenFault {
            gate: g,
            pin: 1,
            kind: OpenKind::PullDown,
        };
        let seq = vec![vec![false, true], vec![true, true]];
        let r = simulate_stuck_open(&n, &seq, &[fault]).unwrap();
        assert_eq!(r.first_detected, vec![Some(0)]);
    }

    #[test]
    fn unknown_initial_charge_is_conservative() {
        // A single pattern can never detect: the retained value is X.
        let (n, g) = nand2();
        let fault = StuckOpenFault {
            gate: g,
            pin: 0,
            kind: OpenKind::PullUp,
        };
        let r = simulate_stuck_open(&n, &[vec![false, true]], &[fault]).unwrap();
        assert_eq!(r.first_detected, vec![None]);
        assert_eq!(r.pair_count, 0);
    }

    #[test]
    fn universe_counts() {
        let (n, _) = nand2();
        // One NAND with 2 inputs: 2 pins × 2 networks = 4 opens.
        assert_eq!(stuck_open_universe(&n).len(), 4);
        // c17: 6 two-input NANDs ⇒ 24.
        assert_eq!(stuck_open_universe(&c17()).len(), 24);
    }

    #[test]
    fn exhaustive_pairs_cover_most_of_c17() {
        // Walk all 32 patterns twice in Gray-ish order so adjacent
        // patterns form useful pairs.
        let n = c17();
        let faults = stuck_open_universe(&n);
        let mut seq: Vec<Vec<bool>> = Vec::new();
        for round in 0..2 {
            for v in 0..32u8 {
                let g = v ^ (v >> 1) ^ round; // Gray code, offset per round
                seq.push((0..5).map(|i| g >> i & 1 == 1).collect());
            }
        }
        let r = simulate_stuck_open(&n, &seq, &faults).unwrap();
        assert!(
            r.coverage() > 0.7,
            "two-pattern sweeps should catch most opens ({})",
            r.coverage()
        );
    }

    #[test]
    fn not_gate_opens() {
        let mut n = Netlist::new("inv");
        let a = n.add_input("a");
        let g = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(g, "y").unwrap();
        // Pull-up open: floats when a = 0. Init with a = 1 (y = 0), then
        // a = 0: healthy 1, faulty retains 0.
        let fault = StuckOpenFault {
            gate: g,
            pin: 0,
            kind: OpenKind::PullUp,
        };
        let r = simulate_stuck_open(&n, &[vec![true], vec![false]], &[fault]).unwrap();
        assert_eq!(r.first_detected, vec![Some(0)]);
    }
}
