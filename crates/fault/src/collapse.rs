//! Structural fault collapsing: equivalence and dominance.
//!
//! §I-B of the paper: "Some reduction in the number of single stuck-at
//! faults can be achieved by fault equivalencing … the number of single
//! stuck-at faults needed to be assumed is about 3000" (from 6000 for a
//! 1000-gate network). These are the classic structural rules:
//!
//! * controlling-input equivalence — an AND input s-a-0 is equivalent to
//!   the AND output s-a-0 (NAND: output s-a-1; OR: output s-a-1;
//!   NOR: output s-a-0);
//! * inverter/buffer equivalence — the input fault maps through the gate;
//! * fanout-free stems — a driver's output fault is equivalent to the
//!   sole reader's input fault.

use std::collections::HashMap;

use dft_netlist::{GateKind, Netlist, Pin, PortRef};

use crate::Fault;

/// The result of collapsing a fault universe.
#[derive(Clone, Debug)]
pub struct Collapse {
    faults: Vec<Fault>,
    /// For each fault index, the index of its class representative.
    rep_of: Vec<usize>,
    /// Indices of the representatives, in universe order.
    reps: Vec<usize>,
}

impl Collapse {
    /// The original universe this collapse was computed over.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The representative fault of `fault_index`'s equivalence class.
    ///
    /// # Panics
    ///
    /// Panics if `fault_index` is out of range.
    #[must_use]
    pub fn representative(&self, fault_index: usize) -> Fault {
        self.faults[self.rep_of[fault_index]]
    }

    /// One fault per equivalence class, in universe order.
    #[must_use]
    pub fn representatives(&self) -> Vec<Fault> {
        self.reps.iter().map(|&i| self.faults[i]).collect()
    }

    /// Number of equivalence classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.reps.len()
    }

    /// The collapse ratio `classes / universe` (the paper's 1000-gate
    /// example lands near 0.5).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.faults.is_empty() {
            1.0
        } else {
            self.reps.len() as f64 / self.faults.len() as f64
        }
    }

    /// Expands per-representative detection flags back over the whole
    /// universe: a fault is detected iff its representative is.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len()` differs from
    /// [`Collapse::class_count`].
    #[must_use]
    pub fn expand_detection(&self, detected: &[bool]) -> Vec<bool> {
        assert_eq!(detected.len(), self.reps.len());
        let class_index: HashMap<usize, usize> = self
            .reps
            .iter()
            .enumerate()
            .map(|(k, &rep)| (rep, k))
            .collect();
        self.rep_of
            .iter()
            .map(|&rep| detected[class_index[&rep]])
            .collect()
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller index as representative for determinism.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Collapses `faults` over `netlist` by structural equivalence.
///
/// Faults not present in the list are ignored (you may collapse a
/// sub-universe). Representatives are chosen deterministically (smallest
/// universe index per class).
#[must_use]
pub fn collapse(netlist: &Netlist, faults: &[Fault]) -> Collapse {
    let index: HashMap<Fault, usize> = faults.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let mut uf = UnionFind::new(faults.len());
    let merge = |uf: &mut UnionFind, a: Fault, b: Fault| {
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            uf.union(ia, ib);
        }
    };

    let fanout = netlist.fanout_map();
    for (id, gate) in netlist.iter() {
        // Rule 1: controlling-value equivalence through the gate.
        if let Some(c) = gate.kind().controlling_value() {
            let out_val = c != gate.kind().inverts();
            for pin in 0..gate.fanin() {
                merge(
                    &mut uf,
                    Fault {
                        site: PortRef::input(id, pin as u8),
                        stuck: c,
                    },
                    Fault {
                        site: PortRef::output(id),
                        stuck: out_val,
                    },
                );
            }
        }
        // Rule 2: single-input gates map both polarities through.
        match gate.kind() {
            GateKind::Buf => {
                for v in [false, true] {
                    merge(
                        &mut uf,
                        Fault {
                            site: PortRef::input(id, 0),
                            stuck: v,
                        },
                        Fault {
                            site: PortRef::output(id),
                            stuck: v,
                        },
                    );
                }
            }
            GateKind::Not => {
                for v in [false, true] {
                    merge(
                        &mut uf,
                        Fault {
                            site: PortRef::input(id, 0),
                            stuck: v,
                        },
                        Fault {
                            site: PortRef::output(id),
                            stuck: !v,
                        },
                    );
                }
            }
            _ => {}
        }
        // Rule 3: fanout-free stem — driver output fault ≡ sole reader's
        // input fault (unless the stem is also observed as a primary
        // output, where the faults differ in observability).
        let is_po = netlist.primary_outputs().iter().any(|&(g, _)| g == id);
        if fanout[id.index()].len() == 1 && !is_po {
            let (reader, pin) = fanout[id.index()][0];
            for v in [false, true] {
                merge(
                    &mut uf,
                    Fault {
                        site: PortRef::output(id),
                        stuck: v,
                    },
                    Fault {
                        site: PortRef::input(reader, pin),
                        stuck: v,
                    },
                );
            }
        }
    }

    let rep_of: Vec<usize> = (0..faults.len()).map(|i| uf.find(i)).collect();
    let mut reps: Vec<usize> = rep_of.clone();
    reps.sort_unstable();
    reps.dedup();
    Collapse {
        faults: faults.to_vec(),
        rep_of,
        reps,
    }
}

/// Dominance-based reduction on top of equivalence: for an AND/NAND
/// (resp. OR/NOR) gate, the output s-a-noncontrolled-response fault
/// dominates every input s-a-noncontrolling fault, so it can be dropped
/// from test-generation target lists (any test for the dominated input
/// fault also detects it). Returns the reduced target list.
///
/// Note: dominance is safe for test *generation* but, unlike equivalence,
/// does not preserve per-fault detection equality — dominated faults may
/// be detected by patterns that miss their dominator.
#[must_use]
pub fn dominance_collapse(netlist: &Netlist, faults: &[Fault]) -> Vec<Fault> {
    let eq = collapse(netlist, faults);
    let mut keep: Vec<Fault> = Vec::new();
    for f in eq.representatives() {
        // Drop gate-output faults that dominate their input faults: for an
        // AND gate, output s-a-1 is detected whenever any input s-a-1 is.
        let gate = netlist.gate(f.site.gate);
        if f.site.pin == Pin::Output {
            if let Some(c) = gate.kind().controlling_value() {
                let dominated_by_inputs = f.stuck == (c == gate.kind().inverts());
                let is_po = netlist
                    .primary_outputs()
                    .iter()
                    .any(|&(g, _)| g == f.site.gate);
                if dominated_by_inputs && !is_po && gate.fanin() > 0 {
                    continue;
                }
            }
        }
        keep.push(f);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use dft_netlist::circuits::c17;
    use dft_netlist::{GateKind, Netlist};

    #[test]
    fn and_gate_classes() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(g, "y").unwrap();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        // Universe: a.out×2, b.out×2, g.in0×2, g.in1×2, g.out×2 = 10.
        // Equivalences: {g.in0/0, g.in1/0, g.out/0} merge;
        // a.out/v ≡ g.in0/v (fanout-free stem), b.out/v ≡ g.in1/v.
        // Classes: {a0,in0-0,b0,in1-0,out0}? Careful: a.out/0 ≡ g.in0/0 ≡ g.out/0
        // and b.out/0 ≡ g.in1/0 ≡ g.out/0 — all s-a-0 merge into one class.
        // s-a-1: {a1,in0-1}, {b1,in1-1}, {out1} → 3 classes.
        assert_eq!(col.class_count(), 4);
        assert!((col.ratio() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn inverter_chain_collapses_to_two_classes() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        n.mark_output(g2, "y").unwrap();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        // Everything chains through: a/v ≡ g1.in/v ≡ g1.out/!v ≡ g2.in/!v ≡ g2.out/v
        assert_eq!(col.class_count(), 2);
    }

    #[test]
    fn xor_gates_do_not_collapse_inputs() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        n.mark_output(g, "y").unwrap();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        // Only stem equivalences apply: a↔in0, b↔in1 → classes:
        // in0/0, in0/1, in1/0, in1/1, out/0, out/1 = 6.
        assert_eq!(col.class_count(), 6);
    }

    #[test]
    fn c17_collapse_is_roughly_half() {
        let n = c17();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        assert!(col.class_count() < faults.len());
        // Known value for c17 under these rules.
        assert!(
            col.ratio() > 0.3 && col.ratio() < 0.7,
            "ratio {} out of expected band",
            col.ratio()
        );
    }

    #[test]
    fn representative_is_stable_and_in_class() {
        let n = c17();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        for i in 0..faults.len() {
            let rep = col.representative(i);
            assert!(faults.contains(&rep));
        }
        let reps = col.representatives();
        assert_eq!(reps.len(), col.class_count());
    }

    #[test]
    fn expand_detection_round_trips() {
        let n = c17();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        let detected = vec![true; col.class_count()];
        let full = col.expand_detection(&detected);
        assert_eq!(full.len(), faults.len());
        assert!(full.iter().all(|&d| d));
    }

    #[test]
    fn dominance_reduces_further() {
        let n = c17();
        let faults = universe(&n);
        let eq = collapse(&n, &faults).class_count();
        let dom = dominance_collapse(&n, &faults).len();
        assert!(dom < eq, "dominance must drop some targets ({dom} vs {eq})");
    }

    #[test]
    fn po_stems_are_not_collapsed_into_readers() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::Buf, &[a]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        n.mark_output(g1, "tap").unwrap(); // g1 is both a stem and a PO
        n.mark_output(g2, "y").unwrap();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        // g1.out faults must stay distinct from g2.in faults.
        let i_out = faults
            .iter()
            .position(|f| f.site == PortRef::output(g1) && !f.stuck)
            .unwrap();
        let i_in = faults
            .iter()
            .position(|f| f.site == PortRef::input(g2, 0) && !f.stuck)
            .unwrap();
        assert_ne!(col.representative(i_out), col.representative(i_in));
    }
}
