//! Structural fault collapsing: equivalence and dominance.
//!
//! §I-B of the paper: "Some reduction in the number of single stuck-at
//! faults can be achieved by fault equivalencing … the number of single
//! stuck-at faults needed to be assumed is about 3000" (from 6000 for a
//! 1000-gate network). These are the classic structural rules:
//!
//! * controlling-input equivalence — an AND input s-a-0 is equivalent to
//!   the AND output s-a-0 (NAND: output s-a-1; OR: output s-a-1;
//!   NOR: output s-a-0);
//! * inverter/buffer equivalence — the input fault maps through the gate;
//! * fanout-free stems — a driver's output fault is equivalent to the
//!   sole reader's input fault.

use std::collections::HashMap;

use dft_netlist::{GateKind, LevelizeError, Netlist, Pin, PortRef};
use dft_sim::PatternSet;

use crate::Fault;

/// The result of collapsing a fault universe.
#[derive(Clone, Debug)]
pub struct Collapse {
    faults: Vec<Fault>,
    /// For each fault index, the index of its class representative.
    rep_of: Vec<usize>,
    /// Indices of the representatives, in universe order.
    reps: Vec<usize>,
}

impl Collapse {
    /// The original universe this collapse was computed over.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The representative fault of `fault_index`'s equivalence class.
    ///
    /// # Panics
    ///
    /// Panics if `fault_index` is out of range.
    #[must_use]
    pub fn representative(&self, fault_index: usize) -> Fault {
        self.faults[self.rep_of[fault_index]]
    }

    /// One fault per equivalence class, in universe order.
    #[must_use]
    pub fn representatives(&self) -> Vec<Fault> {
        self.reps.iter().map(|&i| self.faults[i]).collect()
    }

    /// Number of equivalence classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.reps.len()
    }

    /// The collapse ratio `classes / universe` (the paper's 1000-gate
    /// example lands near 0.5).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.faults.is_empty() {
            1.0
        } else {
            self.reps.len() as f64 / self.faults.len() as f64
        }
    }

    /// Expands per-representative detection flags back over the whole
    /// universe: a fault is detected iff its representative is.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len()` differs from
    /// [`Collapse::class_count`].
    #[must_use]
    pub fn expand_detection(&self, detected: &[bool]) -> Vec<bool> {
        assert_eq!(detected.len(), self.reps.len());
        let class_index: HashMap<usize, usize> = self
            .reps
            .iter()
            .enumerate()
            .map(|(k, &rep)| (rep, k))
            .collect();
        self.rep_of
            .iter()
            .map(|&rep| detected[class_index[&rep]])
            .collect()
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller index as representative for determinism.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Collapses `faults` over `netlist` by structural equivalence.
///
/// Faults not present in the list are ignored (you may collapse a
/// sub-universe). Representatives are chosen deterministically (smallest
/// universe index per class).
#[must_use]
pub fn collapse(netlist: &Netlist, faults: &[Fault]) -> Collapse {
    let index: HashMap<Fault, usize> = faults.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let mut uf = UnionFind::new(faults.len());
    let merge = |uf: &mut UnionFind, a: Fault, b: Fault| {
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            uf.union(ia, ib);
        }
    };

    let fanout = netlist.fanout_map();
    for (id, gate) in netlist.iter() {
        // Rule 1: controlling-value equivalence through the gate.
        if let Some(c) = gate.kind().controlling_value() {
            let out_val = c != gate.kind().inverts();
            for pin in 0..gate.fanin() {
                merge(
                    &mut uf,
                    Fault {
                        site: PortRef::input(id, pin as u8),
                        stuck: c,
                    },
                    Fault {
                        site: PortRef::output(id),
                        stuck: out_val,
                    },
                );
            }
        }
        // Rule 2: single-input gates map both polarities through.
        match gate.kind() {
            GateKind::Buf => {
                for v in [false, true] {
                    merge(
                        &mut uf,
                        Fault {
                            site: PortRef::input(id, 0),
                            stuck: v,
                        },
                        Fault {
                            site: PortRef::output(id),
                            stuck: v,
                        },
                    );
                }
            }
            GateKind::Not => {
                for v in [false, true] {
                    merge(
                        &mut uf,
                        Fault {
                            site: PortRef::input(id, 0),
                            stuck: v,
                        },
                        Fault {
                            site: PortRef::output(id),
                            stuck: !v,
                        },
                    );
                }
            }
            _ => {}
        }
        // Rule 3: fanout-free stem — driver output fault ≡ sole reader's
        // input fault (unless the stem is also observed as a primary
        // output, where the faults differ in observability).
        let is_po = netlist.primary_outputs().iter().any(|&(g, _)| g == id);
        if fanout[id.index()].len() == 1 && !is_po {
            let (reader, pin) = fanout[id.index()][0];
            for v in [false, true] {
                merge(
                    &mut uf,
                    Fault {
                        site: PortRef::output(id),
                        stuck: v,
                    },
                    Fault {
                        site: PortRef::input(reader, pin),
                        stuck: v,
                    },
                );
            }
        }
    }

    let rep_of: Vec<usize> = (0..faults.len()).map(|i| uf.find(i)).collect();
    let mut reps: Vec<usize> = rep_of.clone();
    reps.sort_unstable();
    reps.dedup();
    Collapse {
        faults: faults.to_vec(),
        rep_of,
        reps,
    }
}

/// The result of dominance reduction on top of equivalence collapsing,
/// mirroring [`Collapse`]: the reduced target list plus a per-fault
/// mapping back onto it.
///
/// For an AND/NAND (resp. OR/NOR) gate, the output
/// s-a-noncontrolled-response fault dominates every input
/// s-a-noncontrolling fault — any test for the input fault also detects
/// it — so it is dropped from the target list. Unlike equivalence,
/// dominance is one-directional: the dominator can also be detected by
/// patterns that miss every dominated *witness* (e.g. two controlling
/// inputs at once), so per-fault detection equality is not preserved.
#[derive(Clone, Debug)]
pub struct DominanceCollapse {
    eq: Collapse,
    targets: Vec<Fault>,
    /// Universe index → target index, resolved through equivalence and
    /// then (for dropped dominators) recursively through a dominated
    /// witness; `None` when no witness exists in the universe.
    target_of: Vec<Option<usize>>,
}

impl DominanceCollapse {
    /// The original universe the reduction was computed over.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        self.eq.faults()
    }

    /// The reduced test-generation target list, in universe order.
    #[must_use]
    pub fn targets(&self) -> &[Fault] {
        &self.targets
    }

    /// Number of targets after equivalence + dominance.
    #[must_use]
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// `targets / universe` (compare [`Collapse::ratio`]).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.eq.faults().is_empty() {
            1.0
        } else {
            self.targets.len() as f64 / self.eq.faults().len() as f64
        }
    }

    /// The target standing in for `fault_index`: its equivalence
    /// representative if that survived, otherwise a dominated witness
    /// whose detection implies the dominator's (resolved recursively).
    /// `None` when the dropped dominator has no witness in the universe —
    /// such a fault is *not* accounted for by this reduction.
    ///
    /// # Panics
    ///
    /// Panics if `fault_index` is out of range.
    #[must_use]
    pub fn target_of(&self, fault_index: usize) -> Option<Fault> {
        self.target_of[fault_index].map(|t| self.targets[t])
    }

    /// Expands per-target detection flags over the whole universe.
    ///
    /// Crediting through a witness is sound — dominance guarantees any
    /// pattern detecting the witness also detects its dominator — so
    /// every fault this marks `true` really is detected. The `false`
    /// verdicts on dominator classes, however, are *approximate*: a
    /// dominator detected only by patterns that miss every witness (two
    /// controlling inputs at once), or one whose witnesses are all
    /// redundant (`None` mapping), is reported `false` here even when
    /// the pattern set detects it. Use
    /// [`DominanceCollapse::expand_detection_exact`] when the exact
    /// universe figure matters — it rechecks exactly those uncertain
    /// verdicts with targeted single-fault simulations.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len()` differs from
    /// [`DominanceCollapse::target_count`].
    #[must_use]
    pub fn expand_detection(&self, detected: &[bool]) -> Vec<bool> {
        assert_eq!(detected.len(), self.targets.len());
        self.target_of
            .iter()
            .map(|t| t.is_some_and(|k| detected[k]))
            .collect()
    }

    /// [`DominanceCollapse::expand_detection`] with every uncertain
    /// verdict resolved by a targeted recheck: the *exact* per-fault
    /// detection of `patterns` over the whole universe.
    ///
    /// `detected` must be the per-target detection of
    /// [`DominanceCollapse::targets`] under the same `patterns`
    /// (`first_detected[k].is_some()` from any engine — the engines are
    /// cross-checked to agree).
    ///
    /// Three kinds of verdicts come out of the witness expansion:
    ///
    /// * the fault's equivalence representative survived as a target —
    ///   exact either way (equivalent faults are detected by exactly the
    ///   same patterns);
    /// * witness-credited `true` — sound by the dominance theorem, so
    ///   exact;
    /// * a dominator class reported `false` (witness undetected, or no
    ///   witness in the universe) — *uncertain*: the dominator can be
    ///   detected by patterns that miss every witness.
    ///
    /// Only the third kind is rechecked, one fault simulation per
    /// uncertain equivalence class, so the cost is proportional to the
    /// coverage gap rather than the universe size.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len()` differs from
    /// [`DominanceCollapse::target_count`] or the pattern width
    /// disagrees with the netlist.
    pub fn expand_detection_exact(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        detected: &[bool],
    ) -> Result<Vec<bool>, LevelizeError> {
        let mut out = self.expand_detection(detected);
        let target_set: std::collections::HashSet<Fault> = self.targets.iter().copied().collect();
        // One recheck per uncertain equivalence class, keyed by its
        // representative.
        let mut recheck_of: HashMap<Fault, usize> = HashMap::new();
        let mut recheck: Vec<Fault> = Vec::new();
        let mut members: Vec<(usize, usize)> = Vec::new(); // (universe idx, recheck idx)
        for (i, credited) in out.iter().enumerate() {
            if *credited {
                continue; // sound by dominance (or exact via the target)
            }
            let rep = self.eq.representative(i);
            if target_set.contains(&rep) {
                continue; // exact: the class was simulated directly
            }
            let k = *recheck_of.entry(rep).or_insert_with(|| {
                recheck.push(rep);
                recheck.len() - 1
            });
            members.push((i, k));
        }
        if !recheck.is_empty() {
            let r = crate::ppsfp(netlist, patterns, &recheck)?;
            for (i, k) in members {
                out[i] = r.first_detected[k].is_some();
            }
        }
        Ok(out)
    }
}

/// Dominance-based reduction on top of equivalence; see
/// [`DominanceCollapse`].
#[must_use]
pub fn dominance_collapse(netlist: &Netlist, faults: &[Fault]) -> DominanceCollapse {
    let eq = collapse(netlist, faults);
    let dropped = |f: Fault| -> bool {
        // Drop gate-output faults that dominate their input faults: for
        // an AND gate, output s-a-1 is detected whenever any input
        // s-a-1 is.
        let gate = netlist.gate(f.site.gate);
        if f.site.pin != Pin::Output {
            return false;
        }
        let Some(c) = gate.kind().controlling_value() else {
            return false;
        };
        let dominated_by_inputs = f.stuck == (c == gate.kind().inverts());
        let is_po = netlist
            .primary_outputs()
            .iter()
            .any(|&(g, _)| g == f.site.gate);
        dominated_by_inputs && !is_po && gate.fanin() > 0
    };

    let mut targets: Vec<Fault> = Vec::new();
    let mut target_index: HashMap<Fault, usize> = HashMap::new();
    for f in eq.representatives() {
        if !dropped(f) {
            target_index.insert(f, targets.len());
            targets.push(f);
        }
    }

    // Witness resolution for dropped dominators: an input-pin fault at
    // the non-controlling stuck value whose detection implies the
    // dominator's. The witness's own representative may itself be a
    // dropped dominator of an earlier gate (fanout-free stems merge a
    // driver's output fault into the reader's input fault), so resolve
    // recursively — strictly toward the primary inputs, hence finite.
    let universe_index: HashMap<Fault, usize> =
        faults.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let mut memo: HashMap<Fault, Option<usize>> = HashMap::new();
    fn resolve(
        rep: Fault,
        netlist: &Netlist,
        eq: &Collapse,
        universe_index: &HashMap<Fault, usize>,
        target_index: &HashMap<Fault, usize>,
        memo: &mut HashMap<Fault, Option<usize>>,
    ) -> Option<usize> {
        if let Some(&t) = target_index.get(&rep) {
            return Some(t);
        }
        if let Some(&t) = memo.get(&rep) {
            return t;
        }
        memo.insert(rep, None); // cycle guard; overwritten on success
        let gate = netlist.gate(rep.site.gate);
        let c = gate
            .kind()
            .controlling_value()
            .expect("only controlled-gate output faults are dropped");
        let mut found = None;
        for pin in 0..gate.fanin() {
            let witness = Fault {
                site: PortRef::input(rep.site.gate, pin as u8),
                stuck: !c,
            };
            let Some(&wi) = universe_index.get(&witness) else {
                continue;
            };
            let wrep = eq.representative(wi);
            if let Some(t) = resolve(wrep, netlist, eq, universe_index, target_index, memo) {
                found = Some(t);
                break;
            }
        }
        memo.insert(rep, found);
        found
    }

    let target_of: Vec<Option<usize>> = (0..faults.len())
        .map(|i| {
            resolve(
                eq.representative(i),
                netlist,
                &eq,
                &universe_index,
                &target_index,
                &mut memo,
            )
        })
        .collect();

    DominanceCollapse {
        eq,
        targets,
        target_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use dft_netlist::circuits::c17;
    use dft_netlist::{GateKind, Netlist};

    #[test]
    fn and_gate_classes() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(g, "y").unwrap();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        // Universe: a.out×2, b.out×2, g.in0×2, g.in1×2, g.out×2 = 10.
        // Equivalences: {g.in0/0, g.in1/0, g.out/0} merge;
        // a.out/v ≡ g.in0/v (fanout-free stem), b.out/v ≡ g.in1/v.
        // Classes: {a0,in0-0,b0,in1-0,out0}? Careful: a.out/0 ≡ g.in0/0 ≡ g.out/0
        // and b.out/0 ≡ g.in1/0 ≡ g.out/0 — all s-a-0 merge into one class.
        // s-a-1: {a1,in0-1}, {b1,in1-1}, {out1} → 3 classes.
        assert_eq!(col.class_count(), 4);
        assert!((col.ratio() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn inverter_chain_collapses_to_two_classes() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        n.mark_output(g2, "y").unwrap();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        // Everything chains through: a/v ≡ g1.in/v ≡ g1.out/!v ≡ g2.in/!v ≡ g2.out/v
        assert_eq!(col.class_count(), 2);
    }

    #[test]
    fn xor_gates_do_not_collapse_inputs() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        n.mark_output(g, "y").unwrap();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        // Only stem equivalences apply: a↔in0, b↔in1 → classes:
        // in0/0, in0/1, in1/0, in1/1, out/0, out/1 = 6.
        assert_eq!(col.class_count(), 6);
    }

    #[test]
    fn c17_collapse_is_roughly_half() {
        let n = c17();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        assert!(col.class_count() < faults.len());
        // Known value for c17 under these rules.
        assert!(
            col.ratio() > 0.3 && col.ratio() < 0.7,
            "ratio {} out of expected band",
            col.ratio()
        );
    }

    #[test]
    fn representative_is_stable_and_in_class() {
        let n = c17();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        for i in 0..faults.len() {
            let rep = col.representative(i);
            assert!(faults.contains(&rep));
        }
        let reps = col.representatives();
        assert_eq!(reps.len(), col.class_count());
    }

    #[test]
    fn expand_detection_round_trips() {
        let n = c17();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        let detected = vec![true; col.class_count()];
        let full = col.expand_detection(&detected);
        assert_eq!(full.len(), faults.len());
        assert!(full.iter().all(|&d| d));
    }

    #[test]
    fn dominance_reduces_further() {
        let n = c17();
        let faults = universe(&n);
        let eq = collapse(&n, &faults).class_count();
        let dom = dominance_collapse(&n, &faults).target_count();
        assert!(dom < eq, "dominance must drop some targets ({dom} vs {eq})");
    }

    #[test]
    fn dominance_maps_every_fault_on_c17() {
        // c17 has no redundancy: every fault resolves to some target, and
        // a dropped dominator's target is a genuine universe fault.
        let n = c17();
        let faults = universe(&n);
        let dom = dominance_collapse(&n, &faults);
        for i in 0..faults.len() {
            let t = dom.target_of(i).expect("every c17 fault has a target");
            assert!(dom.targets().contains(&t));
        }
        let all = dom.expand_detection(&vec![true; dom.target_count()]);
        assert!(
            all.iter().all(|&d| d),
            "all targets detected ⇒ all credited"
        );
    }

    #[test]
    fn dominance_expansion_never_overestimates() {
        // expand_detection contract, both directions. The cheap witness
        // expansion must never credit an undetected fault (soundness),
        // and expand_detection_exact must agree with full-universe
        // simulation bit for bit — including on truncated pattern sets
        // where a dominator is detected by patterns that miss every
        // witness, and on a redundant circuit where witnesses can be
        // missing entirely (`None` mapping).
        use dft_netlist::circuits::redundant_fixture;
        let mut cases: Vec<(Netlist, dft_sim::PatternSet)> = Vec::new();
        let rows: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        // Exhaustive c17 plus short prefixes: small sets are where the
        // witness expansion underestimates.
        for take in [32usize, 11, 5, 2, 1] {
            cases.push((c17(), dft_sim::PatternSet::from_rows(5, &rows[..take])));
        }
        let fixture = redundant_fixture();
        let width = fixture.primary_inputs().len();
        let fix_rows: Vec<Vec<bool>> = (0..1u32 << width)
            .step_by(3)
            .map(|v| (0..width).map(|i| v >> i & 1 == 1).collect())
            .collect();
        cases.push((fixture, dft_sim::PatternSet::from_rows(width, &fix_rows)));
        let mut underestimates = 0usize;
        for (n, patterns) in &cases {
            let faults = universe(n);
            let dom = dominance_collapse(n, &faults);
            let on_targets = crate::simulate(n, patterns, dom.targets()).unwrap();
            let detected: Vec<bool> = on_targets
                .first_detected
                .iter()
                .map(Option::is_some)
                .collect();
            let truth = crate::simulate(n, patterns, &faults).unwrap();
            let expanded = dom.expand_detection(&detected);
            let exact = dom.expand_detection_exact(n, patterns, &detected).unwrap();
            for (i, &credited) in expanded.iter().enumerate() {
                let really = truth.first_detected[i].is_some();
                assert!(
                    !credited || really,
                    "fault {i} credited but not actually detected on {}",
                    n.name()
                );
                assert_eq!(
                    exact[i],
                    really,
                    "exact expansion wrong for fault {i} on {}",
                    n.name()
                );
                if really && !credited {
                    underestimates += 1;
                }
            }
        }
        assert!(
            underestimates > 0,
            "cases must exercise the witness-expansion gap the exact path closes"
        );
    }

    #[test]
    fn and_output_sa1_is_dropped_but_credited_through_its_inputs() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let inv = n.add_gate(GateKind::Not, &[g]).unwrap();
        n.mark_output(inv, "y").unwrap();
        let faults = universe(&n);
        let dom = dominance_collapse(&n, &faults);
        let out_sa1 = faults
            .iter()
            .position(|f| f.site == PortRef::output(g) && f.stuck)
            .unwrap();
        let target = dom.target_of(out_sa1).expect("witness exists");
        assert_ne!(
            target.site,
            PortRef::output(g),
            "the dominator itself must not be a target"
        );
        assert!(target.stuck, "witness is an input s-a-1 class member");
    }

    #[test]
    fn expand_detection_empty_universe() {
        let n = c17();
        let col = collapse(&n, &[]);
        assert_eq!(col.class_count(), 0);
        assert!(col.expand_detection(&[]).is_empty());
        let dom = dominance_collapse(&n, &[]);
        assert_eq!(dom.target_count(), 0);
        assert!(dom.expand_detection(&[]).is_empty());
        assert!((dom.ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expand_detection_none_detected() {
        let n = c17();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        let full = col.expand_detection(&vec![false; col.class_count()]);
        assert_eq!(full.len(), faults.len());
        assert!(full.iter().all(|&d| !d));
    }

    #[test]
    fn expand_detection_over_a_sub_universe() {
        // Collapsing a sub-universe: merges with absent faults are
        // ignored, and expansion stays aligned with the sublist.
        let n = c17();
        let all = universe(&n);
        let sub: Vec<Fault> = all.iter().step_by(3).copied().collect();
        let col = collapse(&n, &sub);
        let mut detected = vec![false; col.class_count()];
        detected[0] = true;
        let full = col.expand_detection(&detected);
        assert_eq!(full.len(), sub.len());
        for i in 0..sub.len() {
            let rep = col.representative(i);
            let rep_idx = sub.iter().position(|&f| f == rep).unwrap();
            assert_eq!(full[i], full[rep_idx], "flag must follow the class rep");
        }
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn expand_detection_rejects_misaligned_flags() {
        let n = c17();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        let _ = col.expand_detection(&vec![true; col.class_count() + 1]);
    }

    #[test]
    fn po_stems_are_not_collapsed_into_readers() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::Buf, &[a]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        n.mark_output(g1, "tap").unwrap(); // g1 is both a stem and a PO
        n.mark_output(g2, "y").unwrap();
        let faults = universe(&n);
        let col = collapse(&n, &faults);
        // g1.out faults must stay distinct from g2.in faults.
        let i_out = faults
            .iter()
            .position(|f| f.site == PortRef::output(g1) && !f.stuck)
            .unwrap();
        let i_in = faults
            .iter()
            .position(|f| f.site == PortRef::input(g2, 0) && !f.stuck)
            .unwrap();
        assert_ne!(col.representative(i_out), col.representative(i_in));
    }
}
