//! Deductive fault simulation (fault-list propagation).
//!
//! One good-machine pass per pattern deduces, for every net, the set of
//! faults that would complement it — Armstrong's method, the paper's
//! reference \[100\]. Cost per pattern is one traversal with set algebra
//! instead of thousands of re-simulations; the trade is memory for the
//! lists.

use std::collections::BTreeSet;

use dft_netlist::{GateKind, LevelizeError, Netlist, Pin};
use dft_obs::{Collector, Obs};
use dft_sim::PatternSet;

use crate::{DetectionResult, Fault};

/// Fault-simulates by deduction.
///
/// Produces the same [`DetectionResult`] as [`crate::simulate`]; the
/// engines are cross-checked in tests. Combinational circuits only
/// (storage is held at 0 and capture effects are ignored), so prefer it
/// for scan-extracted test views.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn deductive(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
) -> Result<DetectionResult, LevelizeError> {
    deductive_observed(netlist, patterns, faults, None)
}

/// [`deductive`] feeding telemetry to an optional collector.
///
/// Opens a `fault_sim.deductive` span with counters `faults`,
/// `patterns`, `gate_evals` (levelized gate visits across all patterns),
/// `list_events` (fault-list entries written to nets — the method's set
/// algebra effort), `detected`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn deductive_observed(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    obs: Option<&mut dyn Collector>,
) -> Result<DetectionResult, LevelizeError> {
    let mut obs = Obs::new(obs);
    obs.enter("fault_sim.deductive");
    let mut gate_evals = 0u64;
    let mut list_events = 0u64;
    let lv = netlist.levelize()?;
    let storage = netlist.storage_elements();
    let outputs: Vec<_> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();

    // Index faults by site for activation lookups.
    let mut out_faults: Vec<Vec<usize>> = vec![Vec::new(); netlist.gate_count()];
    let mut in_faults: Vec<Vec<(u8, usize)>> = vec![Vec::new(); netlist.gate_count()];
    for (fi, f) in faults.iter().enumerate() {
        match f.site.pin {
            Pin::Output => out_faults[f.site.gate.index()].push(fi),
            Pin::Input(p) => in_faults[f.site.gate.index()].push((p, fi)),
        }
    }

    let mut first_detected: Vec<Option<usize>> = vec![None; faults.len()];

    for p in 0..patterns.len() {
        let row = patterns.get(p);
        // Good values.
        let mut val = vec![false; netlist.gate_count()];
        for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
            val[pi.index()] = row[i];
        }
        for &s in &storage {
            val[s.index()] = false;
        }
        for (id, gate) in netlist.iter() {
            if gate.kind() == GateKind::Const1 {
                val[id.index()] = true;
            }
        }
        // Fault lists per net.
        let mut list: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); netlist.gate_count()];

        // Source-output faults activate where the good value differs.
        for (gi, flist) in out_faults.iter().enumerate() {
            let id = dft_netlist::GateId::from_index(gi);
            if netlist.gate(id).kind().is_source() {
                for &fi in flist {
                    if faults[fi].stuck != val[gi] {
                        list[gi].insert(fi);
                    }
                }
            }
        }

        for &id in lv.order() {
            let gate = netlist.gate(id);
            if gate.kind().is_source() {
                continue;
            }
            let gi = id.index();
            let in_vals: Vec<bool> = gate.inputs().iter().map(|&s| val[s.index()]).collect();
            let good = gate.kind().eval_bool(&in_vals);
            val[gi] = good;

            // Effective per-pin fault lists: the net list, plus/minus this
            // gate's own input-pin faults (local to the pin).
            // A pin's value complements under fault f iff
            //   (f flips the driving net) XOR (f is a stuck fault on this pin…)
            // but a stuck pin ignores the net entirely: if the pin is stuck
            // at v, the pin differs from good iff good_pin != v, regardless
            // of the net's list. Handle pin faults by post-adjustment.
            let mut pin_lists: Vec<BTreeSet<usize>> = gate
                .inputs()
                .iter()
                .map(|&s| list[s.index()].clone())
                .collect();
            for &(pin, fi) in &in_faults[gi] {
                let pv = in_vals[pin as usize];
                let stuck = faults[fi].stuck;
                // Under its own single-fault machine, the pin is fixed.
                if stuck != pv {
                    pin_lists[pin as usize].insert(fi);
                } else {
                    pin_lists[pin as usize].remove(&fi);
                }
            }

            // Propagate: which faults complement the output?
            let out_list: BTreeSet<usize> = match gate.kind() {
                GateKind::Buf => pin_lists.swap_remove(0),
                GateKind::Not => pin_lists.swap_remove(0),
                GateKind::Xor | GateKind::Xnor => {
                    // A fault flips the output iff it flips an odd number
                    // of input pins.
                    let mut counts: std::collections::BTreeMap<usize, usize> =
                        std::collections::BTreeMap::new();
                    for pl in &pin_lists {
                        for &fi in pl {
                            *counts.entry(fi).or_insert(0) += 1;
                        }
                    }
                    counts
                        .into_iter()
                        .filter_map(|(fi, c)| (c % 2 == 1).then_some(fi))
                        .collect()
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let c = gate
                        .kind()
                        .controlling_value()
                        .expect("AND/OR family has a controlling value");
                    let controlling: Vec<usize> =
                        (0..pin_lists.len()).filter(|&i| in_vals[i] == c).collect();
                    if controlling.is_empty() {
                        // Output flips iff any input flips (to controlling).
                        let mut u = BTreeSet::new();
                        for pl in &pin_lists {
                            u.extend(pl.iter().copied());
                        }
                        u
                    } else {
                        // Output flips iff every controlling input flips and
                        // no non-controlling input flips.
                        let mut inter: BTreeSet<usize> = pin_lists[controlling[0]].clone();
                        for &ci in &controlling[1..] {
                            inter = inter.intersection(&pin_lists[ci]).copied().collect();
                        }
                        for (i, pl) in pin_lists.iter().enumerate() {
                            if in_vals[i] != c {
                                for fi in pl {
                                    inter.remove(fi);
                                }
                            }
                        }
                        inter
                    }
                }
                GateKind::Const0 | GateKind::Const1 => BTreeSet::new(),
                GateKind::Input | GateKind::Dff => unreachable!("sources skipped"),
            };

            let mut out_list = out_list;
            // This gate's own output stuck faults override propagation.
            for &fi in &out_faults[gi] {
                if faults[fi].stuck != good {
                    out_list.insert(fi);
                } else {
                    out_list.remove(&fi);
                }
            }
            gate_evals += 1;
            list_events += out_list.len() as u64;
            list[gi] = out_list;
        }

        for &g in &outputs {
            for &fi in &list[g.index()] {
                if first_detected[fi].is_none() {
                    first_detected[fi] = Some(p);
                }
            }
        }
    }

    let result = DetectionResult {
        first_detected,
        pattern_count: patterns.len(),
    };
    obs.count("faults", faults.len() as u64);
    obs.count("patterns", patterns.len() as u64);
    obs.count("gate_evals", gate_evals);
    obs.count("list_events", list_events);
    obs.count("detected", result.detected_count() as u64);
    obs.exit();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, universe};
    use dft_netlist::circuits::{c17, full_adder, majority, parity_tree, random_combinational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exhaustive_patterns(n: usize) -> PatternSet {
        let rows: Vec<Vec<bool>> = (0..1usize << n)
            .map(|v| (0..n).map(|i| v >> i & 1 == 1).collect())
            .collect();
        PatternSet::from_rows(n, &rows)
    }

    #[test]
    fn agrees_with_resimulation_on_textbook_circuits() {
        for n in [c17(), full_adder(), majority(), parity_tree(4)] {
            let faults = universe(&n);
            let p = exhaustive_patterns(n.primary_inputs().len());
            let a = simulate(&n, &p, &faults).unwrap();
            let b = deductive(&n, &p, &faults).unwrap();
            assert_eq!(a, b, "deductive disagrees on {}", n.name());
        }
    }

    #[test]
    fn agrees_on_reconvergent_random_logic() {
        // Reconvergent fan-out is where naive deductive rules go wrong:
        // a single fault can flip several inputs of one gate. Cross-check
        // on random circuits with heavy reconvergence.
        for seed in 0..4 {
            let n = random_combinational(8, 60, seed);
            let faults = universe(&n);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let p = PatternSet::random(8, 48, &mut rng);
            let a = simulate(&n, &p, &faults).unwrap();
            let b = deductive(&n, &p, &faults).unwrap();
            assert_eq!(a, b, "deductive disagrees on seed {seed}");
        }
    }

    #[test]
    fn one_pass_counts_every_fault_per_pattern() {
        // Unlike the dropping engine, deduction reports first detection
        // for all faults even when they share patterns.
        let n = c17();
        let faults = universe(&n);
        let p = exhaustive_patterns(5);
        let r = deductive(&n, &p, &faults).unwrap();
        assert_eq!(r.coverage(), 1.0);
    }
}
