//! PPSFP: parallel-pattern single-fault propagation.
//!
//! The high-throughput fault-grading engine. Where the classic parallel
//! method ([`crate::parallel_fault`]) packs 63 faulty *machines* per word
//! under one pattern, PPSFP packs **64 patterns per word under one
//! fault** — the dual layout — and then refuses to do almost all of the
//! work a naive engine would:
//!
//! * **Compiled kernel.** Good-machine responses come from the flat
//!   SoA/CSR [`Kernel`](dft_sim::Kernel) shared with
//!   [`CompiledSim`](dft_sim::CompiledSim), evaluated once per 64-pattern
//!   block and cached for every gate (not just the outputs).
//! * **Cone-restricted event propagation.** A fault can only disturb its
//!   structural fanout cone. Per fault site the engine walks the cone's
//!   ops in levelized order, evaluating a gate only when an operand
//!   actually differs from the cached baseline — inert faults cost one
//!   word compare per block.
//! * **Fault dropping.** A fault detected in any lane leaves the active
//!   list; remaining blocks are never simulated for it.
//! * **Multi-threaded fault partitioning.** The collapsed fault list is
//!   grouped by fault site (groups share one cone computation) and the
//!   groups are pulled from a shared atomic work queue by
//!   `std::thread::scope` workers, each with private scratch state;
//!   per-fault results are merged at the end. Results are deterministic
//!   regardless of scheduling because faults are independent.
//!
//! Detection semantics are identical to [`crate::simulate`] (first
//! detecting pattern per fault; cross-checked by tests and proptests).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use dft_netlist::{GateId, LevelizeError, Netlist, Pin};
use dft_obs::{Collector, Obs};
use dft_sim::word::{fold_word, stuck_word};
use dft_sim::{Kernel, PatternSet};

use crate::{DetectionResult, Fault};

/// Tuning knobs for a PPSFP run.
///
/// `#[non_exhaustive]`: construct via [`Default`] and the `with_*`
/// builders so new knobs can be added without breaking downstream
/// crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct PpsfpOptions {
    /// Worker threads. `0` (the default) uses the machine's available
    /// parallelism, capped by the number of fault-site groups.
    pub threads: usize,
    /// Stop simulating a fault once one pattern detects it (default
    /// `true`). Turning it off does not change the result — first
    /// detection is recorded either way — only the work performed, which
    /// makes it the honest baseline for work-avoidance measurements.
    pub fault_dropping: bool,
}

impl Default for PpsfpOptions {
    fn default() -> Self {
        PpsfpOptions {
            threads: 0,
            fault_dropping: true,
        }
    }
}

impl PpsfpOptions {
    /// Defaults (same as [`Default`], spelled for builder chains).
    #[must_use]
    pub fn new() -> Self {
        PpsfpOptions::default()
    }

    /// Sets [`PpsfpOptions::threads`].
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets [`PpsfpOptions::fault_dropping`].
    #[must_use]
    pub fn with_fault_dropping(mut self, fault_dropping: bool) -> Self {
        self.fault_dropping = fault_dropping;
        self
    }
}

/// Worker-local effort counters, merged across threads after the
/// partitioned run (plain integer bumps in the hot loop; never shared
/// while the workers are live, so there is no synchronization cost).
#[derive(Clone, Copy, Debug, Default)]
struct WorkCounters {
    /// Fanout-cone schedules computed (one per fault-site group load).
    cones_loaded: u64,
    /// Fault × block injection attempts (`propagate` calls).
    block_scans: u64,
    /// Injection attempts that actually disturbed the cone.
    excited_blocks: u64,
    /// `fold_word` evaluations of disturbed cone gates (the hot loop's
    /// unit of work).
    words_folded: u64,
}

impl WorkCounters {
    fn merge(&mut self, other: WorkCounters) {
        self.cones_loaded += other.cones_loaded;
        self.block_scans += other.block_scans;
        self.excited_blocks += other.excited_blocks;
        self.words_folded += other.words_folded;
    }
}

/// A PPSFP engine compiled for one netlist, reusable across pattern
/// batches (the random-ATPG grading loop calls [`Ppsfp::run`] once per
/// 64-pattern chunk without recompiling).
#[derive(Debug)]
pub struct Ppsfp<'n> {
    netlist: &'n Netlist,
    kernel: Kernel,
    /// Deduped combinational fanout adjacency: `fanout[g]` lists the
    /// distinct non-storage readers of gate `g`.
    fanout: Vec<Vec<u32>>,
    /// Gate index → primary-output position, `u16::MAX` if not a PO.
    output_of: Vec<u16>,
    options: PpsfpOptions,
}

/// Cached good-machine state for one pattern set.
struct Baseline {
    /// `blocks[b][slot]`: packed good value of every gate in block `b`.
    blocks: Vec<Vec<u64>>,
    /// Valid-lane mask per block (low lanes of the final block).
    lane_masks: Vec<u64>,
}

impl<'n> Ppsfp<'n> {
    /// Compiles the engine for `netlist` with default options.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist) -> Result<Self, LevelizeError> {
        Ppsfp::with_options(netlist, PpsfpOptions::default())
    }

    /// Compiles the engine for `netlist` with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn with_options(
        netlist: &'n Netlist,
        options: PpsfpOptions,
    ) -> Result<Self, LevelizeError> {
        let kernel = Kernel::new(netlist)?;
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); netlist.gate_count()];
        for (src, readers) in netlist.fanout_map().into_iter().enumerate() {
            let list = &mut fanout[src];
            for (reader, _pin) in readers {
                // A storage reader captures into next state only; within
                // the combinational frame its output cannot change.
                if netlist.gate(reader).kind().is_storage() {
                    continue;
                }
                let r = reader.index() as u32;
                if !list.contains(&r) {
                    list.push(r);
                }
            }
        }
        let mut output_of = vec![u16::MAX; netlist.gate_count()];
        assert!(
            netlist.primary_outputs().len() < usize::from(u16::MAX),
            "more than 65534 primary outputs"
        );
        for (oi, &(g, _)) in netlist.primary_outputs().iter().enumerate() {
            output_of[g.index()] = oi as u16;
        }
        Ok(Ppsfp {
            netlist,
            kernel,
            fanout,
            output_of,
            options,
        })
    }

    /// The compiled netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The options this engine was built with.
    #[must_use]
    pub fn options(&self) -> PpsfpOptions {
        self.options
    }

    /// Fault-simulates `faults` against `patterns`, producing the same
    /// [`DetectionResult`] as [`crate::simulate`].
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run(&self, patterns: &PatternSet, faults: &[Fault]) -> DetectionResult {
        self.run_with(patterns, faults, None)
    }

    /// [`Ppsfp::run`] feeding telemetry to an optional collector.
    ///
    /// Opens a `fault_sim.ppsfp` span with counters `faults`,
    /// `patterns`, `good_evals` (baseline kernel blocks), `cones_loaded`,
    /// `block_scans`, `excited_blocks`, `words_folded` (disturbed-gate
    /// evaluations — the engine's unit of hot-loop work), `detected`,
    /// `dropped`, plus a `coverage` gauge. Workers count into private
    /// integers merged after the join, so the hot loop never crosses a
    /// `dyn` boundary and `None` costs nothing measurable.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run_with(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> DetectionResult {
        let mut obs = Obs::new(obs);
        obs.enter("fault_sim.ppsfp");
        let baseline = self.baseline(patterns);
        let dropping = self.options.fault_dropping;
        let (first_detected, work) = self.run_partitioned(faults, |worker, fault| {
            worker.detect(fault, &baseline, dropping)
        });
        let result = DetectionResult {
            first_detected,
            pattern_count: patterns.len(),
        };
        let detected = result.detected_count() as u64;
        self.flush(&mut obs, faults.len(), patterns, &work);
        obs.count("detected", detected);
        obs.count("dropped", if dropping { detected } else { 0 });
        obs.gauge("coverage", result.coverage());
        obs.exit();
        result
    }

    /// Full-syndrome fault simulation: for every fault, the complete set
    /// of `(pattern, output)` observations it corrupts (no dropping) —
    /// the payload a [`crate::FaultDictionary`] needs.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run_syndromes(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
    ) -> Vec<BTreeSet<(u32, u16)>> {
        self.run_syndromes_with(patterns, faults, None)
    }

    /// [`Ppsfp::run_syndromes`] feeding telemetry to an optional
    /// collector (same `fault_sim.ppsfp` span and counters as
    /// [`Ppsfp::run_with`], plus `syndrome_bits` for the total
    /// observations collected; no `detected`/`dropped` since syndromes
    /// never drop).
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run_syndromes_with(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Vec<BTreeSet<(u32, u16)>> {
        let mut obs = Obs::new(obs);
        obs.enter("fault_sim.ppsfp");
        let baseline = self.baseline(patterns);
        let (syndromes, work) =
            self.run_partitioned(faults, |worker, fault| worker.syndromes(fault, &baseline));
        self.flush(&mut obs, faults.len(), patterns, &work);
        obs.count(
            "syndrome_bits",
            syndromes.iter().map(|s| s.len() as u64).sum(),
        );
        obs.exit();
        syndromes
    }

    /// Flushes the merged worker counters into a collector.
    fn flush(
        &self,
        obs: &mut Obs<'_>,
        fault_count: usize,
        patterns: &PatternSet,
        w: &WorkCounters,
    ) {
        obs.count("faults", fault_count as u64);
        obs.count("patterns", patterns.len() as u64);
        obs.count("good_evals", patterns.block_count() as u64);
        obs.count("cones_loaded", w.cones_loaded);
        obs.count("block_scans", w.block_scans);
        obs.count("excited_blocks", w.excited_blocks);
        obs.count("words_folded", w.words_folded);
    }

    fn baseline(&self, patterns: &PatternSet) -> Baseline {
        assert_eq!(
            patterns.input_count(),
            self.netlist.primary_inputs().len(),
            "pattern width must match primary input count"
        );
        let mut blocks = Vec::with_capacity(patterns.block_count());
        let mut lane_masks = Vec::with_capacity(patterns.block_count());
        for b in 0..patterns.block_count() {
            blocks.push(self.kernel.eval_block(patterns.block(b)));
            let lanes = patterns.lanes_in_block(b);
            lane_masks.push(if lanes == 64 {
                u64::MAX
            } else {
                (1u64 << lanes) - 1
            });
        }
        Baseline { blocks, lane_masks }
    }

    /// Runs `per_fault` over every fault, partitioned by fault-site group
    /// across the configured worker threads, returning results in fault
    /// order plus the merged per-worker effort counters.
    fn run_partitioned<R, F>(&self, faults: &[Fault], per_fault: F) -> (Vec<R>, WorkCounters)
    where
        R: Send,
        F: Fn(&mut Worker<'_>, Fault) -> R + Sync,
    {
        // Group faults sharing a site gate so each group computes its
        // fanout cone exactly once.
        let mut group_of: Vec<Option<usize>> = vec![None; self.netlist.gate_count()];
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        for (fi, f) in faults.iter().enumerate() {
            let root = f.site.gate.index();
            let gi = *group_of[root].get_or_insert_with(|| {
                groups.push((root as u32, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push(fi as u32);
        }

        let threads = self.resolve_threads(groups.len());
        let mut merged: Vec<Option<R>> = (0..faults.len()).map(|_| None).collect();
        let mut work = WorkCounters::default();
        if threads <= 1 {
            let mut worker = Worker::new(self);
            for (root, fids) in &groups {
                worker.load_group(*root);
                for &fi in fids {
                    merged[fi as usize] = Some(per_fault(&mut worker, faults[fi as usize]));
                }
            }
            work = worker.counters;
        } else {
            let cursor = AtomicUsize::new(0);
            let chunks = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(|| {
                            let mut worker = Worker::new(self);
                            let mut out: Vec<(u32, R)> = Vec::new();
                            loop {
                                let g = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some((root, fids)) = groups.get(g) else {
                                    break;
                                };
                                worker.load_group(*root);
                                for &fi in fids {
                                    out.push((fi, per_fault(&mut worker, faults[fi as usize])));
                                }
                            }
                            (out, worker.counters)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ppsfp worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (chunk, counters) in chunks {
                work.merge(counters);
                for (fi, r) in chunk {
                    merged[fi as usize] = Some(r);
                }
            }
        }
        (
            merged
                .into_iter()
                .map(|r| r.expect("every fault visited exactly once"))
                .collect(),
            work,
        )
    }

    fn resolve_threads(&self, group_count: usize) -> usize {
        let t = if self.options.threads > 0 {
            self.options.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        };
        t.clamp(1, group_count.max(1))
    }
}

/// Per-thread scratch state: the current fault group's cone schedule plus
/// epoch-stamped overlay arrays (no clearing between faults or blocks).
struct Worker<'a> {
    eng: &'a Ppsfp<'a>,
    /// Cone ops in ascending (= levelized) order, excluding the root's op.
    cone_ops: Vec<u32>,
    /// `(slot, output position)` of primary outputs inside the cone.
    cone_outputs: Vec<(u32, u16)>,
    root: u32,
    /// The root gate's own op, if it has one (None for sources/storage).
    root_op: Option<u32>,
    /// Cone-membership stamps for cone DFS reuse.
    visited: Vec<u32>,
    cone_epoch: u32,
    /// Faulty-value overlay: `faulty[slot]` is valid iff `stamp[slot] == epoch`.
    faulty: Vec<u64>,
    stamp: Vec<u64>,
    epoch: u64,
    dfs: Vec<u32>,
    /// Thread-private effort counters (merged by `run_partitioned`).
    counters: WorkCounters,
}

impl<'a> Worker<'a> {
    fn new(eng: &'a Ppsfp<'a>) -> Self {
        let n = eng.kernel.gate_count();
        Worker {
            eng,
            cone_ops: Vec::new(),
            cone_outputs: Vec::new(),
            root: 0,
            root_op: None,
            visited: vec![0; n],
            cone_epoch: 0,
            faulty: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
            dfs: Vec::new(),
            counters: WorkCounters::default(),
        }
    }

    /// Computes the fanout-cone schedule for a fault-site gate.
    fn load_group(&mut self, root: u32) {
        self.counters.cones_loaded += 1;
        self.root = root;
        self.root_op = self
            .eng
            .kernel
            .op_of_gate(GateId::from_index(root as usize))
            .map(|op| op as u32);
        self.cone_ops.clear();
        self.cone_outputs.clear();
        self.cone_epoch += 1;
        let e = self.cone_epoch;
        self.visited[root as usize] = e;
        self.dfs.clear();
        self.dfs.push(root);
        while let Some(g) = self.dfs.pop() {
            let gi = g as usize;
            if self.eng.output_of[gi] != u16::MAX {
                self.cone_outputs.push((g, self.eng.output_of[gi]));
            }
            if g != root {
                if let Some(op) = self.eng.kernel.op_of_gate(GateId::from_index(gi)) {
                    self.cone_ops.push(op as u32);
                }
            }
            for &r in &self.eng.fanout[gi] {
                if self.visited[r as usize] != e {
                    self.visited[r as usize] = e;
                    self.dfs.push(r);
                }
            }
        }
        // Op index order is levelized order: ascending replay evaluates
        // every cone gate after all of its in-cone drivers.
        self.cone_ops.sort_unstable();
    }

    /// Injects `fault` into block `b` and event-propagates through the
    /// cone. Returns `true` if the fault was excited (some gate differs
    /// from baseline this block).
    fn propagate(&mut self, fault: Fault, good: &[u64]) -> bool {
        self.counters.block_scans += 1;
        self.epoch += 1;
        let e = self.epoch;
        let root = self.root as usize;
        let kernel = &self.eng.kernel;
        let excited = match fault.site.pin {
            Pin::Output => {
                // Forced output word (source or logic gate alike).
                let fw = stuck_word(fault.stuck);
                if fw != good[root] {
                    self.faulty[root] = fw;
                    self.stamp[root] = e;
                    true
                } else {
                    false
                }
            }
            Pin::Input(p) => match self.root_op {
                // A stuck data pin on a storage element corrupts the
                // *captured* state only; the combinational frame (and so a
                // single-frame test) never sees it.
                None => false,
                Some(op) => {
                    let op = op as usize;
                    let forced = usize::from(p);
                    let out = fold_word(
                        kernel.op_kind(op),
                        kernel.op_args(op).iter().enumerate().map(|(i, &a)| {
                            if i == forced {
                                stuck_word(fault.stuck)
                            } else {
                                good[a as usize]
                            }
                        }),
                    );
                    if out != good[root] {
                        self.faulty[root] = out;
                        self.stamp[root] = e;
                        true
                    } else {
                        false
                    }
                }
            },
        };
        if !excited {
            return false;
        }
        // Hot loop: telemetry stays in a register-resident local, folded
        // into the worker counter once per block.
        let mut folded = 0u64;
        for &op in &self.cone_ops {
            let op = op as usize;
            let args = kernel.op_args(op);
            if !args.iter().any(|&a| self.stamp[a as usize] == e) {
                continue; // no disturbed operand: gate tracks the baseline
            }
            let out = fold_word(
                kernel.op_kind(op),
                args.iter().map(|&a| {
                    if self.stamp[a as usize] == e {
                        self.faulty[a as usize]
                    } else {
                        good[a as usize]
                    }
                }),
            );
            folded += 1;
            let dst = kernel.op_dst(op) as usize;
            if out != good[dst] {
                self.faulty[dst] = out;
                self.stamp[dst] = e;
            }
        }
        self.counters.excited_blocks += 1;
        self.counters.words_folded += folded;
        true
    }

    /// First detecting pattern of `fault`, or `None`.
    fn detect(&mut self, fault: Fault, baseline: &Baseline, dropping: bool) -> Option<usize> {
        if self.cone_outputs.is_empty() {
            return None; // no structural path to any output
        }
        let mut first = None;
        for (b, good) in baseline.blocks.iter().enumerate() {
            if !self.propagate(fault, good) {
                continue;
            }
            let e = self.epoch;
            let mut diff = 0u64;
            for &(slot, _) in &self.cone_outputs {
                let slot = slot as usize;
                if self.stamp[slot] == e {
                    diff |= self.faulty[slot] ^ good[slot];
                }
            }
            diff &= baseline.lane_masks[b];
            if diff != 0 && first.is_none() {
                first = Some(b * 64 + diff.trailing_zeros() as usize);
                if dropping {
                    break;
                }
            }
        }
        first
    }

    /// Every `(pattern, output)` observation `fault` corrupts.
    fn syndromes(&mut self, fault: Fault, baseline: &Baseline) -> BTreeSet<(u32, u16)> {
        let mut syn = BTreeSet::new();
        if self.cone_outputs.is_empty() {
            return syn;
        }
        for (b, good) in baseline.blocks.iter().enumerate() {
            if !self.propagate(fault, good) {
                continue;
            }
            let e = self.epoch;
            for &(slot, oi) in &self.cone_outputs {
                let slot = slot as usize;
                if self.stamp[slot] != e {
                    continue;
                }
                let mut diff = (self.faulty[slot] ^ good[slot]) & baseline.lane_masks[b];
                while diff != 0 {
                    let lane = diff.trailing_zeros();
                    syn.insert(((b * 64) as u32 + lane, oi));
                    diff &= diff - 1;
                }
            }
        }
        syn
    }
}

/// Fault-simulates with the PPSFP engine (64 patterns per word per fault,
/// cone-restricted, fault-dropping, threaded).
///
/// Produces the same [`DetectionResult`] as [`crate::simulate`]; prefer
/// this engine whenever the workload is large.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn ppsfp(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
) -> Result<DetectionResult, LevelizeError> {
    ppsfp_with_options(netlist, patterns, faults, PpsfpOptions::default())
}

/// [`ppsfp`] with explicit [`PpsfpOptions`].
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn ppsfp_with_options(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    options: PpsfpOptions,
) -> Result<DetectionResult, LevelizeError> {
    ppsfp_observed(netlist, patterns, faults, options, None)
}

/// [`ppsfp_with_options`] feeding telemetry to an optional collector
/// (see [`Ppsfp::run_with`] for the span and counter set).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn ppsfp_observed(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    options: PpsfpOptions,
    obs: Option<&mut dyn Collector>,
) -> Result<DetectionResult, LevelizeError> {
    Ok(Ppsfp::with_options(netlist, options)?.run_with(patterns, faults, obs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, universe};
    use dft_netlist::circuits::{c17, full_adder, majority, parity_tree, random_combinational};
    use dft_netlist::{GateKind, PortRef};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exhaustive_patterns(n: usize) -> PatternSet {
        let rows: Vec<Vec<bool>> = (0..1usize << n)
            .map(|v| (0..n).map(|i| v >> i & 1 == 1).collect())
            .collect();
        PatternSet::from_rows(n, &rows)
    }

    #[test]
    fn agrees_with_serial_on_small_circuits() {
        for n in [c17(), full_adder(), majority(), parity_tree(5)] {
            let faults = universe(&n);
            let p = exhaustive_patterns(n.primary_inputs().len());
            let a = simulate(&n, &p, &faults).unwrap();
            let b = ppsfp(&n, &p, &faults).unwrap();
            assert_eq!(a, b, "ppsfp disagrees on {}", n.name());
        }
    }

    #[test]
    fn agrees_with_serial_on_random_logic_all_thread_counts() {
        for seed in 0..3 {
            let n = random_combinational(12, 180, seed);
            let faults = universe(&n);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
            let p = PatternSet::random(12, 150, &mut rng); // 3 blocks, ragged tail
            let reference = simulate(&n, &p, &faults).unwrap();
            for threads in [1, 2, 5] {
                for fault_dropping in [true, false] {
                    let opts = PpsfpOptions {
                        threads,
                        fault_dropping,
                    };
                    let r = ppsfp_with_options(&n, &p, &faults, opts).unwrap();
                    assert_eq!(
                        r, reference,
                        "seed {seed} threads {threads} dropping {fault_dropping}"
                    );
                }
            }
        }
    }

    #[test]
    fn redundant_fault_stays_undetected() {
        let mut n = dft_netlist::Netlist::new("redundant");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = n.add_gate(GateKind::Or, &[a, g]).unwrap();
        n.mark_output(y, "y").unwrap();
        let fault = Fault::stuck_at_0(PortRef::output(g));
        let r = ppsfp(&n, &exhaustive_patterns(2), &[fault]).unwrap();
        assert_eq!(r.first_detected, vec![None]);
    }

    #[test]
    fn fault_off_every_output_cone_is_undetected() {
        // A dangling gate drives nothing: its faults cannot be observed.
        let mut n = dft_netlist::Netlist::new("t");
        let a = n.add_input("a");
        let dead = n.add_gate(GateKind::Not, &[a]).unwrap();
        let y = n.add_gate(GateKind::Buf, &[a]).unwrap();
        n.mark_output(y, "y").unwrap();
        let faults = [
            Fault::stuck_at_1(PortRef::output(dead)),
            Fault::stuck_at_0(PortRef::input(dead, 0)),
        ];
        let r = ppsfp(&n, &exhaustive_patterns(1), &faults).unwrap();
        assert_eq!(r.first_detected, vec![None, None]);
    }

    #[test]
    fn dff_data_pin_fault_is_frame_invisible() {
        // Matches the serial engine: a stuck DFF data pin corrupts capture
        // only, which single-frame grading does not observe.
        let mut n = dft_netlist::Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_dff(a).unwrap();
        let y = n.add_gate(GateKind::Xor, &[a, q]).unwrap();
        n.mark_output(y, "y").unwrap();
        let faults = universe(&n);
        let p = exhaustive_patterns(1);
        let a_r = simulate(&n, &p, &faults).unwrap();
        let b_r = ppsfp(&n, &p, &faults).unwrap();
        assert_eq!(a_r, b_r);
    }

    #[test]
    fn syndromes_match_brute_force() {
        let n = c17();
        let faults = universe(&n);
        let p = exhaustive_patterns(5);
        let eng = Ppsfp::new(&n).unwrap();
        let syn = eng.run_syndromes(&p, &faults);
        let view = crate::FaultyView::new(&n).unwrap();
        let outputs: Vec<_> = n.primary_outputs().iter().map(|&(g, _)| g).collect();
        for (fi, &f) in faults.iter().enumerate() {
            let mut expect = BTreeSet::new();
            for (pi, row) in p.iter().enumerate() {
                let words: Vec<u64> = row.iter().map(|&b| u64::from(b)).collect();
                let good = view.eval_block(&words, &[], None);
                let bad = view.eval_block(&words, &[], Some(f));
                for (oi, &g) in outputs.iter().enumerate() {
                    if (good[g.index()] ^ bad[g.index()]) & 1 != 0 {
                        expect.insert((pi as u32, oi as u16));
                    }
                }
            }
            assert_eq!(syn[fi], expect, "fault {f}");
        }
    }

    #[test]
    fn reusable_engine_matches_one_shot() {
        let n = random_combinational(10, 100, 9);
        let faults = universe(&n);
        let eng = Ppsfp::new(&n).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..3 {
            let p = PatternSet::random(10, 70, &mut rng);
            assert_eq!(eng.run(&p, &faults), ppsfp(&n, &p, &faults).unwrap());
        }
    }
}
