//! PPSFP: parallel-pattern single-fault propagation.
//!
//! The high-throughput fault-grading engine. Where the classic parallel
//! method ([`crate::parallel_fault`]) packs 63 faulty *machines* per word
//! under one pattern, PPSFP packs **many patterns per wide block under
//! one fault** — the dual layout — and then refuses to do almost all of
//! the work a naive engine would:
//!
//! * **Compiled kernel.** Good-machine responses come from the flat
//!   SoA/CSR [`Kernel`](dft_sim::Kernel) shared with
//!   [`CompiledSim`](dft_sim::CompiledSim), evaluated once per pattern
//!   block and cached for every gate (not just the outputs).
//! * **Wide words.** Blocks are `[u64; W]` wide words carrying `64 × W`
//!   patterns (`W` = 1/4/8 → 64/256/512 lanes, the [`LaneWidth`] knob;
//!   default picks per workload). One op dispatch — kind match, CSR
//!   operand walk, event scheduling — is amortized over the whole wide
//!   block, and the unrolled `W`-word loops vectorize.
//! * **Cache-blocked baseline sweep.** The good-machine pass partitions
//!   the op stream into level bands whose slot working sets fit in L1
//!   (see [`Kernel::level_bands`]) and sweeps each band across all
//!   pattern blocks before the next, so band metadata and slots stay hot
//!   instead of streaming the whole netlist's state per block.
//! * **Cone-restricted event propagation.** A fault can only disturb its
//!   structural fanout cone. Disturbed slots schedule their readers (a
//!   global op-indexed CSR, built once per engine) into a levelized
//!   event bitset, so each block folds exactly the gates an event
//!   actually reached — inert faults cost one block compare per wide
//!   block, and no per-fault cone is ever materialized.
//! * **Site-group propagation memo.** Faults at one site that force the
//!   same value onto it (any AND input stuck-at-0 collapses to the
//!   output stuck-at-0, etc.) propagate identically within a block; the
//!   engine memoizes per-block output differences by forced root value
//!   and replays them with one wide compare.
//! * **Fault dropping.** A fault detected in any lane leaves the active
//!   list; remaining blocks are never simulated for it.
//! * **Multi-threaded fault partitioning.** The collapsed fault list is
//!   grouped by fault site (groups share one site load and memo) and the
//!   groups are pulled from a shared atomic work queue by
//!   `std::thread::scope` workers, each with private scratch state;
//!   per-fault results are merged at the end. Results are deterministic
//!   regardless of scheduling because faults are independent.
//!
//! Detection semantics are identical to [`crate::simulate`] and
//! independent of lane width (first detecting pattern per fault;
//! cross-checked by tests and proptests — tail lanes of a ragged final
//! block are masked at detection only).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use dft_netlist::{GateId, LevelizeError, Netlist, Pin};
use dft_obs::{Collector, Obs};
use dft_sim::word::{fold_wide, stuck_wide, LaneWidth};
use dft_sim::{Kernel, PatternSet};

use crate::{DetectionResult, Fault};

/// Tuning knobs for a PPSFP run.
///
/// `#[non_exhaustive]`: construct via [`Default`] and the `with_*`
/// builders so new knobs can be added without breaking downstream
/// crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct PpsfpOptions {
    /// Worker threads. `0` (the default) uses the machine's available
    /// parallelism, capped by the number of fault-site groups.
    pub threads: usize,
    /// Stop simulating a fault once one pattern detects it (default
    /// `true`). Turning it off does not change the result — first
    /// detection is recorded either way — only the work performed, which
    /// makes it the honest baseline for work-avoidance measurements.
    pub fault_dropping: bool,
    /// Patterns per wide block (default [`LaneWidth::Auto`]: 256 lanes
    /// for workloads of ≥ 4 blocks, else 64). Never changes the result,
    /// only the block shape the engine runs over.
    pub lane_width: LaneWidth,
}

impl Default for PpsfpOptions {
    fn default() -> Self {
        PpsfpOptions {
            threads: 0,
            fault_dropping: true,
            lane_width: LaneWidth::Auto,
        }
    }
}

impl PpsfpOptions {
    /// Defaults (same as [`Default`], spelled for builder chains).
    #[must_use]
    pub fn new() -> Self {
        PpsfpOptions::default()
    }

    /// Sets [`PpsfpOptions::threads`].
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets [`PpsfpOptions::fault_dropping`].
    #[must_use]
    pub fn with_fault_dropping(mut self, fault_dropping: bool) -> Self {
        self.fault_dropping = fault_dropping;
        self
    }

    /// Sets [`PpsfpOptions::lane_width`].
    #[must_use]
    pub fn with_lane_width(mut self, lane_width: LaneWidth) -> Self {
        self.lane_width = lane_width;
        self
    }
}

/// Worker-local effort counters, merged across threads after the
/// partitioned run (plain integer bumps in the hot loop; never shared
/// while the workers are live, so there is no synchronization cost).
#[derive(Clone, Copy, Debug, Default)]
struct WorkCounters {
    /// Fault-site groups loaded (one per distinct fault-site gate).
    cones_loaded: u64,
    /// Fault × wide-block injection attempts (`propagate` calls).
    block_scans: u64,
    /// Injection attempts that actually disturbed the cone.
    excited_blocks: u64,
    /// `u64` words folded for disturbed cone gates (gate evaluations ×
    /// lane width — the hot loop's unit of work, comparable across
    /// widths).
    words_folded: u64,
}

impl WorkCounters {
    fn merge(&mut self, other: WorkCounters) {
        self.cones_loaded += other.cones_loaded;
        self.block_scans += other.block_scans;
        self.excited_blocks += other.excited_blocks;
        self.words_folded += other.words_folded;
    }
}

/// A PPSFP engine compiled for one netlist, reusable across pattern
/// batches (the random-ATPG grading loop calls [`Ppsfp::run`] once per
/// 64-pattern chunk without recompiling).
#[derive(Debug)]
pub struct Ppsfp<'n> {
    netlist: &'n Netlist,
    kernel: Kernel,
    /// Global reader CSR: the op indices of the distinct non-storage
    /// readers of slot `g` are
    /// `reader_pool[reader_start[g]..reader_start[g + 1]]`. Because op
    /// index order is levelized order, every reader op of a slot has a
    /// strictly higher index than the op driving that slot — the
    /// invariant the event loop's single-pass scan rests on.
    reader_start: Vec<u32>,
    reader_pool: Vec<u32>,
    /// Whether a combinational path leads from gate `g` to any primary
    /// output (gates that are POs themselves included). Faults at
    /// unreachable sites are structurally undetectable; the per-fault
    /// loop exits before touching any pattern block.
    reaches_output: Vec<bool>,
    /// Gate index → primary-output position, `u16::MAX` if not a PO.
    output_of: Vec<u16>,
    options: PpsfpOptions,
}

/// Cached good-machine state for one pattern set, in wide blocks.
struct Baseline<const W: usize> {
    /// `blocks[wb][slot]`: packed good values of every gate in wide
    /// block `wb` (`64 × W` patterns).
    blocks: Vec<Vec<[u64; W]>>,
    /// Valid-lane mask per wide block: tail words of a ragged final
    /// block are zero, the last ragged word is a low-lane mask.
    lane_masks: Vec<[u64; W]>,
}

impl<'n> Ppsfp<'n> {
    /// Compiles the engine for `netlist` with default options.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist) -> Result<Self, LevelizeError> {
        Ppsfp::with_options(netlist, PpsfpOptions::default())
    }

    /// Compiles the engine for `netlist` with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn with_options(
        netlist: &'n Netlist,
        options: PpsfpOptions,
    ) -> Result<Self, LevelizeError> {
        let kernel = Kernel::new(netlist)?;
        let mut reader_start = Vec::with_capacity(netlist.gate_count() + 1);
        let mut reader_pool: Vec<u32> = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        reader_start.push(0u32);
        for readers in netlist.fanout_map() {
            seen.clear();
            for (reader, _pin) in readers {
                // A storage reader captures into next state only; within
                // the combinational frame its output cannot change.
                if netlist.gate(reader).kind().is_storage() {
                    continue;
                }
                let r = reader.index() as u32;
                if seen.contains(&r) {
                    continue;
                }
                seen.push(r);
                if let Some(rop) = kernel.op_of_gate(reader) {
                    reader_pool.push(rop as u32);
                }
            }
            reader_start.push(reader_pool.len() as u32);
        }
        let mut output_of = vec![u16::MAX; netlist.gate_count()];
        assert!(
            netlist.primary_outputs().len() < usize::from(u16::MAX),
            "more than 65534 primary outputs"
        );
        for (oi, &(g, _)) in netlist.primary_outputs().iter().enumerate() {
            output_of[g.index()] = oi as u16;
        }
        // Reverse levelized sweep: a gate reaches an output iff it is one
        // or drives (through combinational ops) a gate that does.
        let mut reaches_output: Vec<bool> = output_of.iter().map(|&o| o != u16::MAX).collect();
        for op in (0..kernel.op_count()).rev() {
            if reaches_output[kernel.op_dst(op) as usize] {
                for &a in kernel.op_args(op) {
                    reaches_output[a as usize] = true;
                }
            }
        }
        Ok(Ppsfp {
            netlist,
            kernel,
            reader_start,
            reader_pool,
            reaches_output,
            output_of,
            options,
        })
    }

    /// The op indices reading slot `g` (combinational readers only).
    #[inline]
    fn reader_ops(&self, g: usize) -> &[u32] {
        &self.reader_pool[self.reader_start[g] as usize..self.reader_start[g + 1] as usize]
    }

    /// The compiled netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The options this engine was built with.
    #[must_use]
    pub fn options(&self) -> PpsfpOptions {
        self.options
    }

    /// Fault-simulates `faults` against `patterns`, producing the same
    /// [`DetectionResult`] as [`crate::simulate`].
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run(&self, patterns: &PatternSet, faults: &[Fault]) -> DetectionResult {
        self.run_with(patterns, faults, None)
    }

    /// [`Ppsfp::run`] feeding telemetry to an optional collector.
    ///
    /// Opens a `fault_sim.ppsfp` span with counters `faults`,
    /// `patterns`, `good_evals` (baseline 64-lane block equivalents),
    /// `lane_words` (resolved lane width in words), `cones_loaded`,
    /// `block_scans`, `excited_blocks`, `words_folded` (disturbed-gate
    /// evaluations × lane width — the engine's unit of hot-loop work),
    /// `detected`, `dropped`, plus a `coverage` gauge. Workers count
    /// into private integers merged after the join, so the hot loop
    /// never crosses a `dyn` boundary and `None` costs nothing
    /// measurable.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run_with(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> DetectionResult {
        match self
            .options
            .lane_width
            .resolve_words(patterns.block_count())
        {
            8 => self.run_width::<8>(patterns, faults, obs),
            4 => self.run_width::<4>(patterns, faults, obs),
            _ => self.run_width::<1>(patterns, faults, obs),
        }
    }

    /// [`Ppsfp::run_with`] monomorphized for one wide-block width.
    fn run_width<const W: usize>(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> DetectionResult {
        let mut obs = Obs::new(obs);
        obs.enter("fault_sim.ppsfp");
        let baseline = self.baseline::<W>(patterns);
        let dropping = self.options.fault_dropping;
        let (first_detected, work) = self.run_partitioned::<W, _, _>(faults, |worker, fault| {
            worker.detect(fault, &baseline, dropping)
        });
        let result = DetectionResult {
            first_detected,
            pattern_count: patterns.len(),
        };
        let detected = result.detected_count() as u64;
        self.flush::<W>(&mut obs, faults.len(), patterns, &work);
        obs.count("detected", detected);
        obs.count("dropped", if dropping { detected } else { 0 });
        obs.gauge("coverage", result.coverage());
        obs.exit();
        result
    }

    /// [`Ppsfp::run`] over a fault *stream*: faults are pulled from the
    /// iterator in chunks of `chunk_faults` and simulated against a
    /// baseline computed once, so no full `Vec<Fault>` is ever
    /// materialized — the working set is one chunk plus the per-fault
    /// result vector. With a streaming enumerator
    /// ([`crate::stream::FaultUniverse::iter`] or
    /// [`crate::stream::CollapsedUniverse::representatives`]) a
    /// 10⁶-gate netlist fault-grades without the ~10⁷-entry fault list.
    ///
    /// Detection is **bit-identical** to [`Ppsfp::run`] on the
    /// materialized list: faults are independent, dropping is per-fault,
    /// and results concatenate in stream order.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist or
    /// `chunk_faults == 0`.
    #[must_use]
    pub fn run_streamed(
        &self,
        patterns: &PatternSet,
        faults: impl IntoIterator<Item = Fault>,
        chunk_faults: usize,
    ) -> DetectionResult {
        assert!(chunk_faults > 0, "chunk size must be positive");
        match self
            .options
            .lane_width
            .resolve_words(patterns.block_count())
        {
            8 => self.run_streamed_width::<8>(patterns, faults, chunk_faults),
            4 => self.run_streamed_width::<4>(patterns, faults, chunk_faults),
            _ => self.run_streamed_width::<1>(patterns, faults, chunk_faults),
        }
    }

    /// [`Ppsfp::run_streamed`] monomorphized for one wide-block width.
    fn run_streamed_width<const W: usize>(
        &self,
        patterns: &PatternSet,
        faults: impl IntoIterator<Item = Fault>,
        chunk_faults: usize,
    ) -> DetectionResult {
        let baseline = self.baseline::<W>(patterns);
        let dropping = self.options.fault_dropping;
        let mut faults = faults.into_iter();
        let mut first_detected: Vec<Option<usize>> = Vec::new();
        let mut chunk: Vec<Fault> = Vec::with_capacity(chunk_faults);
        loop {
            chunk.clear();
            chunk.extend(faults.by_ref().take(chunk_faults));
            if chunk.is_empty() {
                break;
            }
            let (detected, _) = self.run_partitioned::<W, _, _>(&chunk, |worker, fault| {
                worker.detect(fault, &baseline, dropping)
            });
            first_detected.extend(detected);
        }
        DetectionResult {
            first_detected,
            pattern_count: patterns.len(),
        }
    }

    /// Full-syndrome fault simulation: for every fault, the complete set
    /// of `(pattern, output)` observations it corrupts (no dropping) —
    /// the payload a [`crate::FaultDictionary`] needs.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run_syndromes(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
    ) -> Vec<BTreeSet<(u32, u16)>> {
        self.run_syndromes_with(patterns, faults, None)
    }

    /// [`Ppsfp::run_syndromes`] feeding telemetry to an optional
    /// collector (same `fault_sim.ppsfp` span and counters as
    /// [`Ppsfp::run_with`], plus `syndrome_bits` for the total
    /// observations collected; no `detected`/`dropped` since syndromes
    /// never drop).
    ///
    /// # Panics
    ///
    /// Panics if the pattern width disagrees with the netlist.
    #[must_use]
    pub fn run_syndromes_with(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Vec<BTreeSet<(u32, u16)>> {
        match self
            .options
            .lane_width
            .resolve_words(patterns.block_count())
        {
            8 => self.run_syndromes_width::<8>(patterns, faults, obs),
            4 => self.run_syndromes_width::<4>(patterns, faults, obs),
            _ => self.run_syndromes_width::<1>(patterns, faults, obs),
        }
    }

    /// [`Ppsfp::run_syndromes_with`] monomorphized for one width.
    fn run_syndromes_width<const W: usize>(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Vec<BTreeSet<(u32, u16)>> {
        let mut obs = Obs::new(obs);
        obs.enter("fault_sim.ppsfp");
        let baseline = self.baseline::<W>(patterns);
        let (syndromes, work) = self
            .run_partitioned::<W, _, _>(faults, |worker, fault| worker.syndromes(fault, &baseline));
        self.flush::<W>(&mut obs, faults.len(), patterns, &work);
        obs.count(
            "syndrome_bits",
            syndromes.iter().map(|s| s.len() as u64).sum(),
        );
        obs.exit();
        syndromes
    }

    /// Flushes the merged worker counters into a collector.
    fn flush<const W: usize>(
        &self,
        obs: &mut Obs<'_>,
        fault_count: usize,
        patterns: &PatternSet,
        w: &WorkCounters,
    ) {
        obs.count("faults", fault_count as u64);
        obs.count("patterns", patterns.len() as u64);
        obs.count("good_evals", patterns.block_count() as u64);
        obs.count("lane_words", W as u64);
        obs.count("cones_loaded", w.cones_loaded);
        obs.count("block_scans", w.block_scans);
        obs.count("excited_blocks", w.excited_blocks);
        obs.count("words_folded", w.words_folded);
    }

    /// Computes the good-machine baseline in wide blocks, band-major:
    /// each level band is swept across every wide block before the next
    /// band runs (the cache-blocked levelized sweep).
    fn baseline<const W: usize>(&self, patterns: &PatternSet) -> Baseline<W> {
        assert_eq!(
            patterns.input_count(),
            self.netlist.primary_inputs().len(),
            "pattern width must match primary input count"
        );
        let nb = patterns.block_count();
        let wide_count = nb.div_ceil(W);
        let mut blocks = Vec::with_capacity(wide_count);
        let mut lane_masks = Vec::with_capacity(wide_count);
        for wb in 0..wide_count {
            let mut vals = vec![[0u64; W]; self.kernel.gate_count()];
            self.kernel.init_constants_wide(&mut vals);
            for (i, &slot) in self.kernel.pi_slots().iter().enumerate() {
                let mut wide = [0u64; W];
                for (w, lane) in wide.iter_mut().enumerate() {
                    let b = wb * W + w;
                    if b < nb {
                        *lane = patterns.block(b)[i];
                    }
                }
                vals[slot as usize] = wide;
            }
            blocks.push(vals);
            let mut mask = [0u64; W];
            for (w, m) in mask.iter_mut().enumerate() {
                let b = wb * W + w;
                if b < nb {
                    let lanes = patterns.lanes_in_block(b);
                    *m = if lanes == 64 {
                        u64::MAX
                    } else {
                        (1u64 << lanes) - 1
                    };
                }
            }
            lane_masks.push(mask);
        }
        let bands = self.kernel.level_bands_for_width(W);
        self.kernel.eval_blocks_banded(&bands, &mut blocks);
        Baseline { blocks, lane_masks }
    }

    /// Runs `per_fault` over every fault, partitioned by fault-site group
    /// across the configured worker threads, returning results in fault
    /// order plus the merged per-worker effort counters.
    fn run_partitioned<const W: usize, R, F>(
        &self,
        faults: &[Fault],
        per_fault: F,
    ) -> (Vec<R>, WorkCounters)
    where
        R: Send,
        F: Fn(&mut Worker<'_, W>, Fault) -> R + Sync,
    {
        // Group faults sharing a site gate so each group computes its
        // fanout cone exactly once.
        let mut group_of: Vec<Option<usize>> = vec![None; self.netlist.gate_count()];
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        for (fi, f) in faults.iter().enumerate() {
            let root = f.site.gate.index();
            let gi = *group_of[root].get_or_insert_with(|| {
                groups.push((root as u32, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push(fi as u32);
        }

        let threads = self.resolve_threads(groups.len());
        let mut merged: Vec<Option<R>> = (0..faults.len()).map(|_| None).collect();
        let mut work = WorkCounters::default();
        if threads <= 1 {
            let mut worker = Worker::<W>::new(self);
            for (root, fids) in &groups {
                worker.load_group(*root);
                for &fi in fids {
                    merged[fi as usize] = Some(per_fault(&mut worker, faults[fi as usize]));
                }
            }
            work = worker.counters;
        } else {
            let cursor = AtomicUsize::new(0);
            let chunks = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(|| {
                            let mut worker = Worker::<W>::new(self);
                            let mut out: Vec<(u32, R)> = Vec::new();
                            loop {
                                let g = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some((root, fids)) = groups.get(g) else {
                                    break;
                                };
                                worker.load_group(*root);
                                for &fi in fids {
                                    out.push((fi, per_fault(&mut worker, faults[fi as usize])));
                                }
                            }
                            (out, worker.counters)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ppsfp worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (chunk, counters) in chunks {
                work.merge(counters);
                for (fi, r) in chunk {
                    merged[fi as usize] = Some(r);
                }
            }
        }
        (
            merged
                .into_iter()
                .map(|r| r.expect("every fault visited exactly once"))
                .collect(),
            work,
        )
    }

    fn resolve_threads(&self, group_count: usize) -> usize {
        let t = if self.options.threads > 0 {
            self.options.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        };
        t.clamp(1, group_count.max(1))
    }
}

/// Per-thread scratch state: the current fault site plus a private
/// mutable copy of the baseline that faulty values are written into
/// directly and rolled back from an undo list after every block — so
/// the hot loop reads one value array with no faulty/good merge branch.
/// Monomorphized per wide-block width.
///
/// There is no explicit cone computation: the engine's global reader
/// CSR ([`Ppsfp::reader_ops`]) restricts propagation to the fault's
/// structural fanout cone implicitly, because only readers of disturbed
/// slots are ever scheduled.
struct Worker<'a, const W: usize> {
    eng: &'a Ppsfp<'a>,
    root: u32,
    /// The root gate's own op, if it has one (None for sources/storage).
    root_op: Option<u32>,
    /// First event-bitset word the root's readers can occupy — the scan
    /// start (all later events sit at strictly higher op indices).
    root_word: usize,
    /// Worker-private baseline copy. Propagation mutates it in place and
    /// [`Worker::revert`] restores it bit-for-bit, so between blocks it
    /// always equals the shared baseline.
    work: Vec<Vec<[u64; W]>>,
    /// `(slot, baseline value)` of every slot overwritten this block.
    /// Each slot appears at most once (the event loop folds each op at
    /// most once per block), so restore order is irrelevant.
    undo: Vec<(u32, [u64; W])>,
    /// Event bitset over op indices: bit set = op has a disturbed
    /// driver and must be folded. Always all-zero between blocks (every
    /// set bit is consumed by the propagate loop).
    sched: Vec<u64>,
    /// `(slot, baseline value)` of primary outputs disturbed in the
    /// current block, collected while writing so detection touches only
    /// them instead of scanning every output in the cone.
    touched_outputs: Vec<(u32, [u64; W])>,
    /// Per-block propagation memo for the current fault-site group:
    /// `(forced root value, OR of output faulty-vs-baseline diffs)`.
    /// Faults at one site often force identical root values, and equal
    /// root values propagate identically within a block.
    memo: Vec<Vec<([u64; W], [u64; W])>>,
    /// Thread-private effort counters (merged by `run_partitioned`).
    counters: WorkCounters,
}

impl<'a, const W: usize> Worker<'a, W> {
    fn new(eng: &'a Ppsfp<'a>) -> Self {
        Worker {
            eng,
            root: 0,
            root_op: None,
            root_word: 0,
            work: Vec::new(),
            undo: Vec::new(),
            sched: vec![0; eng.kernel.op_count().div_ceil(64)],
            touched_outputs: Vec::new(),
            memo: Vec::new(),
            counters: WorkCounters::default(),
        }
    }

    /// Points the worker at a fault-site gate. O(fanout of the site):
    /// all propagation structure is global and precomputed.
    fn load_group(&mut self, root: u32) {
        self.counters.cones_loaded += 1;
        self.root = root;
        self.root_op = self
            .eng
            .kernel
            .op_of_gate(GateId::from_index(root as usize))
            .map(|op| op as u32);
        self.root_word = self
            .eng
            .reader_ops(root as usize)
            .iter()
            .map(|&q| q as usize / 64)
            .min()
            .unwrap_or(0);
        for m in &mut self.memo {
            m.clear();
        }
    }

    /// Sets the event bits for a slice of op indices.
    #[inline]
    fn schedule(sched: &mut [u64], ops: &[u32]) {
        for &q in ops {
            let q = q as usize;
            sched[q / 64] |= 1u64 << (q % 64);
        }
    }

    /// Clones the shared baseline into this worker's mutable working
    /// copy. Runs at most once per worker per run: every propagate is
    /// rolled back, so once cloned the copy stays equal to the baseline
    /// between blocks.
    fn ensure_work(&mut self, baseline: &Baseline<W>) {
        if self.work.len() != baseline.blocks.len() {
            self.work = baseline.blocks.clone();
            self.memo = vec![Vec::new(); baseline.blocks.len()];
        }
    }

    /// Restores the working block to baseline by replaying the undo log.
    fn revert(&mut self, work: &mut [[u64; W]]) {
        for (slot, old) in self.undo.drain(..) {
            work[slot as usize] = old;
        }
    }

    /// The wide value `fault` forces on its site gate's output in this
    /// block, or `None` when the fault is invisible to the combinational
    /// frame (a stuck data pin on a storage element corrupts the
    /// *captured* state only). Two faults forcing the same value on the
    /// same root propagate identically — the key the per-group memo
    /// dedupes on.
    fn faulty_root(&self, fault: Fault, work: &[[u64; W]]) -> Option<[u64; W]> {
        match fault.site.pin {
            Pin::Output => {
                // Forced output block (source or logic gate alike). Tail
                // lanes are forced too; they are masked at detection.
                Some(stuck_wide::<W>(fault.stuck))
            }
            Pin::Input(p) => self.root_op.map(|op| {
                let kernel = &self.eng.kernel;
                let op = op as usize;
                let forced = usize::from(p);
                fold_wide(
                    kernel.op_kind(op),
                    kernel.op_args(op).iter().enumerate().map(|(i, &a)| {
                        if i == forced {
                            stuck_wide::<W>(fault.stuck)
                        } else {
                            work[a as usize]
                        }
                    }),
                )
            }),
        }
    }

    /// Injects `fault` into the working block `work` (a baseline copy)
    /// and event-propagates through the cone, overwriting disturbed
    /// slots in place and logging their baseline values in `undo`.
    /// Returns `true` if the fault was excited (some gate differs from
    /// baseline in some lane this block); the caller must [`revert`]
    /// before reusing the block.
    ///
    /// [`revert`]: Worker::revert
    fn propagate(&mut self, fault: Fault, work: &mut [[u64; W]]) -> bool {
        self.counters.block_scans += 1;
        match self.faulty_root(fault, work) {
            Some(fw) if fw != work[self.root as usize] => {
                self.inject(fw, work);
                true
            }
            _ => false,
        }
    }

    /// Excites the root with the already-computed forced value `fw`
    /// (which must differ from baseline) and runs the event loop.
    fn inject(&mut self, fw: [u64; W], work: &mut [[u64; W]]) {
        self.touched_outputs.clear();
        debug_assert!(self.undo.is_empty(), "previous block not reverted");
        let root = self.root as usize;
        let eng = self.eng;
        let kernel = &eng.kernel;
        let old = work[root];
        self.undo.push((self.root, old));
        if eng.output_of[root] != u16::MAX {
            self.touched_outputs.push((self.root, old));
        }
        work[root] = fw;
        Self::schedule(&mut self.sched, eng.reader_ops(root));
        // Event loop: always pop the lowest pending bit from the LIVE
        // bitset word (never a stale local copy, which could leapfrog an
        // event scheduled mid-word at a lower index). Ascending bit
        // position is ascending op index is levelized order, and a fold
        // only schedules strictly higher indices (readers sit at higher
        // levels), so indices at or below the current minimum can never
        // be re-set: every op is folded at most once per block, after
        // all of its disturbed drivers, and the bitset drains to
        // all-zero by exit. A fold reads `work` directly — disturbed
        // drivers already hold their final faulty value, everything else
        // is baseline — and `work[dst]` still holds baseline (each dst
        // has exactly one driver op, folded at most once), so the
        // write-back doubles as the disturbance test. Telemetry stays in
        // a register-resident local, folded into the worker counter once
        // per block.
        let mut folded = 0u64;
        let mut wi = self.root_word;
        while wi < self.sched.len() {
            let word = self.sched[wi];
            if word == 0 {
                wi += 1;
                continue;
            }
            self.sched[wi] = word & (word - 1);
            let op = wi * 64 + word.trailing_zeros() as usize;
            let out = fold_wide(
                kernel.op_kind(op),
                kernel.op_args(op).iter().map(|&a| work[a as usize]),
            );
            folded += 1;
            let dst = kernel.op_dst(op) as usize;
            if out != work[dst] {
                let old = work[dst];
                self.undo.push((dst as u32, old));
                if eng.output_of[dst] != u16::MAX {
                    self.touched_outputs.push((dst as u32, old));
                }
                work[dst] = out;
                Self::schedule(&mut self.sched, eng.reader_ops(dst));
            }
        }
        self.counters.excited_blocks += 1;
        self.counters.words_folded += folded * W as u64;
    }

    /// First detecting pattern of `fault`, or `None`. The wide pattern
    /// index decomposes as `(wide_block × W + word) × 64 + lane`, so
    /// scanning blocks, then words, then trailing zeros yields the same
    /// "first detecting pattern" the 64-lane engine reports.
    ///
    /// Per-block propagation results are memoized by forced root value
    /// within the current fault-site group (`memo` is cleared on
    /// `load_group`): an input-pin fault frequently forces the same
    /// output block a stuck-output fault already propagated (e.g. any
    /// AND-input stuck-at-0 collapses to the output stuck-at-0 in every
    /// lane that excites it), and the memo turns those repeat
    /// propagations into one wide-word compare.
    fn detect(&mut self, fault: Fault, baseline: &Baseline<W>, dropping: bool) -> Option<usize> {
        if !self.eng.reaches_output[self.root as usize] {
            return None; // no structural path to any output
        }
        self.ensure_work(baseline);
        let mut blocks = std::mem::take(&mut self.work);
        let mut first = None;
        for (wb, block) in blocks.iter_mut().enumerate() {
            self.counters.block_scans += 1;
            let Some(fw) = self.faulty_root(fault, block) else {
                break; // frame-invisible: true for every block
            };
            if fw == block[self.root as usize] {
                continue; // not excited this block
            }
            let diff = match self.memo[wb].iter().find(|(v, _)| *v == fw) {
                Some(&(_, d)) => d,
                None => {
                    self.inject(fw, block);
                    // OR the disturbed outputs' faulty-vs-baseline
                    // differences.
                    let mut diff = [0u64; W];
                    for &(slot, ref old) in &self.touched_outputs {
                        let f = &block[slot as usize];
                        for w in 0..W {
                            diff[w] |= f[w] ^ old[w];
                        }
                    }
                    self.revert(block);
                    self.memo[wb].push((fw, diff));
                    diff
                }
            };
            let mask = &baseline.lane_masks[wb];
            if first.is_none() {
                for w in 0..W {
                    let d = diff[w] & mask[w];
                    if d != 0 {
                        first = Some((wb * W + w) * 64 + d.trailing_zeros() as usize);
                        break;
                    }
                }
                if first.is_some() && dropping {
                    break;
                }
            }
        }
        self.work = blocks;
        first
    }

    /// Every `(pattern, output)` observation `fault` corrupts.
    fn syndromes(&mut self, fault: Fault, baseline: &Baseline<W>) -> BTreeSet<(u32, u16)> {
        let mut syn = BTreeSet::new();
        if !self.eng.reaches_output[self.root as usize] {
            return syn;
        }
        self.ensure_work(baseline);
        let mut blocks = std::mem::take(&mut self.work);
        for (wb, block) in blocks.iter_mut().enumerate() {
            if !self.propagate(fault, block) {
                continue;
            }
            for &(slot, ref old) in &self.touched_outputs {
                let oi = self.eng.output_of[slot as usize];
                let f = &block[slot as usize];
                for w in 0..W {
                    let mut diff = (f[w] ^ old[w]) & baseline.lane_masks[wb][w];
                    while diff != 0 {
                        let lane = diff.trailing_zeros();
                        syn.insert((((wb * W + w) * 64) as u32 + lane, oi));
                        diff &= diff - 1;
                    }
                }
            }
            self.revert(block);
        }
        self.work = blocks;
        syn
    }
}

/// Fault-simulates with the PPSFP engine (wide pattern blocks per fault,
/// cone-restricted, fault-dropping, threaded).
///
/// Produces the same [`DetectionResult`] as [`crate::simulate`]; prefer
/// this engine whenever the workload is large.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn ppsfp(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
) -> Result<DetectionResult, LevelizeError> {
    ppsfp_with_options(netlist, patterns, faults, PpsfpOptions::default())
}

/// [`ppsfp`] with explicit [`PpsfpOptions`].
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn ppsfp_with_options(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    options: PpsfpOptions,
) -> Result<DetectionResult, LevelizeError> {
    ppsfp_observed(netlist, patterns, faults, options, None)
}

/// [`ppsfp_with_options`] feeding telemetry to an optional collector
/// (see [`Ppsfp::run_with`] for the span and counter set).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn ppsfp_observed(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    options: PpsfpOptions,
    obs: Option<&mut dyn Collector>,
) -> Result<DetectionResult, LevelizeError> {
    Ok(Ppsfp::with_options(netlist, options)?.run_with(patterns, faults, obs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, universe};
    use dft_netlist::circuits::{c17, full_adder, majority, parity_tree, random_combinational};
    use dft_netlist::{GateKind, PortRef};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exhaustive_patterns(n: usize) -> PatternSet {
        let rows: Vec<Vec<bool>> = (0..1usize << n)
            .map(|v| (0..n).map(|i| v >> i & 1 == 1).collect())
            .collect();
        PatternSet::from_rows(n, &rows)
    }

    #[test]
    fn agrees_with_serial_on_small_circuits() {
        for n in [c17(), full_adder(), majority(), parity_tree(5)] {
            let faults = universe(&n);
            let p = exhaustive_patterns(n.primary_inputs().len());
            let a = simulate(&n, &p, &faults).unwrap();
            let b = ppsfp(&n, &p, &faults).unwrap();
            assert_eq!(a, b, "ppsfp disagrees on {}", n.name());
        }
    }

    #[test]
    fn agrees_with_serial_on_random_logic_all_thread_counts() {
        for seed in 0..3 {
            let n = random_combinational(12, 180, seed);
            let faults = universe(&n);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
            let p = PatternSet::random(12, 150, &mut rng); // 3 blocks, ragged tail
            let reference = simulate(&n, &p, &faults).unwrap();
            for threads in [1, 2, 5] {
                for fault_dropping in [true, false] {
                    let opts = PpsfpOptions::new()
                        .with_threads(threads)
                        .with_fault_dropping(fault_dropping);
                    let r = ppsfp_with_options(&n, &p, &faults, opts).unwrap();
                    assert_eq!(
                        r, reference,
                        "seed {seed} threads {threads} dropping {fault_dropping}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_lane_widths_agree_with_serial() {
        // Enough patterns for Auto to pick the 512-lane path, with a
        // ragged tail block and a partial wide group (10 blocks = one
        // 8-block group + 2 tail blocks at W = 8).
        let n = random_combinational(12, 220, 5);
        let faults = universe(&n);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let p = PatternSet::random(12, 10 * 64 - 17, &mut rng);
        let reference = simulate(&n, &p, &faults).unwrap();
        for lane_width in [
            LaneWidth::Auto,
            LaneWidth::W64,
            LaneWidth::W256,
            LaneWidth::W512,
        ] {
            for fault_dropping in [true, false] {
                let opts = PpsfpOptions::new()
                    .with_threads(1)
                    .with_fault_dropping(fault_dropping)
                    .with_lane_width(lane_width);
                let r = ppsfp_with_options(&n, &p, &faults, opts).unwrap();
                assert_eq!(r, reference, "{lane_width:?} dropping {fault_dropping}");
            }
        }
    }

    #[test]
    fn redundant_fault_stays_undetected() {
        let mut n = dft_netlist::Netlist::new("redundant");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = n.add_gate(GateKind::Or, &[a, g]).unwrap();
        n.mark_output(y, "y").unwrap();
        let fault = Fault::stuck_at_0(PortRef::output(g));
        let r = ppsfp(&n, &exhaustive_patterns(2), &[fault]).unwrap();
        assert_eq!(r.first_detected, vec![None]);
    }

    #[test]
    fn fault_off_every_output_cone_is_undetected() {
        // A dangling gate drives nothing: its faults cannot be observed.
        let mut n = dft_netlist::Netlist::new("t");
        let a = n.add_input("a");
        let dead = n.add_gate(GateKind::Not, &[a]).unwrap();
        let y = n.add_gate(GateKind::Buf, &[a]).unwrap();
        n.mark_output(y, "y").unwrap();
        let faults = [
            Fault::stuck_at_1(PortRef::output(dead)),
            Fault::stuck_at_0(PortRef::input(dead, 0)),
        ];
        let r = ppsfp(&n, &exhaustive_patterns(1), &faults).unwrap();
        assert_eq!(r.first_detected, vec![None, None]);
    }

    #[test]
    fn dff_data_pin_fault_is_frame_invisible() {
        // Matches the serial engine: a stuck DFF data pin corrupts capture
        // only, which single-frame grading does not observe.
        let mut n = dft_netlist::Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_dff(a).unwrap();
        let y = n.add_gate(GateKind::Xor, &[a, q]).unwrap();
        n.mark_output(y, "y").unwrap();
        let faults = universe(&n);
        let p = exhaustive_patterns(1);
        let a_r = simulate(&n, &p, &faults).unwrap();
        let b_r = ppsfp(&n, &p, &faults).unwrap();
        assert_eq!(a_r, b_r);
    }

    #[test]
    fn syndromes_match_brute_force() {
        let n = c17();
        let faults = universe(&n);
        let p = exhaustive_patterns(5);
        let eng = Ppsfp::new(&n).unwrap();
        let syn = eng.run_syndromes(&p, &faults);
        let view = crate::FaultyView::new(&n).unwrap();
        let outputs: Vec<_> = n.primary_outputs().iter().map(|&(g, _)| g).collect();
        for (fi, &f) in faults.iter().enumerate() {
            let mut expect = BTreeSet::new();
            for (pi, row) in p.iter().enumerate() {
                let words: Vec<u64> = row.iter().map(|&b| u64::from(b)).collect();
                let good = view.eval_block(&words, &[], None);
                let bad = view.eval_block(&words, &[], Some(f));
                for (oi, &g) in outputs.iter().enumerate() {
                    if (good[g.index()] ^ bad[g.index()]) & 1 != 0 {
                        expect.insert((pi as u32, oi as u16));
                    }
                }
            }
            assert_eq!(syn[fi], expect, "fault {f}");
        }
    }

    #[test]
    fn syndromes_agree_across_lane_widths() {
        let n = random_combinational(10, 120, 13);
        let faults = universe(&n);
        let mut rng = StdRng::seed_from_u64(2);
        let p = PatternSet::random(10, 9 * 64 + 5, &mut rng);
        let reference =
            Ppsfp::with_options(&n, PpsfpOptions::new().with_lane_width(LaneWidth::W64))
                .unwrap()
                .run_syndromes(&p, &faults);
        for lane_width in [LaneWidth::W256, LaneWidth::W512, LaneWidth::Auto] {
            let eng =
                Ppsfp::with_options(&n, PpsfpOptions::new().with_lane_width(lane_width)).unwrap();
            assert_eq!(eng.run_syndromes(&p, &faults), reference, "{lane_width:?}");
        }
    }

    #[test]
    fn reusable_engine_matches_one_shot() {
        let n = random_combinational(10, 100, 9);
        let faults = universe(&n);
        let eng = Ppsfp::new(&n).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..3 {
            let p = PatternSet::random(10, 70, &mut rng);
            assert_eq!(eng.run(&p, &faults), ppsfp(&n, &p, &faults).unwrap());
        }
    }
}
