//! Sequential (multi-cycle) fault simulation with three-valued state.
//!
//! For un-scanned machines a test is a *sequence*: the fault must first be
//! excited (which may require steering the state) and its effect marched
//! to an output. This engine runs the good and each faulty machine
//! cycle-by-cycle from all-X state; a fault counts as detected only when
//! a primary output is **known** in both machines and differs — the
//! conservative criterion a real tester needs (an X cannot be compared).
//!
//! Its cost (one full multi-cycle simulation per fault) is exactly the
//! burden §IV of the paper says scan design removes.

use dft_netlist::{LevelizeError, Netlist};
use dft_obs::{Collector, Obs};
use dft_sim::Logic;

use crate::{Fault, FaultyView};

/// Per-fault outcome of a sequential fault-simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequentialDetection {
    /// For each fault: the first `(cycle, output)` where the good and
    /// faulty machines provably differ.
    pub first_detected: Vec<Option<(usize, usize)>>,
    /// Number of cycles in the applied sequence.
    pub cycle_count: usize,
}

impl SequentialDetection {
    /// Number of detected faults.
    #[must_use]
    pub fn detected_count(&self) -> usize {
        self.first_detected.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage over the supplied fault list.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.first_detected.is_empty() {
            1.0
        } else {
            self.detected_count() as f64 / self.first_detected.len() as f64
        }
    }
}

/// Runs `sequence` (one primary-input row per cycle) against every fault.
///
/// Machines start with all storage at X. Detection requires a cycle where
/// some output is known-0 in one machine and known-1 in the other.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if any row's width disagrees with the netlist's input count.
pub fn sequential(
    netlist: &Netlist,
    sequence: &[Vec<Logic>],
    faults: &[Fault],
) -> Result<SequentialDetection, LevelizeError> {
    sequential_observed(netlist, sequence, faults, None)
}

/// [`sequential`] feeding telemetry to an optional collector.
///
/// Opens a `fault_sim.sequential` span with counters `faults`, `cycles`,
/// `good_evals` (good-machine frames), `faulty_evals` (faulty-machine
/// frames — faults × cycles minus the tail each early detection skips),
/// `detected`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if any row's width disagrees with the netlist's input count.
pub fn sequential_observed(
    netlist: &Netlist,
    sequence: &[Vec<Logic>],
    faults: &[Fault],
    obs: Option<&mut dyn Collector>,
) -> Result<SequentialDetection, LevelizeError> {
    let mut obs = Obs::new(obs);
    obs.enter("fault_sim.sequential");
    let mut faulty_evals = 0u64;
    let view = FaultyView::new(netlist)?;
    let outputs: Vec<_> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();

    // Good machine trace.
    let mut good_outputs: Vec<Vec<Logic>> = Vec::with_capacity(sequence.len());
    {
        let mut state = vec![Logic::X; view.storage().len()];
        for row in sequence {
            let vals = view.eval_logic(row, &state, None);
            good_outputs.push(outputs.iter().map(|&g| vals[g.index()]).collect());
            state = view.next_state_logic(&vals, None);
        }
    }

    let mut first_detected = vec![None; faults.len()];
    for (fi, &fault) in faults.iter().enumerate() {
        let mut state = vec![Logic::X; view.storage().len()];
        'cycles: for (cycle, row) in sequence.iter().enumerate() {
            let vals = view.eval_logic(row, &state, Some(fault));
            faulty_evals += 1;
            for (oi, &g) in outputs.iter().enumerate() {
                let fv = vals[g.index()];
                let gv = good_outputs[cycle][oi];
                if let (Some(a), Some(b)) = (gv.to_bool(), fv.to_bool()) {
                    if a != b {
                        first_detected[fi] = Some((cycle, oi));
                        break 'cycles;
                    }
                }
            }
            state = view.next_state_logic(&vals, Some(fault));
        }
    }

    let result = SequentialDetection {
        first_detected,
        cycle_count: sequence.len(),
    };
    obs.count("faults", faults.len() as u64);
    obs.count("cycles", sequence.len() as u64);
    obs.count("good_evals", sequence.len() as u64);
    obs.count("faulty_evals", faulty_evals);
    obs.count("detected", result.detected_count() as u64);
    obs.exit();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use dft_netlist::circuits::{binary_counter, shift_register};
    use dft_netlist::{GateId, PortRef};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ones(n: usize, cycles: usize) -> Vec<Vec<Logic>> {
        vec![vec![Logic::One; n]; cycles]
    }

    #[test]
    fn shift_register_faults_need_flush_cycles() {
        let n = shift_register(4);
        // Stuck-at-0 on the serial input's stem.
        let sin = n.primary_inputs()[0];
        let f = Fault::stuck_at_0(PortRef::output(sin));
        // One cycle of 1s: the fault corrupts what q0 will capture, but no
        // output is *known* yet (state starts X), so no detection.
        let r = sequential(&n, &ones(1, 1), &[f]).unwrap();
        assert_eq!(r.first_detected, vec![None]);
        // After 2 cycles, q0 (captured on cycle 1) is observable on cycle 2.
        let r = sequential(&n, &ones(1, 2), &[f]).unwrap();
        assert_eq!(r.first_detected, vec![Some((1, 0))]);
    }

    #[test]
    fn deep_counter_bits_resist_short_sequences() {
        // The paper's sequential-complexity story: testing logic behind
        // bit 3 of a counter requires driving the count high — short
        // sequences cannot do it.
        let n = binary_counter(4);
        let q3 = n.find_output("q3").unwrap();
        let f = Fault::stuck_at_0(PortRef::output(q3));
        let short = sequential(&n, &ones(1, 4), &[f]).unwrap();
        assert_eq!(short.first_detected[0], None, "4 cycles cannot reach q3");
        // It takes 8 counts to set q3, observable the following cycle.
        // But from X state the counter needs... it can never leave X
        // without a reset — the fault stays undetected even in 40 cycles.
        let long = sequential(&n, &ones(1, 40), &[f]).unwrap();
        assert_eq!(
            long.first_detected[0], None,
            "without reset the machine never initializes — the paper's predictability problem"
        );
    }

    #[test]
    fn coverage_improves_with_sequence_length() {
        let n = shift_register(3);
        let faults = universe(&n);
        let mut rng = StdRng::seed_from_u64(2);
        let seq: Vec<Vec<Logic>> = (0..12)
            .map(|_| vec![Logic::from(rng.gen_bool(0.5))])
            .collect();
        let short = sequential(&n, &seq[..2], &faults).unwrap();
        let long = sequential(&n, &seq, &faults).unwrap();
        assert!(long.detected_count() >= short.detected_count());
        assert!(long.coverage() > 0.5, "12 cycles should cover a 3-bit SR");
    }

    #[test]
    fn empty_sequence_detects_nothing() {
        let n = shift_register(2);
        let faults = universe(&n);
        let r = sequential(&n, &[], &faults).unwrap();
        assert_eq!(r.detected_count(), 0);
        let _ = GateId::from_index(0);
    }
}
