//! # dft-fault
//!
//! The single stuck-at fault model and fault simulation for the *tessera*
//! DFT toolkit.
//!
//! §I-A of Williams & Parker defines the model this crate implements: a
//! fault fixes one gate pin at logic 0 or 1; the industry assumption is a
//! single fault at a time (a network of N nets has 3ᴺ joint states — far
//! too many — so "all faults taken two at a time are not assumed").
//!
//! * [`universe`] — enumerates every pin fault (a 1000-gate two-input
//!   network yields the paper's 6000 faults).
//! * [`collapse`] — structural equivalence collapsing (the paper's
//!   fault-equivalencing reference \[36\]-\[47\]) cutting the universe
//!   roughly in half.
//! * [`simulate`] / [`simulate_with_dropping`] — pattern-parallel single-
//!   fault simulation (64 patterns per word).
//! * [`parallel_fault`] — classic parallel-fault simulation (63 faulty
//!   machines share each word with the good machine).
//! * [`deductive`] — deductive fault simulation (the paper's reference
//!   \[100\]): one pass per pattern propagating fault *lists*.
//! * [`sequential`] — three-valued serial fault simulation across clock
//!   cycles for un-scanned sequential machines.
//! * [`ppsfp`] — parallel-pattern single-fault propagation: 64 patterns
//!   per word per fault over a compiled kernel, with cone-restricted
//!   event propagation, fault dropping, and multi-threaded fault
//!   partitioning. The fast engine for large fault-grading workloads.
//!
//! The [`FaultSimEngine`] trait ([`engines`] returns the full roster)
//! puts all of them behind one interface; the engines are cross-checked
//! against each other in this crate's tests (they must agree exactly on
//! combinational circuits).
//!
//! ```
//! use dft_netlist::circuits::c17;
//! use dft_sim::PatternSet;
//! use dft_fault::{universe, simulate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c17 = c17();
//! let faults = universe(&c17);
//! let all32 = PatternSet::from_rows(5, &(0..32u8)
//!     .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
//!     .collect::<Vec<_>>());
//! let result = simulate(&c17, &all32, &faults)?;
//! assert_eq!(result.coverage(), 1.0); // c17 is fully testable
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod collapse;
mod concurrent;
mod deductive;
mod dictionary;
mod engine;
#[allow(clippy::module_inception)]
mod fault;
mod inject;
mod parallel;
mod ppsfp;
mod prefilter;
mod sequential;
mod serial;
pub mod stream;
mod stuck_open;

pub use collapse::{collapse, dominance_collapse, Collapse, DominanceCollapse};
pub use concurrent::{sequential_concurrent, sequential_concurrent_observed, ConcurrentStats};
pub use deductive::{deductive, deductive_observed};
pub use dictionary::FaultDictionary;
pub use engine::{
    engines, ConcurrentEngine, DeductiveEngine, FaultSimEngine, ParallelFaultEngine, PpsfpEngine,
    SequentialEngine, SerialEngine,
};
pub use fault::{output_faults, universe, Fault};
pub use inject::FaultyView;
pub use parallel::{parallel_fault, parallel_fault_observed};
pub use ppsfp::{ppsfp, ppsfp_observed, ppsfp_with_options, Ppsfp, PpsfpOptions};
pub use prefilter::{prefilter_untestable, prefilter_with, Prefilter};
pub use sequential::{sequential, sequential_observed, SequentialDetection};
pub use serial::{
    simulate, simulate_observed, simulate_with_dropping, simulate_with_options, DetectionResult,
    SerialOptions,
};
pub use stuck_open::{
    simulate_stuck_open, stuck_open_universe, OpenKind, StuckOpenDetection, StuckOpenFault,
};
