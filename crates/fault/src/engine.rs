//! A unified interface over every fault-simulation engine.
//!
//! Six independently implemented engines compute fault detection in this
//! crate; [`FaultSimEngine`] puts them behind one call signature so
//! benches, equivalence tests and fault-grading consumers can iterate
//! over the whole roster (see [`engines`]). The engines and their
//! trade-offs:
//!
//! | engine | algorithm | word packing | lane width | dropping | threads |
//! |---|---|---|---|---|---|
//! | [`SerialEngine`] | fault-serial, pattern-parallel full re-evaluation | wide pattern words | 64 (default) / 256 / 512 via [`SerialOptions::lane_width`] | optional | 1 |
//! | [`ParallelFaultEngine`] | good machine + 63 faulty machines per word | 63 faults/word | 64 | yes | 1 |
//! | [`DeductiveEngine`] | fault-list propagation (Armstrong) | none (set algebra) | n/a | n/a | 1 |
//! | [`SequentialEngine`] | 3-valued cycle-serial, fault-serial | none | n/a | yes | 1 |
//! | [`ConcurrentEngine`] | diverged-machine-only re-simulation | none | n/a | yes | 1 |
//! | [`PpsfpEngine`] | cone-restricted event diff vs. compiled baseline | wide pattern words | auto (default) / 64 / 256 / 512 via [`PpsfpOptions::lane_width`] | optional | N |
//!
//! The two wide engines share [`dft_sim::LaneWidth`]: a wide block
//! `[u64; W]` carries `64 × W` pattern lanes through one levelized walk
//! (or one event propagation), and every width produces bit-identical
//! detection results — the knob trades per-op dispatch overhead against
//! wasted tail-lane work.
//!
//! The two sequential engines interpret the pattern set as a cycle
//! *sequence* from an all-X start; on purely combinational netlists (no
//! storage) this coincides exactly with the combinational engines —
//! which is the common ground the cross-engine equivalence tests stand
//! on. On sequential netlists their detections are a conservative subset
//! (an X-masked output never counts as detected).

use dft_netlist::{LevelizeError, Netlist};
use dft_obs::Collector;
use dft_sim::{Logic, PatternSet};

use crate::serial::SerialOptions;
use crate::{
    deductive_observed, parallel_fault_observed, ppsfp_observed, sequential_concurrent_observed,
    sequential_observed, simulate_observed, DetectionResult, Fault, PpsfpOptions,
};

/// A fault-simulation engine: patterns × faults → per-fault first
/// detection.
///
/// All implementations agree exactly on combinational netlists; see the
/// module docs for the sequential caveat.
///
/// [`FaultSimEngine::run_with`] is the one required method — the uniform
/// observed signature every engine in the workspace exposes. Each engine
/// opens a `fault_sim.<name>` span on the collector and flushes its
/// effort counters (`faults`, `patterns`, `detected`, plus per-engine
/// work counters) once per run; passing `None` costs nothing measurable.
pub trait FaultSimEngine {
    /// Short stable identifier (used in bench output and JSON records).
    fn name(&self) -> &'static str;

    /// Fault-simulates `faults` against `patterns`, feeding telemetry to
    /// an optional collector.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    fn run_with(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Result<DetectionResult, LevelizeError>;

    /// Fault-simulates `faults` against `patterns` (no telemetry).
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    fn run(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
    ) -> Result<DetectionResult, LevelizeError> {
        self.run_with(netlist, patterns, faults, None)
    }

    /// Indices of the faults `patterns` detects — the invariant quantity
    /// every engine must agree on.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    fn detected_set(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
    ) -> Result<Vec<usize>, LevelizeError> {
        Ok(self
            .run(netlist, patterns, faults)?
            .first_detected
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_some().then_some(i))
            .collect())
    }
}

/// The pattern-parallel fault-serial reference engine ([`crate::simulate`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialEngine {
    /// Engine options (dropping on by default).
    pub options: SerialOptions,
}

impl FaultSimEngine for SerialEngine {
    fn name(&self) -> &'static str {
        if self.options.fault_dropping {
            "serial"
        } else {
            "serial_nodrop"
        }
    }

    fn run_with(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Result<DetectionResult, LevelizeError> {
        simulate_observed(netlist, patterns, faults, self.options, obs)
    }
}

/// Classic 63-faulty-machines-per-word simulation ([`crate::parallel_fault`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelFaultEngine;

impl FaultSimEngine for ParallelFaultEngine {
    fn name(&self) -> &'static str {
        "parallel_fault"
    }

    fn run_with(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Result<DetectionResult, LevelizeError> {
        parallel_fault_observed(netlist, patterns, faults, obs)
    }
}

/// Deductive fault-list propagation ([`crate::deductive`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct DeductiveEngine;

impl FaultSimEngine for DeductiveEngine {
    fn name(&self) -> &'static str {
        "deductive"
    }

    fn run_with(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Result<DetectionResult, LevelizeError> {
        deductive_observed(netlist, patterns, faults, obs)
    }
}

/// Three-valued cycle-serial simulation ([`crate::sequential`]) applied to
/// the pattern set as a cycle sequence. Exact on combinational netlists.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialEngine;

fn as_sequence(patterns: &PatternSet) -> Vec<Vec<Logic>> {
    patterns
        .iter()
        .map(|row| row.into_iter().map(Logic::from).collect())
        .collect()
}

impl FaultSimEngine for SequentialEngine {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn run_with(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Result<DetectionResult, LevelizeError> {
        let d = sequential_observed(netlist, &as_sequence(patterns), faults, obs)?;
        Ok(DetectionResult {
            first_detected: d
                .first_detected
                .iter()
                .map(|o| o.map(|(cycle, _)| cycle))
                .collect(),
            pattern_count: patterns.len(),
        })
    }
}

/// Concurrent-style diverged-machine simulation
/// ([`crate::sequential_concurrent`]) applied to the pattern set as a
/// cycle sequence. Exact on combinational netlists.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConcurrentEngine;

impl FaultSimEngine for ConcurrentEngine {
    fn name(&self) -> &'static str {
        "concurrent"
    }

    fn run_with(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Result<DetectionResult, LevelizeError> {
        let (d, _stats) =
            sequential_concurrent_observed(netlist, &as_sequence(patterns), faults, obs)?;
        Ok(DetectionResult {
            first_detected: d
                .first_detected
                .iter()
                .map(|o| o.map(|(cycle, _)| cycle))
                .collect(),
            pattern_count: patterns.len(),
        })
    }
}

/// The PPSFP engine ([`crate::ppsfp`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PpsfpEngine {
    /// Engine options (auto threads + dropping by default).
    pub options: PpsfpOptions,
}

impl FaultSimEngine for PpsfpEngine {
    fn name(&self) -> &'static str {
        "ppsfp"
    }

    fn run_with(
        &self,
        netlist: &Netlist,
        patterns: &PatternSet,
        faults: &[Fault],
        obs: Option<&mut dyn Collector>,
    ) -> Result<DetectionResult, LevelizeError> {
        ppsfp_observed(netlist, patterns, faults, self.options, obs)
    }
}

/// The full engine roster, one instance of each of the six engines with
/// default options.
#[must_use]
pub fn engines() -> Vec<Box<dyn FaultSimEngine>> {
    vec![
        Box::new(SerialEngine::default()),
        Box::new(ParallelFaultEngine),
        Box::new(DeductiveEngine),
        Box::new(SequentialEngine),
        Box::new(ConcurrentEngine),
        Box::new(PpsfpEngine::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use dft_netlist::circuits::c17;

    #[test]
    fn all_six_engines_agree_on_c17() {
        let n = c17();
        let faults = universe(&n);
        let rows: Vec<Vec<bool>> = (0..32u8)
            .map(|v| (0..5).map(|i| v >> i & 1 == 1).collect())
            .collect();
        let p = PatternSet::from_rows(5, &rows);
        let reference = SerialEngine::default()
            .detected_set(&n, &p, &faults)
            .unwrap();
        for eng in engines() {
            assert_eq!(
                eng.detected_set(&n, &p, &faults).unwrap(),
                reference,
                "{} disagrees",
                eng.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = engines().iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
