//! Fault definition and universe enumeration.

use std::fmt;

use dft_netlist::{GateKind, Netlist, Pin, PortRef};

/// A single stuck-at fault: one gate pin fixed at 0 or 1 (paper §I-A,
/// Fig. 1).
///
/// ```
/// use dft_netlist::{GateId, Pin, PortRef};
/// use dft_fault::Fault;
///
/// let f = Fault::stuck_at_1(PortRef::input(GateId::from_index(2), 0));
/// assert_eq!(f.to_string(), "g2.in0 s-a-1");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// The faulted pin.
    pub site: PortRef,
    /// The value the pin is stuck at.
    pub stuck: bool,
}

impl Fault {
    /// A stuck-at-0 fault at `site`.
    #[must_use]
    pub fn stuck_at_0(site: PortRef) -> Self {
        Fault { site, stuck: false }
    }

    /// A stuck-at-1 fault at `site`.
    #[must_use]
    pub fn stuck_at_1(site: PortRef) -> Self {
        Fault { site, stuck: true }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s-a-{}", self.site, u8::from(self.stuck))
    }
}

/// Enumerates the full single-stuck-at universe of `netlist`: for every
/// logic gate, both polarities on the output pin and on each input pin.
///
/// Primary-input *stems* are covered by the input pins of the gates they
/// feed plus the `Input` gate's own output pin. Constants are excluded
/// (a stuck constant is either benign or equivalent to the consuming-pin
/// fault). A 1000-gate two-input network yields the paper's "maximum
/// number of single stuck-at faults … 6000".
#[must_use]
pub fn universe(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (id, gate) in netlist.iter() {
        match gate.kind() {
            GateKind::Const0 | GateKind::Const1 => continue,
            GateKind::Input => {
                for stuck in [false, true] {
                    faults.push(Fault {
                        site: PortRef::output(id),
                        stuck,
                    });
                }
            }
            _ => {
                for pin in 0..gate.fanin() {
                    for stuck in [false, true] {
                        faults.push(Fault {
                            site: PortRef::input(id, pin as u8),
                            stuck,
                        });
                    }
                }
                for stuck in [false, true] {
                    faults.push(Fault {
                        site: PortRef::output(id),
                        stuck,
                    });
                }
            }
        }
    }
    faults
}

/// Enumerates only the output-pin faults (both polarities per gate) —
/// the "checkpoint-lite" universe some experiments sweep for speed.
#[must_use]
pub fn output_faults(netlist: &Netlist) -> Vec<Fault> {
    universe(netlist)
        .into_iter()
        .filter(|f| f.site.pin == Pin::Output)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::c17;
    use dft_netlist::{GateKind, Netlist};

    #[test]
    fn two_input_gate_network_matches_paper_count() {
        // The paper: 1000 two-input gates → at most 6000 faults. Scale
        // down: 10 two-input gates (NAND chain) → 60 gate-pin faults,
        // plus 2 per primary input.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let mut prev = (a, b);
        let mut gates = 0;
        while gates < 10 {
            let g = n.add_gate(GateKind::Nand, &[prev.0, prev.1]).unwrap();
            prev = (prev.1, g);
            gates += 1;
        }
        let faults = universe(&n);
        let gate_pin_faults = faults
            .iter()
            .filter(|f| !matches!(n.gate(f.site.gate).kind(), GateKind::Input))
            .count();
        assert_eq!(gate_pin_faults, 60);
        assert_eq!(faults.len(), 60 + 4);
    }

    #[test]
    fn c17_universe_size() {
        // 6 NAND gates × (2 inputs + 1 output) × 2 + 5 PIs × 2 = 46.
        let faults = universe(&c17());
        assert_eq!(faults.len(), 46);
    }

    #[test]
    fn constants_are_skipped() {
        let mut n = Netlist::new("t");
        let c = n.add_const(true);
        let a = n.add_input("a");
        let g = n.add_gate(GateKind::And, &[a, c]).unwrap();
        n.mark_output(g, "y").unwrap();
        let faults = universe(&n);
        assert!(faults.iter().all(|f| f.site.gate != c));
        // input gate: 2, AND gate: 6
        assert_eq!(faults.len(), 8);
    }

    #[test]
    fn output_faults_subset() {
        let n = c17();
        let of = output_faults(&n);
        assert_eq!(of.len(), (6 + 5) * 2);
        assert!(of.iter().all(|f| f.site.pin == Pin::Output));
    }

    #[test]
    fn display_format() {
        let f = Fault::stuck_at_0(PortRef::output(dft_netlist::GateId::from_index(5)));
        assert_eq!(f.to_string(), "g5.out s-a-0");
    }
}
