//! Classic parallel-fault simulation: 63 faulty machines per word.
//!
//! §I-B of the paper describes fault simulation as "applying every given
//! test pattern to a fault-free machine and to each of the 3000 copies of
//! the good machine", i.e. 3001 good-machine simulations. Parallel-fault
//! simulation packs the good machine in lane 0 and 63 faulty machines in
//! the remaining lanes of each word, costing one pass per 63 faults per
//! pattern.

use dft_netlist::{GateKind, LevelizeError, Netlist, Pin};
use dft_obs::{Collector, Obs};
use dft_sim::word::{apply_stuck_mask, fold_word};
use dft_sim::PatternSet;

use crate::{DetectionResult, Fault};

/// Fault-simulates with the parallel-fault method.
///
/// Produces the same [`DetectionResult`] as [`crate::simulate`] (the two
/// engines are cross-checked in tests); use whichever fits the workload —
/// parallel-fault wins when patterns are few and faults are many.
///
/// Storage elements are held at 0 (combinational usage).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn parallel_fault(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
) -> Result<DetectionResult, LevelizeError> {
    parallel_fault_observed(netlist, patterns, faults, None)
}

/// [`parallel_fault`] feeding telemetry to an optional collector.
///
/// Opens a `fault_sim.parallel_fault` span with counters `faults`,
/// `patterns`, `group_evals` (63-fault machine-group passes),
/// `words_folded` (one per gate per group pass), `detected`, `dropped`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn parallel_fault_observed(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    obs: Option<&mut dyn Collector>,
) -> Result<DetectionResult, LevelizeError> {
    let mut obs = Obs::new(obs);
    obs.enter("fault_sim.parallel_fault");
    let lv = netlist.levelize()?;
    let storage = netlist.storage_elements();
    let outputs: Vec<_> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();
    let folds_per_group: u64 = lv
        .order()
        .iter()
        .filter(|&&id| !netlist.gate(id).kind().is_source())
        .count() as u64;
    let mut first_detected: Vec<Option<usize>> = vec![None; faults.len()];
    let mut live: Vec<usize> = (0..faults.len()).collect();
    let mut group_evals = 0u64;

    for p in 0..patterns.len() {
        if live.is_empty() {
            break;
        }
        let row = patterns.get(p);
        // Chunk live faults into groups of 63 (lane 0 = good machine).
        let mut remaining: Vec<usize> = Vec::with_capacity(live.len());
        for group in live.chunks(63) {
            let vals = eval_group(netlist, &lv, &storage, &row, faults, group);
            group_evals += 1;
            // Good machine bit is lane 0; fault k of the group is lane k+1.
            for (k, &fi) in group.iter().enumerate() {
                let lane = k + 1;
                let mut detected = false;
                for &g in &outputs {
                    let w = vals[g.index()];
                    let good = w & 1;
                    let faulty = w >> lane & 1;
                    if good != faulty {
                        detected = true;
                        break;
                    }
                }
                if detected {
                    first_detected[fi] = Some(p);
                } else {
                    remaining.push(fi);
                }
            }
        }
        live = remaining;
    }

    let result = DetectionResult {
        first_detected,
        pattern_count: patterns.len(),
    };
    let detected = result.detected_count() as u64;
    obs.count("faults", faults.len() as u64);
    obs.count("patterns", patterns.len() as u64);
    obs.count("group_evals", group_evals);
    obs.count("words_folded", group_evals * folds_per_group);
    obs.count("detected", detected);
    obs.count("dropped", detected); // this engine always drops on detection
    obs.exit();
    Ok(result)
}

/// Evaluates one pattern with the good machine in lane 0 and each group
/// fault injected into its own lane.
fn eval_group(
    netlist: &Netlist,
    lv: &dft_netlist::Levelization,
    storage: &[dft_netlist::GateId],
    row: &[bool],
    faults: &[Fault],
    group: &[usize],
) -> Vec<u64> {
    let mut vals = vec![0u64; netlist.gate_count()];
    for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
        vals[pi.index()] = if row[i] { u64::MAX } else { 0 };
    }
    for &s in storage {
        vals[s.index()] = 0;
    }
    for (id, gate) in netlist.iter() {
        if gate.kind() == GateKind::Const1 {
            vals[id.index()] = u64::MAX;
        }
    }
    // Per-lane injection masks on source outputs.
    for (k, &fi) in group.iter().enumerate() {
        let f = faults[fi];
        if f.site.pin == Pin::Output && netlist.gate(f.site.gate).kind().is_source() {
            let mask = 1u64 << (k + 1);
            let idx = f.site.gate.index();
            vals[idx] = apply_stuck_mask(vals[idx], mask, f.stuck);
        }
    }
    for &id in lv.order() {
        let gate = netlist.gate(id);
        if gate.kind().is_source() {
            continue;
        }
        // Gather operands, applying any input-pin fault lanes.
        let mut words: Vec<u64> = gate.inputs().iter().map(|&s| vals[s.index()]).collect();
        for (k, &fi) in group.iter().enumerate() {
            let f = faults[fi];
            if f.site.gate == id {
                if let Pin::Input(pin) = f.site.pin {
                    let mask = 1u64 << (k + 1);
                    words[pin as usize] = apply_stuck_mask(words[pin as usize], mask, f.stuck);
                }
            }
        }
        let mut out = fold_word(gate.kind(), words.iter().copied());
        for (k, &fi) in group.iter().enumerate() {
            let f = faults[fi];
            if f.site.gate == id && f.site.pin == Pin::Output {
                out = apply_stuck_mask(out, 1u64 << (k + 1), f.stuck);
            }
        }
        vals[id.index()] = out;
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, universe};
    use dft_netlist::circuits::{c17, full_adder, majority, parity_tree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exhaustive_patterns(n: usize) -> PatternSet {
        let rows: Vec<Vec<bool>> = (0..1usize << n)
            .map(|v| (0..n).map(|i| v >> i & 1 == 1).collect())
            .collect();
        PatternSet::from_rows(n, &rows)
    }

    #[test]
    fn agrees_with_pattern_parallel_engine() {
        for n in [c17(), full_adder(), majority(), parity_tree(5)] {
            let faults = universe(&n);
            let k = n.primary_inputs().len();
            let p = exhaustive_patterns(k);
            let a = simulate(&n, &p, &faults).unwrap();
            let b = parallel_fault(&n, &p, &faults).unwrap();
            assert_eq!(a, b, "engines disagree on {}", n.name());
        }
    }

    #[test]
    fn agrees_on_random_patterns_with_many_faults() {
        let n = dft_netlist::circuits::random_combinational(12, 150, 4);
        let faults = universe(&n);
        assert!(faults.len() > 63, "exercise multi-group path");
        let mut rng = StdRng::seed_from_u64(8);
        let p = PatternSet::random(12, 30, &mut rng);
        let a = simulate(&n, &p, &faults).unwrap();
        let b = parallel_fault(&n, &p, &faults).unwrap();
        assert_eq!(a, b);
    }
}
