//! Classic parallel-fault simulation: 63 faulty machines per word.
//!
//! §I-B of the paper describes fault simulation as "applying every given
//! test pattern to a fault-free machine and to each of the 3000 copies of
//! the good machine", i.e. 3001 good-machine simulations. Parallel-fault
//! simulation packs the good machine in lane 0 and 63 faulty machines in
//! the remaining lanes of each word, costing one pass per 63 faults per
//! pattern.

use dft_netlist::{GateKind, LevelizeError, Netlist, Pin};
use dft_obs::{Collector, Obs};
use dft_sim::word::{apply_stuck_mask, fold_word};
use dft_sim::PatternSet;

use crate::{DetectionResult, Fault};

/// Fault-simulates with the parallel-fault method.
///
/// Produces the same [`DetectionResult`] as [`crate::simulate`] (the two
/// engines are cross-checked in tests); use whichever fits the workload —
/// parallel-fault wins when patterns are few and faults are many.
///
/// Storage elements are held at 0 (combinational usage).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn parallel_fault(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
) -> Result<DetectionResult, LevelizeError> {
    parallel_fault_observed(netlist, patterns, faults, None)
}

/// [`parallel_fault`] feeding telemetry to an optional collector.
///
/// Opens a `fault_sim.parallel_fault` span with counters `faults`,
/// `patterns`, `group_evals` (63-fault machine-group passes),
/// `words_folded` (one per gate per group pass), `detected`, `dropped`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn parallel_fault_observed(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    obs: Option<&mut dyn Collector>,
) -> Result<DetectionResult, LevelizeError> {
    let mut obs = Obs::new(obs);
    obs.enter("fault_sim.parallel_fault");
    let lv = netlist.levelize()?;
    let storage = netlist.storage_elements();
    let outputs: Vec<_> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();
    // Hoisted out of the pattern × group loops: the combinational
    // evaluation order, the constant-one sources, and the scratch arrays
    // every group evaluation reuses.
    let comb_order: Vec<dft_netlist::GateId> = lv
        .order()
        .iter()
        .copied()
        .filter(|&id| !netlist.gate(id).kind().is_source())
        .collect();
    let const_ones: Vec<usize> = netlist
        .iter()
        .filter(|(_, g)| g.kind() == GateKind::Const1)
        .map(|(id, _)| id.index())
        .collect();
    let folds_per_group = comb_order.len() as u64;
    let mut scratch = GroupScratch::new(netlist.gate_count());
    let mut first_detected: Vec<Option<usize>> = vec![None; faults.len()];
    let mut live: Vec<usize> = (0..faults.len()).collect();
    let mut group_evals = 0u64;

    for p in 0..patterns.len() {
        if live.is_empty() {
            break;
        }
        let row = patterns.get(p);
        // Chunk live faults into groups of 63 (lane 0 = good machine).
        let mut remaining: Vec<usize> = Vec::with_capacity(live.len());
        for group in live.chunks(63) {
            eval_group(
                netlist,
                &comb_order,
                &const_ones,
                &storage,
                &row,
                faults,
                group,
                &mut scratch,
            );
            group_evals += 1;
            // Good machine bit is lane 0; fault k of the group is lane
            // k+1. One XOR against the broadcast good bit per output word
            // yields every disagreeing lane at once.
            let mut diff_lanes = 0u64;
            for &g in &outputs {
                let w = scratch.vals[g.index()];
                diff_lanes |= w ^ 0u64.wrapping_sub(w & 1);
            }
            for (k, &fi) in group.iter().enumerate() {
                if diff_lanes >> (k + 1) & 1 == 1 {
                    first_detected[fi] = Some(p);
                } else {
                    remaining.push(fi);
                }
            }
        }
        live = remaining;
    }

    let result = DetectionResult {
        first_detected,
        pattern_count: patterns.len(),
    };
    let detected = result.detected_count() as u64;
    obs.count("faults", faults.len() as u64);
    obs.count("patterns", patterns.len() as u64);
    obs.count("group_evals", group_evals);
    obs.count("words_folded", group_evals * folds_per_group);
    obs.count("detected", detected);
    obs.count("dropped", detected); // this engine always drops on detection
    obs.exit();
    Ok(result)
}

/// Reusable scratch state for [`eval_group`]: the packed value array plus
/// an epoch-stamped map of gates carrying an injected fault, so the hot
/// gate loop costs one stamp compare instead of rescanning the group.
struct GroupScratch {
    vals: Vec<u64>,
    /// `faulted[g] == epoch` iff gate `g` hosts an injected fault of the
    /// current group (never cleared; the epoch bump invalidates it).
    faulted: Vec<u32>,
    epoch: u32,
    /// Operand buffer for the rare faulted-gate path.
    operands: Vec<u64>,
}

impl GroupScratch {
    fn new(gate_count: usize) -> Self {
        GroupScratch {
            vals: vec![0; gate_count],
            faulted: vec![0; gate_count],
            epoch: 0,
            operands: Vec::new(),
        }
    }
}

/// Evaluates one pattern with the good machine in lane 0 and each group
/// fault injected into its own lane, into `scratch.vals`.
///
/// The fault-lane map is computed once per group (63 stamp writes); the
/// per-gate loop then folds operand words straight from the value array
/// — no allocation, no group rescan — and only gates whose stamp matches
/// the epoch pay for per-lane mask application.
#[allow(clippy::too_many_arguments)]
fn eval_group(
    netlist: &Netlist,
    comb_order: &[dft_netlist::GateId],
    const_ones: &[usize],
    storage: &[dft_netlist::GateId],
    row: &[bool],
    faults: &[Fault],
    group: &[usize],
    scratch: &mut GroupScratch,
) {
    scratch.epoch += 1;
    let e = scratch.epoch;
    let vals = &mut scratch.vals;
    for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
        vals[pi.index()] = if row[i] { u64::MAX } else { 0 };
    }
    for &s in storage {
        vals[s.index()] = 0;
    }
    for &c in const_ones {
        vals[c] = u64::MAX;
    }
    // Per-lane injection masks on source outputs; non-source sites are
    // stamped for the gate loop below.
    for (k, &fi) in group.iter().enumerate() {
        let f = faults[fi];
        if f.site.pin == Pin::Output && netlist.gate(f.site.gate).kind().is_source() {
            let mask = 1u64 << (k + 1);
            let idx = f.site.gate.index();
            vals[idx] = apply_stuck_mask(vals[idx], mask, f.stuck);
        } else {
            scratch.faulted[f.site.gate.index()] = e;
        }
    }
    for &id in comb_order {
        let gate = netlist.gate(id);
        let out = if scratch.faulted[id.index()] != e {
            // Fault-free gate (the overwhelmingly common case): fold the
            // operand words straight out of the value array.
            fold_word(gate.kind(), gate.inputs().iter().map(|&s| vals[s.index()]))
        } else {
            // Gate hosts at least one injected fault: copy the operands
            // into the reusable buffer, apply the input-pin lanes, fold,
            // then apply the output-pin lanes.
            scratch.operands.clear();
            scratch
                .operands
                .extend(gate.inputs().iter().map(|&s| vals[s.index()]));
            let mut out = 0u64;
            let mut deferred_output_masks = 0u64; // (mask, stuck) pairs are rare; see below
            let mut deferred_stuck_one = 0u64;
            for (k, &fi) in group.iter().enumerate() {
                let f = faults[fi];
                if f.site.gate != id {
                    continue;
                }
                let mask = 1u64 << (k + 1);
                match f.site.pin {
                    Pin::Input(pin) => {
                        scratch.operands[pin as usize] =
                            apply_stuck_mask(scratch.operands[pin as usize], mask, f.stuck);
                    }
                    Pin::Output => {
                        deferred_output_masks |= mask;
                        if f.stuck {
                            deferred_stuck_one |= mask;
                        }
                    }
                }
            }
            out |= fold_word(gate.kind(), scratch.operands.iter().copied());
            // Output-pin lanes override whatever the fold produced.
            out = (out & !deferred_output_masks) | deferred_stuck_one;
            out
        };
        vals[id.index()] = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, universe};
    use dft_netlist::circuits::{c17, full_adder, majority, parity_tree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exhaustive_patterns(n: usize) -> PatternSet {
        let rows: Vec<Vec<bool>> = (0..1usize << n)
            .map(|v| (0..n).map(|i| v >> i & 1 == 1).collect())
            .collect();
        PatternSet::from_rows(n, &rows)
    }

    #[test]
    fn agrees_with_pattern_parallel_engine() {
        for n in [c17(), full_adder(), majority(), parity_tree(5)] {
            let faults = universe(&n);
            let k = n.primary_inputs().len();
            let p = exhaustive_patterns(k);
            let a = simulate(&n, &p, &faults).unwrap();
            let b = parallel_fault(&n, &p, &faults).unwrap();
            assert_eq!(a, b, "engines disagree on {}", n.name());
        }
    }

    #[test]
    fn agrees_on_random_patterns_with_many_faults() {
        let n = dft_netlist::circuits::random_combinational(12, 150, 4);
        let faults = universe(&n);
        assert!(faults.len() > 63, "exercise multi-group path");
        let mut rng = StdRng::seed_from_u64(8);
        let p = PatternSet::random(12, 30, &mut rng);
        let a = simulate(&n, &p, &faults).unwrap();
        let b = parallel_fault(&n, &p, &faults).unwrap();
        assert_eq!(a, b);
    }
}
