//! Pattern-parallel single-fault simulation (the reference engine).
//!
//! # Detection semantics: first detection vs. all detections
//!
//! Every combinational engine in this crate reports **first detection**:
//! `first_detected[f]` is the earliest pattern whose response differs at
//! any primary output. The engines differ only in how much work they do
//! to get there:
//!
//! * this serial engine and [`crate::ppsfp`] *drop* a detected fault and
//!   never look at later patterns (dropping is optional here, see
//!   [`SerialOptions`] — the result is identical either way, only the
//!   work changes);
//! * [`crate::deductive`] computes the *complete* per-pattern detection
//!   relation as a by-product of its fault-list algebra and then reduces
//!   it to first detection (see the note in `deductive.rs`);
//! * [`crate::FaultDictionary`] is the consumer that genuinely needs
//!   **all** detections — every `(pattern, output)` mismatch — so it is
//!   built from [`crate::Ppsfp::run_syndromes`], which never drops.

use dft_netlist::{LevelizeError, Netlist};
use dft_obs::{Collector, Obs};
use dft_sim::{LaneWidth, PatternSet};

use crate::{Fault, FaultyView};

/// Tuning knobs for the serial engine.
///
/// `#[non_exhaustive]`: construct via [`Default`] and the `with_*`
/// builders so new knobs can be added without breaking downstream
/// crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct SerialOptions {
    /// Stop simulating a fault once one pattern detects it (default
    /// `true`). The [`DetectionResult`] is identical either way — first
    /// detection is recorded regardless — but with dropping off the
    /// engine performs the full faults × blocks work, which makes it the
    /// honest baseline when measuring what dropping and cone restriction
    /// save (the same knob PPSFP exposes in
    /// [`crate::PpsfpOptions::fault_dropping`]).
    pub fault_dropping: bool,
    /// Patterns per faulty-machine walk (default [`LaneWidth::W64`] —
    /// unlike PPSFP this engine is the *reference*, so it defaults to
    /// the classic narrow walk rather than auto-widening; `Auto`,
    /// `W256` and `W512` opt into the wide scratch path, which
    /// evaluates several 64-pattern blocks per levelized walk with
    /// identical results).
    pub lane_width: LaneWidth,
}

impl Default for SerialOptions {
    fn default() -> Self {
        SerialOptions {
            fault_dropping: true,
            lane_width: LaneWidth::W64,
        }
    }
}

impl SerialOptions {
    /// Defaults (same as [`Default`], spelled for builder chains).
    #[must_use]
    pub fn new() -> Self {
        SerialOptions::default()
    }

    /// Sets [`SerialOptions::fault_dropping`].
    #[must_use]
    pub fn with_fault_dropping(mut self, fault_dropping: bool) -> Self {
        self.fault_dropping = fault_dropping;
        self
    }

    /// Sets [`SerialOptions::lane_width`].
    #[must_use]
    pub fn with_lane_width(mut self, lane_width: LaneWidth) -> Self {
        self.lane_width = lane_width;
        self
    }
}

/// Per-fault detection outcome of a fault-simulation run.
///
/// Fault *f* is detected by pattern *p* if any primary output differs
/// between the good machine and the machine with *f* injected (the
/// paper's test criterion, Fig. 1). `first_detected[f]` records the
/// earliest such *p*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectionResult {
    /// For each fault (in input order): the first detecting pattern.
    pub first_detected: Vec<Option<usize>>,
    /// Number of patterns simulated.
    pub pattern_count: usize,
}

impl DetectionResult {
    /// Number of detected faults.
    #[must_use]
    pub fn detected_count(&self) -> usize {
        self.first_detected.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage: detected / total (the paper's §I-A definition —
    /// "the number of faults that are tested divided by the number of
    /// faults that are assumed").
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.first_detected.is_empty() {
            1.0
        } else {
            self.detected_count() as f64 / self.first_detected.len() as f64
        }
    }

    /// Indices of faults that no pattern detected.
    #[must_use]
    pub fn undetected(&self) -> Vec<usize> {
        self.first_detected
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_none().then_some(i))
            .collect()
    }

    /// Coverage as a function of pattern count: element *k* is the
    /// fraction of faults detected by the first *k+1* patterns. Used for
    /// the random-pattern coverage curves of experiment E11.
    #[must_use]
    pub fn coverage_curve(&self) -> Vec<f64> {
        let total = self.first_detected.len().max(1) as f64;
        let mut per_pattern = vec![0usize; self.pattern_count];
        for d in self.first_detected.iter().flatten() {
            per_pattern[*d] += 1;
        }
        let mut acc = 0usize;
        per_pattern
            .iter()
            .map(|&k| {
                acc += k;
                acc as f64 / total
            })
            .collect()
    }
}

/// Fault-simulates `faults` against `patterns`, pattern-parallel
/// (64 lanes per word), fault-serial.
///
/// Storage elements are held at state 0 in every frame — use
/// [`crate::sequential`] for true multi-cycle behaviour, or extract a
/// combinational test view with `dft-scan` first (the paper's whole
/// program).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn simulate(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
) -> Result<DetectionResult, LevelizeError> {
    simulate_with_dropping(netlist, patterns, faults)
}

/// Same as [`simulate`]; the name documents that faults are dropped from
/// further simulation as soon as one pattern detects them (the standard
/// run-time optimization).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn simulate_with_dropping(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
) -> Result<DetectionResult, LevelizeError> {
    simulate_with_options(netlist, patterns, faults, SerialOptions::default())
}

/// [`simulate`] with explicit [`SerialOptions`] (see the module docs for
/// when turning dropping off is useful).
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn simulate_with_options(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    options: SerialOptions,
) -> Result<DetectionResult, LevelizeError> {
    simulate_observed(netlist, patterns, faults, options, None)
}

/// [`simulate_with_options`] feeding telemetry to an optional collector —
/// the uniform observed entry point every engine in this crate exposes.
///
/// Opens a `fault_sim.serial` span and flushes effort counters once per
/// run (`faults`, `patterns`, `good_evals`, `faulty_evals`, `detected`,
/// `dropped`); the hot loop itself only bumps local integers, so passing
/// `None` costs nothing measurable.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if the pattern width disagrees with the netlist.
pub fn simulate_observed(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    options: SerialOptions,
    obs: Option<&mut dyn Collector>,
) -> Result<DetectionResult, LevelizeError> {
    match options.lane_width.resolve_words(patterns.block_count()) {
        8 => simulate_width::<8>(netlist, patterns, faults, options, obs),
        4 => simulate_width::<4>(netlist, patterns, faults, options, obs),
        _ => simulate_width::<1>(netlist, patterns, faults, options, obs),
    }
}

/// [`simulate_observed`] monomorphized for one wide-block width: each
/// levelized faulty-machine walk covers `64 × W` patterns. Results are
/// bit-identical across widths (the wide pattern index decomposes as
/// `(group × W + word) × 64 + lane`, scanned in that order).
fn simulate_width<const W: usize>(
    netlist: &Netlist,
    patterns: &PatternSet,
    faults: &[Fault],
    options: SerialOptions,
    obs: Option<&mut dyn Collector>,
) -> Result<DetectionResult, LevelizeError> {
    let mut obs = Obs::new(obs);
    obs.enter("fault_sim.serial");
    let view = FaultyView::new(netlist)?;
    let state = vec![[0u64; W]; view.storage().len()];
    let outputs: Vec<_> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();

    let nb = patterns.block_count();
    let groups = nb.div_ceil(W);
    // Primary inputs packed per wide group (tail words zero-padded) and
    // the per-word valid-lane masks.
    let mut pi_wide: Vec<Vec<[u64; W]>> = Vec::with_capacity(groups);
    let mut lane_masks: Vec<[u64; W]> = Vec::with_capacity(groups);
    for g in 0..groups {
        let mut pis = vec![[0u64; W]; patterns.input_count()];
        let mut mask = [0u64; W];
        for w in 0..W {
            let b = g * W + w;
            if b < nb {
                for (i, &word) in patterns.block(b).iter().enumerate() {
                    pis[i][w] = word;
                }
                let lanes = patterns.lanes_in_block(b);
                mask[w] = if lanes == 64 {
                    u64::MAX
                } else {
                    (1u64 << lanes) - 1
                };
            }
        }
        pi_wide.push(pis);
        lane_masks.push(mask);
    }

    // Good-machine responses per wide group, only at the primary outputs.
    let good: Vec<Vec<[u64; W]>> = pi_wide
        .iter()
        .map(|pis| {
            let vals = view.eval_wide::<W>(pis, &state, None);
            outputs.iter().map(|&g| vals[g.index()]).collect()
        })
        .collect();

    let mut faulty_evals = 0u64;
    let mut dropped = 0u64;
    let mut first_detected = vec![None; faults.len()];
    let mut live: Vec<usize> = (0..faults.len()).collect();
    for g in 0..groups {
        if live.is_empty() {
            break;
        }
        // Narrow-block equivalents this walk covers (ragged tail group
        // counts only the real blocks), keeping `faulty_evals`
        // comparable across lane widths.
        let blocks_covered = (nb - g * W).min(W) as u64;
        let mask = &lane_masks[g];
        live.retain(|&fi| {
            let vals = view.eval_wide::<W>(&pi_wide[g], &state, Some(faults[fi]));
            faulty_evals += blocks_covered;
            let mut diff = [0u64; W];
            for (oi, &gate) in outputs.iter().enumerate() {
                for w in 0..W {
                    diff[w] |= (vals[gate.index()][w] ^ good[g][oi][w]) & mask[w];
                }
            }
            let Some(w) = diff.iter().position(|&d| d != 0) else {
                return true;
            };
            if first_detected[fi].is_none() {
                let lane = diff[w].trailing_zeros() as usize;
                first_detected[fi] = Some((g * W + w) * 64 + lane);
            }
            if options.fault_dropping {
                dropped += 1;
                false
            } else {
                true
            }
        });
    }

    let result = DetectionResult {
        first_detected,
        pattern_count: patterns.len(),
    };
    obs.count("faults", faults.len() as u64);
    obs.count("patterns", patterns.len() as u64);
    obs.count("good_evals", nb as u64);
    obs.count("lane_words", W as u64);
    obs.count("faulty_evals", faulty_evals);
    obs.count("detected", result.detected_count() as u64);
    obs.count("dropped", dropped);
    obs.gauge("coverage", result.coverage());
    obs.exit();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use dft_netlist::circuits::{c17, full_adder, majority};
    use dft_netlist::{GateKind, Netlist, PortRef};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exhaustive_patterns(n: usize) -> PatternSet {
        let rows: Vec<Vec<bool>> = (0..1usize << n)
            .map(|v| (0..n).map(|i| v >> i & 1 == 1).collect())
            .collect();
        PatternSet::from_rows(n, &rows)
    }

    #[test]
    fn fig1_pattern_01_tests_a_stuck_at_1() {
        let mut n = Netlist::new("fig1");
        let a = n.add_input("A");
        let b = n.add_input("B");
        let c = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(c, "C").unwrap();
        let fault = Fault::stuck_at_1(PortRef::input(c, 0));
        // Pattern (A=0, B=1) is a test; (A=1, B=1) is not.
        let p = PatternSet::from_rows(2, &[vec![true, true], vec![false, true]]);
        let r = simulate(&n, &p, &[fault]).unwrap();
        assert_eq!(r.first_detected, vec![Some(1)]);
    }

    #[test]
    fn c17_exhaustive_coverage_is_complete() {
        let n = c17();
        let faults = universe(&n);
        let r = simulate(&n, &exhaustive_patterns(5), &faults).unwrap();
        assert_eq!(r.coverage(), 1.0, "undetected: {:?}", r.undetected());
    }

    #[test]
    fn full_adder_exhaustive_coverage_is_complete() {
        let n = full_adder();
        let faults = universe(&n);
        let r = simulate(&n, &exhaustive_patterns(3), &faults).unwrap();
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn dropping_does_not_change_the_result() {
        let n = c17();
        let faults = universe(&n);
        let p = exhaustive_patterns(5);
        let a = simulate(&n, &p, &faults).unwrap();
        let b = simulate_with_options(
            &n,
            &p,
            &faults,
            SerialOptions::new().with_fault_dropping(false),
        )
        .unwrap();
        assert_eq!(a, b, "dropping is a work optimization, not a semantic");
    }

    #[test]
    fn wide_serial_agrees_with_narrow_serial() {
        // The wide scratch path must be bit-identical to the classic
        // narrow walk — detected sets AND first-detecting patterns —
        // including a pattern count that leaves a ragged tail at every
        // width (150 patterns = 2 full blocks + 22 lanes; 3 blocks is
        // not divisible by W=4 or W=8).
        let n = dft_netlist::circuits::random_combinational(10, 120, 11);
        let faults = universe(&n);
        let mut rng = StdRng::seed_from_u64(9);
        let p = PatternSet::random(10, 150, &mut rng);
        let narrow = simulate_with_options(&n, &p, &faults, SerialOptions::new()).unwrap();
        for (width, dropping) in [
            (LaneWidth::Auto, true),
            (LaneWidth::W256, true),
            (LaneWidth::W256, false),
            (LaneWidth::W512, true),
        ] {
            let wide = simulate_with_options(
                &n,
                &p,
                &faults,
                SerialOptions::new()
                    .with_lane_width(width)
                    .with_fault_dropping(dropping),
            )
            .unwrap();
            assert_eq!(narrow, wide, "{width:?} dropping={dropping}");
        }
    }

    #[test]
    fn no_patterns_detect_nothing() {
        let n = majority();
        let faults = universe(&n);
        let p = PatternSet::new(3);
        let r = simulate(&n, &p, &faults).unwrap();
        assert_eq!(r.detected_count(), 0);
        assert_eq!(r.coverage(), 0.0);
    }

    #[test]
    fn first_detected_is_earliest() {
        let n = majority();
        let faults = universe(&n);
        let p = exhaustive_patterns(3);
        let r = simulate(&n, &p, &faults).unwrap();
        // Re-simulate each fault against prefixes to confirm minimality
        // for a few samples.
        for (fi, d) in r.first_detected.iter().enumerate().take(6) {
            let d = d.expect("maj3 is fully testable");
            if d > 0 {
                let prefix_rows: Vec<Vec<bool>> = (0..d).map(|i| p.get(i)).collect();
                let prefix = PatternSet::from_rows(3, &prefix_rows);
                let rr = simulate(&n, &prefix, &[faults[fi]]).unwrap();
                assert_eq!(rr.first_detected[0], None, "fault {fi} detected earlier");
            }
        }
    }

    #[test]
    fn coverage_curve_is_monotone_and_ends_at_coverage() {
        let n = c17();
        let faults = universe(&n);
        let mut rng = StdRng::seed_from_u64(5);
        let p = PatternSet::random(5, 40, &mut rng);
        let r = simulate(&n, &p, &faults).unwrap();
        let curve = r.coverage_curve();
        assert_eq!(curve.len(), 40);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((curve[39] - r.coverage()).abs() < 1e-12);
    }

    #[test]
    fn undetectable_redundant_fault_is_reported() {
        // y = a OR (a AND b): the AND's contribution is redundant when a=1,
        // so AND output s-a-0 is undetectable.
        let mut n = Netlist::new("redundant");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = n.add_gate(GateKind::Or, &[a, g]).unwrap();
        n.mark_output(y, "y").unwrap();
        let fault = Fault::stuck_at_0(PortRef::output(g));
        let r = simulate(&n, &exhaustive_patterns(2), &[fault]).unwrap();
        assert_eq!(r.first_detected, vec![None]);
        assert_eq!(r.undetected(), vec![0]);
    }
}
