//! Streaming fault enumeration for industrial-scale netlists.
//!
//! [`universe`](crate::universe) materializes a `Vec<Fault>` — fine at
//! ISCAS scale, but at 10⁶ gates the universe runs to ~10⁷ faults, and
//! [`collapse`](crate::collapse) on top of it builds a
//! `HashMap<Fault, usize>` whose per-entry overhead dwarfs the netlist
//! itself. This module provides the same two enumerations as *views*
//! over the netlist's CSR storage:
//!
//! * [`FaultUniverse`] — a constant-space index: `fault(i)` decodes the
//!   `i`-th fault of the universe on demand, and [`FaultUniverse::iter`]
//!   streams the whole universe in exactly
//!   [`universe`](crate::universe) order without allocating per fault.
//! * [`CollapsedUniverse`] — structural equivalence collapsing
//!   ([`collapse`](crate::collapse)'s three rules) computed over fault
//!   *indices* with a flat `u32` union-find: 4 bytes per fault instead
//!   of hash-map nodes, same classes, same smallest-index
//!   representatives.
//!
//! Both plug straight into PPSFP via [`Ppsfp::run_streamed`](crate::Ppsfp::run_streamed)
//! (chunked, bit-identical to the materialized run):
//!
//! ```
//! use dft_netlist::circuits::c17;
//! use dft_fault::{ppsfp, stream::FaultUniverse, universe, Ppsfp};
//! use dft_sim::PatternSet;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), dft_netlist::LevelizeError> {
//! let n = c17();
//! let u = FaultUniverse::new(&n);
//! assert_eq!(u.len(), universe(&n).len());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let patterns = PatternSet::random(n.primary_inputs().len(), 64, &mut rng);
//! let streamed = Ppsfp::new(&n)?.run_streamed(&patterns, u.iter(), 16);
//! let materialized = ppsfp(&n, &patterns, &universe(&n))?;
//! assert_eq!(streamed.first_detected, materialized.first_detected);
//! # Ok(())
//! # }
//! ```

use dft_netlist::{GateId, GateKind, Netlist, Pin, PortRef};

use crate::Fault;

/// A constant-space view of the single-stuck-at fault universe.
///
/// Faults are indexed `0..len()` in [`universe`](crate::universe)
/// order: gates in arena order, each contributing its input-pin faults
/// (pin-major, s-a-0 before s-a-1) followed by its output faults.
/// `Input` gates contribute only output faults; constants contribute
/// none. The only allocation is one `u32` prefix-sum per gate.
#[derive(Clone, Debug)]
pub struct FaultUniverse<'n> {
    netlist: &'n Netlist,
    /// `offset[g]..offset[g + 1]` are gate `g`'s fault indices.
    offset: Vec<u32>,
}

impl<'n> FaultUniverse<'n> {
    /// Indexes the fault universe of `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the universe exceeds `u32::MAX` faults.
    #[must_use]
    pub fn new(netlist: &'n Netlist) -> Self {
        let mut offset = Vec::with_capacity(netlist.gate_count() + 1);
        let mut total = 0u32;
        offset.push(0);
        for (_, gate) in netlist.iter() {
            let here = match gate.kind() {
                GateKind::Const0 | GateKind::Const1 => 0,
                GateKind::Input => 2,
                _ => 2 * gate.fanin() + 2,
            };
            total = total
                .checked_add(u32::try_from(here).expect("fan-in fits u32"))
                .expect("fault universe exceeds u32 index space");
            offset.push(total);
        }
        FaultUniverse { netlist, offset }
    }

    /// The netlist this universe is defined over.
    #[must_use]
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Total number of faults.
    #[must_use]
    pub fn len(&self) -> usize {
        *self.offset.last().expect("offset has gate_count+1 entries") as usize
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes the `i`-th fault of the universe.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn fault(&self, i: usize) -> Fault {
        let i = u32::try_from(i).expect("index fits u32");
        assert!(
            i < *self.offset.last().expect("non-empty offsets"),
            "fault index out of range"
        );
        // First gate whose span ends beyond i.
        let g = self.offset.partition_point(|&o| o <= i) - 1;
        self.decode(GateId::from_index(g), i - self.offset[g])
    }

    /// The universe index of `fault`, if the fault exists (its site gate
    /// and pin are real and enumerated).
    #[must_use]
    pub fn index_of(&self, fault: Fault) -> Option<usize> {
        let g = fault.site.gate.index();
        if g >= self.netlist.gate_count() {
            return None;
        }
        let span = (self.offset[g + 1] - self.offset[g]) as usize;
        let within = match fault.site.pin {
            Pin::Output => span.checked_sub(2)? + usize::from(fault.stuck),
            Pin::Input(p) => {
                let p = p as usize;
                if span < 2 * (p + 1) + 2 {
                    return None;
                }
                2 * p + usize::from(fault.stuck)
            }
        };
        Some(self.offset[g] as usize + within)
    }

    /// Streams every fault in universe order, allocation-free.
    pub fn iter(&self) -> impl Iterator<Item = Fault> + '_ {
        self.netlist.ids().flat_map(move |id| {
            let g = id.index();
            let span = self.offset[g + 1] - self.offset[g];
            (0..span).map(move |w| self.decode(id, w))
        })
    }

    /// Decodes fault `within` of gate `id`'s span.
    fn decode(&self, id: GateId, within: u32) -> Fault {
        let span = self.offset[id.index() + 1] - self.offset[id.index()];
        debug_assert!(within < span);
        let stuck = within % 2 == 1;
        let site = if within >= span - 2 {
            PortRef::output(id)
        } else {
            PortRef::input(id, u8::try_from(within / 2).expect("pin fits u8"))
        };
        Fault { site, stuck }
    }
}

/// Structural equivalence collapsing over a [`FaultUniverse`], flat and
/// hash-free.
///
/// Applies exactly the three rules of [`collapse`](crate::collapse) —
/// controlling-value equivalence, inverter/buffer mapping, fanout-free
/// stems — over fault *indices*, so the whole computation is one `u32`
/// union-find plus two flat fan-out arrays. Representatives are the
/// smallest universe index per class, identical to
/// [`Collapse::representatives`](crate::Collapse::representatives).
#[derive(Clone, Debug)]
pub struct CollapsedUniverse<'n> {
    universe: FaultUniverse<'n>,
    /// Fault index → representative fault index (fully resolved).
    rep_of: Vec<u32>,
    class_count: usize,
}

impl<'n> CollapsedUniverse<'n> {
    /// Collapses the full fault universe of `netlist`.
    #[must_use]
    pub fn new(netlist: &'n Netlist) -> Self {
        let universe = FaultUniverse::new(netlist);
        let n = universe.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();

        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        fn union(parent: &mut [u32], a: u32, b: u32) {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                // Smaller index stays representative, as in `collapse`.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
            }
        }

        // Flat single-pass fan-out census: per driver, the edge count and
        // (for count == 1) the unique (reader, pin) edge.
        let mut fan_count = vec![0u32; netlist.gate_count()];
        let mut sole_reader = vec![(GateId::from_index(0), 0u8); netlist.gate_count()];
        for (id, gate) in netlist.iter() {
            for (pin, &src) in gate.inputs().iter().enumerate() {
                fan_count[src.index()] += 1;
                sole_reader[src.index()] = (id, u8::try_from(pin).expect("pin fits u8"));
            }
        }
        let mut is_po = vec![false; netlist.gate_count()];
        for &(g, _) in netlist.primary_outputs() {
            is_po[g.index()] = true;
        }

        let index_of = |f: Fault| universe.index_of(f);
        for (id, gate) in netlist.iter() {
            // Rule 1: controlling-value equivalence through the gate.
            if let Some(c) = gate.kind().controlling_value() {
                let out_val = c != gate.kind().inverts();
                let out = index_of(Fault {
                    site: PortRef::output(id),
                    stuck: out_val,
                });
                for pin in 0..gate.fanin() {
                    let inp = index_of(Fault {
                        site: PortRef::input(id, pin as u8),
                        stuck: c,
                    });
                    if let (Some(a), Some(b)) = (inp, out) {
                        union(&mut parent, a as u32, b as u32);
                    }
                }
            }
            // Rule 2: single-input gates map both polarities through.
            match gate.kind() {
                GateKind::Buf | GateKind::Not => {
                    let flip = gate.kind() == GateKind::Not;
                    for v in [false, true] {
                        let a = index_of(Fault {
                            site: PortRef::input(id, 0),
                            stuck: v,
                        });
                        let b = index_of(Fault {
                            site: PortRef::output(id),
                            stuck: v != flip,
                        });
                        if let (Some(a), Some(b)) = (a, b) {
                            union(&mut parent, a as u32, b as u32);
                        }
                    }
                }
                _ => {}
            }
            // Rule 3: fanout-free stem — driver output fault ≡ sole
            // reader's input fault, unless the stem is also a PO.
            if fan_count[id.index()] == 1 && !is_po[id.index()] {
                let (reader, pin) = sole_reader[id.index()];
                for v in [false, true] {
                    let a = index_of(Fault {
                        site: PortRef::output(id),
                        stuck: v,
                    });
                    let b = index_of(Fault {
                        site: PortRef::input(reader, pin),
                        stuck: v,
                    });
                    if let (Some(a), Some(b)) = (a, b) {
                        union(&mut parent, a as u32, b as u32);
                    }
                }
            }
        }

        let mut class_count = 0usize;
        let mut rep_of = vec![0u32; n];
        for i in 0..n as u32 {
            let r = find(&mut parent, i);
            rep_of[i as usize] = r;
            if r == i {
                class_count += 1;
            }
        }
        CollapsedUniverse {
            universe,
            rep_of,
            class_count,
        }
    }

    /// The underlying uncollapsed universe.
    #[must_use]
    pub fn universe(&self) -> &FaultUniverse<'n> {
        &self.universe
    }

    /// Number of equivalence classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// The collapse ratio `classes / universe`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.universe.is_empty() {
            1.0
        } else {
            self.class_count as f64 / self.universe.len() as f64
        }
    }

    /// The representative fault of fault index `i`'s class.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn representative(&self, i: usize) -> Fault {
        self.universe.fault(self.rep_of[i] as usize)
    }

    /// Streams one representative fault per class, in universe order —
    /// the same faults, in the same order, as
    /// [`Collapse::representatives`](crate::Collapse::representatives),
    /// without materializing either list.
    pub fn representatives(&self) -> impl Iterator<Item = Fault> + '_ {
        self.rep_of
            .iter()
            .enumerate()
            .filter(|&(i, &r)| i == r as usize)
            .map(|(i, _)| self.universe.fault(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collapse, universe};
    use dft_netlist::circuits::{self, c17};

    #[test]
    fn streams_exact_universe_order() {
        for n in [
            c17(),
            circuits::full_adder(),
            circuits::binary_counter(5),
            circuits::random_combinational(8, 300, 7),
            circuits::layered_random(32, 2_000, 3),
        ] {
            let want = universe(&n);
            let u = FaultUniverse::new(&n);
            assert_eq!(u.len(), want.len());
            let got: Vec<Fault> = u.iter().collect();
            assert_eq!(got, want, "order mismatch on {}", n.name());
            for (i, &f) in want.iter().enumerate() {
                assert_eq!(u.fault(i), f);
                assert_eq!(u.index_of(f), Some(i));
            }
        }
    }

    #[test]
    fn constants_and_inputs_enumerate_correctly() {
        let mut n = dft_netlist::Netlist::new("t");
        let c = n.add_const(true);
        let a = n.add_input("a");
        let g = n.add_gate(dft_netlist::GateKind::And, &[a, c]).unwrap();
        n.mark_output(g, "y").unwrap();
        let u = FaultUniverse::new(&n);
        assert_eq!(u.len(), 8, "const contributes nothing, PI 2, AND 6");
        assert_eq!(u.iter().collect::<Vec<_>>(), universe(&n));
        assert_eq!(
            u.index_of(Fault {
                site: PortRef::output(c),
                stuck: true,
            }),
            None,
            "constant faults are not in the universe"
        );
        assert_eq!(
            u.index_of(Fault {
                site: PortRef::input(g, 7),
                stuck: false,
            }),
            None,
            "nonexistent pins decode to nothing"
        );
    }

    #[test]
    fn out_of_range_gate_is_rejected() {
        let n = c17();
        let u = FaultUniverse::new(&n);
        let ghost = Fault {
            site: PortRef::output(GateId::from_index(10_000)),
            stuck: false,
        };
        assert_eq!(u.index_of(ghost), None);
    }

    #[test]
    fn collapse_matches_materialized_classes() {
        for n in [
            c17(),
            circuits::full_adder(),
            circuits::binary_counter(5),
            circuits::random_combinational(8, 300, 7),
            circuits::layered_random(32, 2_000, 3),
        ] {
            let faults = universe(&n);
            let reference = collapse(&n, &faults);
            let streamed = CollapsedUniverse::new(&n);
            assert_eq!(
                streamed.class_count(),
                reference.class_count(),
                "class count on {}",
                n.name()
            );
            assert!((streamed.ratio() - reference.ratio()).abs() < 1e-12);
            for i in 0..faults.len() {
                assert_eq!(
                    streamed.representative(i),
                    reference.representative(i),
                    "representative of fault {i} on {}",
                    n.name()
                );
            }
            let reps: Vec<Fault> = streamed.representatives().collect();
            assert_eq!(reps, reference.representatives(), "reps on {}", n.name());
        }
    }

    #[test]
    fn streamed_ppsfp_is_bit_identical_to_materialized() {
        use dft_sim::PatternSet;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for n in [
            c17(),
            circuits::random_combinational(10, 400, 9),
            circuits::layered_random(32, 3_000, 4),
        ] {
            let patterns = PatternSet::random(n.primary_inputs().len(), 130, &mut rng);
            let engine = crate::Ppsfp::new(&n).unwrap();
            let faults = universe(&n);
            let reference = engine.run(&patterns, &faults);
            let u = FaultUniverse::new(&n);
            // Chunk sizes that divide unevenly, including degenerate 1.
            for chunk in [1usize, 37, 1 << 14] {
                let streamed = engine.run_streamed(&patterns, u.iter(), chunk);
                assert_eq!(
                    streamed.first_detected,
                    reference.first_detected,
                    "chunk {chunk} on {}",
                    n.name()
                );
                assert_eq!(streamed.pattern_count, reference.pattern_count);
            }
            // Collapsed stream vs materialized representatives.
            let col = CollapsedUniverse::new(&n);
            let reps: Vec<Fault> = collapse(&n, &faults).representatives();
            let streamed = engine.run_streamed(&patterns, col.representatives(), 256);
            let reference = engine.run(&patterns, &reps);
            assert_eq!(streamed.first_detected, reference.first_detected);
        }
    }

    #[test]
    fn empty_netlist_collapses_trivially() {
        let n = dft_netlist::Netlist::new("empty");
        let col = CollapsedUniverse::new(&n);
        assert_eq!(col.class_count(), 0);
        assert!(col.universe().is_empty());
        assert!((col.ratio() - 1.0).abs() < 1e-12);
        assert_eq!(col.representatives().count(), 0);
    }
}
