//! Concurrent-style sequential fault simulation.
//!
//! The paper's simulation references include Ulrich & Baker's concurrent
//! method (\[112\]-\[114\]): simulate the good machine once and evaluate a
//! faulty machine only while it *diverges* from the good one. For a
//! sequential circuit this pays off enormously — most faults are inert
//! in most cycles (site not activated, no corrupted state), so their
//! machines need no work at all.
//!
//! Results are bit-identical to the serial engine in
//! [`crate::sequential`] (cross-checked by tests); only the work
//! performed differs, which [`ConcurrentStats`] reports.

use dft_netlist::{LevelizeError, Netlist, Pin};
use dft_obs::{Collector, Obs};
use dft_sim::Logic;

use crate::{Fault, FaultyView, SequentialDetection};

/// Work accounting for a concurrent run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConcurrentStats {
    /// Faulty-machine frame evaluations actually performed.
    pub faulty_evals: u64,
    /// Frame evaluations a serial engine would have performed
    /// (faults × cycles).
    pub serial_evals: u64,
}

impl ConcurrentStats {
    /// Fraction of serial work avoided.
    #[must_use]
    pub fn savings(&self) -> f64 {
        if self.serial_evals == 0 {
            0.0
        } else {
            1.0 - self.faulty_evals as f64 / self.serial_evals as f64
        }
    }
}

/// Runs `sequence` against every fault, skipping the faulty-machine
/// evaluation in cycles where the machine provably tracks the good one
/// (state equal and fault site not activated).
///
/// Same detection semantics as [`crate::sequential`].
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if a row's width disagrees with the input count.
pub fn sequential_concurrent(
    netlist: &Netlist,
    sequence: &[Vec<Logic>],
    faults: &[Fault],
) -> Result<(SequentialDetection, ConcurrentStats), LevelizeError> {
    sequential_concurrent_observed(netlist, sequence, faults, None)
}

/// [`sequential_concurrent`] feeding telemetry to an optional collector.
///
/// Opens a `fault_sim.concurrent` span with counters `faults`, `cycles`,
/// `faulty_evals` and `serial_evals` (the two [`ConcurrentStats`]
/// fields, so the span is a superset of the legacy stats view),
/// `detected`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
///
/// # Panics
///
/// Panics if a row's width disagrees with the input count.
pub fn sequential_concurrent_observed(
    netlist: &Netlist,
    sequence: &[Vec<Logic>],
    faults: &[Fault],
    obs: Option<&mut dyn Collector>,
) -> Result<(SequentialDetection, ConcurrentStats), LevelizeError> {
    let mut obs = Obs::new(obs);
    obs.enter("fault_sim.concurrent");
    let view = FaultyView::new(netlist)?;
    let outputs: Vec<_> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();
    let n_state = view.storage().len();

    // Good machine trace: per cycle, full values + next state.
    let mut good_vals: Vec<Vec<Logic>> = Vec::with_capacity(sequence.len());
    let mut good_state: Vec<Vec<Logic>> = Vec::with_capacity(sequence.len() + 1);
    good_state.push(vec![Logic::X; n_state]);
    for (c, row) in sequence.iter().enumerate() {
        let vals = view.eval_logic(row, &good_state[c], None);
        good_state.push(view.next_state_logic(&vals, None));
        good_vals.push(vals);
    }

    let mut stats = ConcurrentStats {
        serial_evals: (faults.len() * sequence.len()) as u64,
        ..ConcurrentStats::default()
    };
    let mut first_detected = vec![None; faults.len()];

    for (fi, &fault) in faults.iter().enumerate() {
        // Diverged-state representation: None = faulty state equals the
        // good state this cycle; Some(s) = the faulty machine's state.
        let mut diverged: Option<Vec<Logic>> = None;
        'cycles: for (cycle, row) in sequence.iter().enumerate() {
            let active = match fault.site.pin {
                Pin::Output => {
                    let good_site = good_vals[cycle][fault.site.gate.index()];
                    good_site != Logic::from(fault.stuck)
                }
                Pin::Input(p) => {
                    let src = netlist.gate(fault.site.gate).inputs()[p as usize];
                    good_vals[cycle][src.index()] != Logic::from(fault.stuck)
                }
            };
            if diverged.is_none() && !active {
                // Convergent and inert: the faulty machine is the good
                // machine this cycle. Nothing to do.
                continue;
            }
            let state = diverged
                .clone()
                .unwrap_or_else(|| good_state[cycle].clone());
            let vals = view.eval_logic(row, &state, Some(fault));
            stats.faulty_evals += 1;
            for (oi, &g) in outputs.iter().enumerate() {
                let gv = good_vals[cycle][g.index()];
                let fv = vals[g.index()];
                if let (Some(a), Some(b)) = (gv.to_bool(), fv.to_bool()) {
                    if a != b {
                        first_detected[fi] = Some((cycle, oi));
                        break 'cycles;
                    }
                }
            }
            let next = view.next_state_logic(&vals, Some(fault));
            diverged = if next == good_state[cycle + 1] {
                None // reconverged
            } else {
                Some(next)
            };
        }
    }

    let detection = SequentialDetection {
        first_detected,
        cycle_count: sequence.len(),
    };
    obs.count("faults", faults.len() as u64);
    obs.count("cycles", sequence.len() as u64);
    obs.count("faulty_evals", stats.faulty_evals);
    obs.count("serial_evals", stats.serial_evals);
    obs.count("detected", detection.detected_count() as u64);
    obs.exit();
    Ok((detection, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sequential, universe};
    use dft_netlist::circuits::{
        binary_counter, johnson_counter, random_sequential, shift_register,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sequence(width: usize, cycles: usize, seed: u64) -> Vec<Vec<Logic>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..cycles)
            .map(|_| (0..width).map(|_| Logic::from(rng.gen_bool(0.5))).collect())
            .collect()
    }

    #[test]
    fn matches_serial_engine_exactly() {
        for (n, seed) in [
            (shift_register(5), 1u64),
            (binary_counter(4), 2),
            (johnson_counter(4), 3),
            (random_sequential(4, 6, 14, 3, 5), 4),
        ] {
            let faults = universe(&n);
            let seq = random_sequence(n.primary_inputs().len(), 24, seed);
            let serial = sequential(&n, &seq, &faults).unwrap();
            let (conc, _) = sequential_concurrent(&n, &seq, &faults).unwrap();
            assert_eq!(serial, conc, "engines disagree on {}", n.name());
        }
    }

    #[test]
    fn skips_inert_machines() {
        // A shift register flushed with zeros: every net settles to 0, so
        // all s-a-0 faults go inert and all s-a-1 faults are detected
        // within a few cycles (and dropped). Almost no faulty-machine
        // work remains.
        let n = shift_register(8);
        let faults = universe(&n);
        let seq = vec![vec![Logic::Zero]; 50];
        let (det, stats) = sequential_concurrent(&n, &seq, &faults).unwrap();
        assert!(
            stats.savings() > 0.8,
            "expected serious savings, got {:.1}%",
            stats.savings() * 100.0
        );
        // The s-a-1 half of the universe is detected by the flush.
        assert!(det.detected_count() >= faults.len() / 2 - 2);
    }

    #[test]
    fn uninitializable_state_limits_but_does_not_break_savings() {
        // With all-X good state the activity test is conservative (X
        // counts as "maybe active"), so savings shrink — but correctness
        // holds and some work is still avoided.
        let n = binary_counter(6);
        let faults = universe(&n);
        let seq = vec![vec![Logic::Zero]; 50];
        let serial = sequential(&n, &seq, &faults).unwrap();
        let (det, stats) = sequential_concurrent(&n, &seq, &faults).unwrap();
        assert_eq!(serial, det);
        assert!(stats.savings() > 0.05, "savings {:.3}", stats.savings());
    }

    #[test]
    fn reconvergence_is_detected() {
        // A fault that corrupts state but is then overwritten: the
        // machine reconverges and evaluation stops again. Shift register
        // with serial input stuck: once the stuck value matches the
        // stream, machines reconverge.
        let n = shift_register(3);
        let faults = vec![Fault::stuck_at_0(dft_netlist::PortRef::output(
            n.primary_inputs()[0],
        ))];
        // Drive zeros (fault inert), one 1 (diverges 3 cycles), zeros.
        let mut seq = vec![vec![Logic::Zero]; 4];
        seq.push(vec![Logic::One]);
        seq.extend(vec![vec![Logic::Zero]; 10]);
        let (det, stats) = sequential_concurrent(&n, &seq, &faults).unwrap();
        // Detected when the corrupted bit reaches an output.
        assert!(det.first_detected[0].is_some());
        // Only a handful of evaluations despite 15 cycles.
        assert!(stats.faulty_evals <= 4, "evals {}", stats.faulty_evals);
    }

    #[test]
    fn empty_fault_list_does_no_faulty_work() {
        let n = shift_register(2);
        let seq = random_sequence(1, 10, 7);
        let (det, stats) = sequential_concurrent(&n, &seq, &[]).unwrap();
        assert_eq!(det.detected_count(), 0);
        assert_eq!(stats.faulty_evals, 0);
    }
}
