//! Fault injection during levelized evaluation.

use dft_netlist::{GateKind, Levelization, LevelizeError, Netlist, Pin};
use dft_sim::word::{fold_wide, stuck_wide};
use dft_sim::Logic;

use crate::Fault;

/// A compiled faulty-machine evaluator: the good netlist plus one
/// injectable fault site.
///
/// This is the paper's "faulty machine" of Fig. 1 made executable. The
/// evaluator shares the good machine's levelization; injection happens
/// inline (an output fault forces the driven word after evaluation, an
/// input-pin fault substitutes one operand of one gate).
#[derive(Debug)]
pub struct FaultyView<'n> {
    netlist: &'n Netlist,
    lv: Levelization,
    storage: Vec<dft_netlist::GateId>,
}

impl<'n> FaultyView<'n> {
    /// Compiles an evaluator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] on combinational cycles.
    pub fn new(netlist: &'n Netlist) -> Result<Self, LevelizeError> {
        Ok(FaultyView {
            netlist,
            lv: netlist.levelize()?,
            storage: netlist.storage_elements(),
        })
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Storage elements in state-vector order.
    #[must_use]
    pub fn storage(&self) -> &[dft_netlist::GateId] {
        &self.storage
    }

    /// Evaluates one 64-lane block with `fault` injected (or fault-free
    /// when `fault` is `None`), returning packed values for every gate.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words`/`state_words` have the wrong length.
    #[must_use]
    pub fn eval_block(
        &self,
        pi_words: &[u64],
        state_words: &[u64],
        fault: Option<Fault>,
    ) -> Vec<u64> {
        assert_eq!(pi_words.len(), self.netlist.primary_inputs().len());
        assert_eq!(state_words.len(), self.storage.len());
        let mut vals = vec![0u64; self.netlist.gate_count()];
        for (i, &pi) in self.netlist.primary_inputs().iter().enumerate() {
            vals[pi.index()] = pi_words[i];
        }
        for (i, &s) in self.storage.iter().enumerate() {
            vals[s.index()] = state_words[i];
        }
        for (id, gate) in self.netlist.iter() {
            if gate.kind() == GateKind::Const1 {
                vals[id.index()] = u64::MAX;
            }
        }
        // A stuck fault on a *source's* output (PI or DFF output) must be
        // applied before anything reads it.
        if let Some(f) = fault {
            if f.site.pin == Pin::Output && self.netlist.gate(f.site.gate).kind().is_source() {
                vals[f.site.gate.index()] = Self::force(f.stuck);
            }
        }
        for &id in self.lv.order() {
            let gate = self.netlist.gate(id);
            if gate.kind().is_source() {
                continue;
            }
            let word = {
                // Operand gather with the one faulted pin substituted;
                // the per-gate fold itself is the shared
                // `dft_sim::word::fold_word`.
                let operand = |(pin, src): (usize, &dft_netlist::GateId)| -> u64 {
                    match fault {
                        Some(f) if f.site.gate == id && f.site.pin == Pin::Input(pin as u8) => {
                            Self::force(f.stuck)
                        }
                        _ => vals[src.index()],
                    }
                };
                dft_sim::word::fold_word(gate.kind(), gate.inputs().iter().enumerate().map(operand))
            };
            vals[id.index()] = match fault {
                Some(f) if f.site.gate == id && f.site.pin == Pin::Output => Self::force(f.stuck),
                _ => word,
            };
        }
        vals
    }

    /// Wide variant of [`FaultyView::eval_block`]: one levelized walk
    /// evaluates `64 × W` pattern lanes packed as `[u64; W]` wide words,
    /// with the same inline injection semantics (cross-checked by test
    /// against per-block [`FaultyView::eval_block`] columns). The gather
    /// closure and fold are shared with the narrow path via
    /// [`fold_wide`], so the layouts cannot drift.
    ///
    /// # Panics
    ///
    /// Panics if `pi_wide`/`state_wide` have the wrong length.
    #[must_use]
    pub fn eval_wide<const W: usize>(
        &self,
        pi_wide: &[[u64; W]],
        state_wide: &[[u64; W]],
        fault: Option<Fault>,
    ) -> Vec<[u64; W]> {
        assert_eq!(pi_wide.len(), self.netlist.primary_inputs().len());
        assert_eq!(state_wide.len(), self.storage.len());
        let mut vals = vec![[0u64; W]; self.netlist.gate_count()];
        for (i, &pi) in self.netlist.primary_inputs().iter().enumerate() {
            vals[pi.index()] = pi_wide[i];
        }
        for (i, &s) in self.storage.iter().enumerate() {
            vals[s.index()] = state_wide[i];
        }
        for (id, gate) in self.netlist.iter() {
            if gate.kind() == GateKind::Const1 {
                vals[id.index()] = [u64::MAX; W];
            }
        }
        // A stuck fault on a *source's* output (PI or DFF output) must be
        // applied before anything reads it.
        if let Some(f) = fault {
            if f.site.pin == Pin::Output && self.netlist.gate(f.site.gate).kind().is_source() {
                vals[f.site.gate.index()] = stuck_wide::<W>(f.stuck);
            }
        }
        for &id in self.lv.order() {
            let gate = self.netlist.gate(id);
            if gate.kind().is_source() {
                continue;
            }
            let wide = {
                // Operand gather with the one faulted pin substituted.
                let operand = |(pin, src): (usize, &dft_netlist::GateId)| -> [u64; W] {
                    match fault {
                        Some(f) if f.site.gate == id && f.site.pin == Pin::Input(pin as u8) => {
                            stuck_wide::<W>(f.stuck)
                        }
                        _ => vals[src.index()],
                    }
                };
                fold_wide(gate.kind(), gate.inputs().iter().enumerate().map(operand))
            };
            vals[id.index()] = match fault {
                Some(f) if f.site.gate == id && f.site.pin == Pin::Output => {
                    stuck_wide::<W>(f.stuck)
                }
                _ => wide,
            };
        }
        vals
    }

    /// Three-valued variant of [`FaultyView::eval_block`], used by the
    /// sequential fault simulator where unknown state matters.
    ///
    /// # Panics
    ///
    /// Panics if `pis`/`state` have the wrong length.
    #[must_use]
    pub fn eval_logic(&self, pis: &[Logic], state: &[Logic], fault: Option<Fault>) -> Vec<Logic> {
        assert_eq!(pis.len(), self.netlist.primary_inputs().len());
        assert_eq!(state.len(), self.storage.len());
        let mut vals = vec![Logic::X; self.netlist.gate_count()];
        for (i, &pi) in self.netlist.primary_inputs().iter().enumerate() {
            vals[pi.index()] = pis[i];
        }
        for (i, &s) in self.storage.iter().enumerate() {
            vals[s.index()] = state[i];
        }
        for (id, gate) in self.netlist.iter() {
            match gate.kind() {
                GateKind::Const0 => vals[id.index()] = Logic::Zero,
                GateKind::Const1 => vals[id.index()] = Logic::One,
                _ => {}
            }
        }
        if let Some(f) = fault {
            if f.site.pin == Pin::Output && self.netlist.gate(f.site.gate).kind().is_source() {
                vals[f.site.gate.index()] = Logic::from(f.stuck);
            }
        }
        let mut buf: Vec<Logic> = Vec::with_capacity(8);
        for &id in self.lv.order() {
            let gate = self.netlist.gate(id);
            if gate.kind().is_source() {
                continue;
            }
            buf.clear();
            for (pin, &src) in gate.inputs().iter().enumerate() {
                let v = match fault {
                    Some(f) if f.site.gate == id && f.site.pin == Pin::Input(pin as u8) => {
                        Logic::from(f.stuck)
                    }
                    _ => vals[src.index()],
                };
                buf.push(v);
            }
            let mut out = Logic::eval_gate(gate.kind(), &buf);
            if let Some(f) = fault {
                if f.site.gate == id && f.site.pin == Pin::Output {
                    out = Logic::from(f.stuck);
                }
            }
            vals[id.index()] = out;
        }
        vals
    }

    /// Next-state words implied by a block's values.
    #[must_use]
    pub fn next_state_words(&self, vals: &[u64], fault: Option<Fault>) -> Vec<u64> {
        self.storage
            .iter()
            .map(|&dff| {
                let d = self.netlist.gate(dff).inputs()[0];
                let mut w = vals[d.index()];
                if let Some(f) = fault {
                    // A fault on the DFF's data pin corrupts what is captured.
                    if f.site.gate == dff && f.site.pin == Pin::Input(0) {
                        w = Self::force(f.stuck);
                    }
                }
                w
            })
            .collect()
    }

    /// Three-valued next state implied by frame values (with an optional
    /// fault on a DFF data pin corrupting the capture).
    #[must_use]
    pub fn next_state_logic(&self, vals: &[Logic], fault: Option<Fault>) -> Vec<Logic> {
        self.storage
            .iter()
            .map(|&dff| {
                let d = self.netlist.gate(dff).inputs()[0];
                match fault {
                    Some(f) if f.site.gate == dff && f.site.pin == Pin::Input(0) => {
                        Logic::from(f.stuck)
                    }
                    _ => vals[d.index()],
                }
            })
            .collect()
    }

    fn force(stuck: bool) -> u64 {
        if stuck {
            u64::MAX
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::{GateId, GateKind, Netlist, PortRef};

    /// The paper's Fig. 1: pattern (A=0, B=1) distinguishes the good AND
    /// gate (C=0) from the machine with A s-a-1 (C=1).
    #[test]
    fn fig1_and_gate_stuck_at_1() {
        let mut n = Netlist::new("fig1");
        let a = n.add_input("A");
        let b = n.add_input("B");
        let c = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(c, "C").unwrap();
        let view = FaultyView::new(&n).unwrap();
        let pi = [0u64, 1u64]; // lane 0: A=0, B=1
        let good = view.eval_block(&pi, &[], None);
        let faulty = view.eval_block(&pi, &[], Some(Fault::stuck_at_1(PortRef::input(c, 0))));
        assert_eq!(good[c.index()] & 1, 0, "good machine outputs 0");
        assert_eq!(faulty[c.index()] & 1, 1, "faulty machine outputs 1");
    }

    #[test]
    fn output_fault_forces_all_lanes() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(g, "y").unwrap();
        let view = FaultyView::new(&n).unwrap();
        let faulty = view.eval_block(&[0xDEAD], &[], Some(Fault::stuck_at_0(PortRef::output(g))));
        assert_eq!(faulty[g.index()], 0);
    }

    #[test]
    fn pi_stem_fault_applies_before_readers() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::Buf, &[a]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(g1, "y1").unwrap();
        n.mark_output(g2, "y2").unwrap();
        let view = FaultyView::new(&n).unwrap();
        let f = Fault::stuck_at_1(PortRef::output(a));
        let vals = view.eval_block(&[0], &[], Some(f));
        assert_eq!(
            vals[g1.index()],
            u64::MAX,
            "both readers see the stem fault"
        );
        assert_eq!(vals[g2.index()], 0);
    }

    #[test]
    fn input_pin_fault_is_local_to_one_reader() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::Buf, &[a]).unwrap();
        let g2 = n.add_gate(GateKind::Buf, &[a]).unwrap();
        let view = FaultyView::new(&n).unwrap();
        let f = Fault::stuck_at_1(PortRef::input(g1, 0));
        let vals = view.eval_block(&[0], &[], Some(f));
        assert_eq!(vals[g1.index()], u64::MAX, "faulted reader sees 1");
        assert_eq!(vals[g2.index()], 0, "sibling reader sees the true net");
    }

    #[test]
    fn logic_eval_agrees_with_word_eval() {
        let n = dft_netlist::circuits::c17();
        let view = FaultyView::new(&n).unwrap();
        let faults = crate::universe(&n);
        for v in 0..32u64 {
            let pi_words: Vec<u64> = (0..5)
                .map(|i| if v >> i & 1 == 1 { u64::MAX } else { 0 })
                .collect();
            let pis: Vec<Logic> = (0..5).map(|i| Logic::from(v >> i & 1 == 1)).collect();
            for &f in faults.iter().take(12) {
                let w = view.eval_block(&pi_words, &[], Some(f));
                let l = view.eval_logic(&pis, &[], Some(f));
                for id in n.ids() {
                    assert_eq!(
                        Some(w[id.index()] & 1 == 1),
                        l[id.index()].to_bool(),
                        "gate {id} fault {f} input {v:05b}"
                    );
                }
            }
        }
    }

    #[test]
    fn constants_evaluate_in_both_domains() {
        let mut n = Netlist::new("t");
        let one = n.add_const(true);
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::And, &[one, a]).unwrap();
        n.mark_output(y, "y").unwrap();
        let view = FaultyView::new(&n).unwrap();
        let w = view.eval_block(&[u64::MAX], &[], None);
        assert_eq!(w[y.index()], u64::MAX, "const-1 must drive the AND");
        let l = view.eval_logic(&[Logic::One], &[], None);
        assert_eq!(l[y.index()], Logic::One);
    }

    #[test]
    fn wide_eval_columns_match_per_block_eval() {
        let n = dft_netlist::circuits::c17();
        let view = FaultyView::new(&n).unwrap();
        let faults = crate::universe(&n);
        // Four distinct 64-lane input blocks, packed into one 256-lane
        // wide block.
        let blocks: [[u64; 5]; 4] = [
            [
                0x0123_4567_89AB_CDEF,
                0xFEDC_BA98_7654_3210,
                0,
                u64::MAX,
                0xAAAA,
            ],
            [u64::MAX, 0, 0x5555, 0xFFFF_0000, 1],
            [7, 1 << 63, 0x00FF_00FF, 0xF0F0, 0xDEAD_BEEF],
            [0, 0, 0, 0, 0],
        ];
        let pi_wide: Vec<[u64; 4]> = (0..5)
            .map(|i| [blocks[0][i], blocks[1][i], blocks[2][i], blocks[3][i]])
            .collect();
        for fault in faults.iter().copied().map(Some).chain([None]) {
            let wide = view.eval_wide::<4>(&pi_wide, &[], fault);
            for (w, block) in blocks.iter().enumerate() {
                let narrow = view.eval_block(block, &[], fault);
                for id in n.ids() {
                    assert_eq!(
                        wide[id.index()][w],
                        narrow[id.index()],
                        "gate {id} word {w} fault {fault:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn dff_data_pin_fault_corrupts_capture() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let d = n.add_dff(a).unwrap();
        n.mark_output(d, "q").unwrap();
        let view = FaultyView::new(&n).unwrap();
        let f = Fault::stuck_at_0(PortRef::new(d, dft_netlist::Pin::Input(0)));
        let vals = view.eval_block(&[u64::MAX], &[0], Some(f));
        let ns = view.next_state_words(&vals, Some(f));
        assert_eq!(ns[0], 0, "capture is stuck at 0");
        let good_ns = view.next_state_words(&view.eval_block(&[u64::MAX], &[0], None), None);
        assert_eq!(good_ns[0], u64::MAX);
        let _ = GateId::from_index(0);
    }
}
