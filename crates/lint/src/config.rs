//! Severity-override configuration (`--rule-config`).
//!
//! A config file lets a project re-rank or silence rules without
//! rebuilding: promote `latch-race` to an error on an LSSD flow, mute
//! `reconvergent-fanout` notes, and so on. The format is the natural
//! TOML subset for a flat key/value table — parsed by hand because the
//! workspace takes no external dependencies:
//!
//! ```toml
//! # comments and blank lines are ignored
//! [rules]                      # optional section header
//! deep-logic = "error"         # rules named by kebab-case id…
//! DFT-010 = "off"              # …or by stable code
//! latch-race = "info"
//! ```
//!
//! Accepted severities are `"error"`, `"warning"` (or `"warn"`),
//! `"info"`, and `"off"` (or `"allow"`) to drop a rule's findings
//! entirely. Unknown rule names and malformed lines are hard errors —
//! a config typo silently doing nothing is worse than a failed run.

use std::error::Error;
use std::fmt;

use crate::diag::{LintReport, Severity};
use crate::fix::resolve_rule_name;

/// One parsed override: silence the rule, or re-rank its findings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    Off,
    Rank(Severity),
}

/// A set of per-rule severity overrides, keyed by canonical rule id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeverityOverrides {
    entries: Vec<(&'static str, Action)>,
}

impl SeverityOverrides {
    /// Parses the TOML-subset config text (see the module docs for the
    /// grammar).
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut entries: Vec<(&'static str, Action)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let Some(name) = section.strip_suffix(']') else {
                    return Err(ConfigError::new(lineno, "unterminated section header"));
                };
                if name.trim() != "rules" {
                    return Err(ConfigError::new(
                        lineno,
                        format!(
                            "unknown section [{}]; only [rules] is recognized",
                            name.trim()
                        ),
                    ));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError::new(lineno, "expected `rule = \"severity\"`"));
            };
            let key = key.trim().trim_matches('"');
            let Some(rule) = resolve_rule_name(key) else {
                return Err(ConfigError::new(
                    lineno,
                    format!("unknown rule {key:?} (use a rule id or a DFT-NNN code)"),
                ));
            };
            let value = value.trim();
            let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(ConfigError::new(
                    lineno,
                    format!("severity for {key:?} must be a quoted string"),
                ));
            };
            let action = match value {
                "off" | "allow" => Action::Off,
                "info" => Action::Rank(Severity::Info),
                "warn" | "warning" => Action::Rank(Severity::Warning),
                "error" => Action::Rank(Severity::Error),
                other => {
                    return Err(ConfigError::new(
                        lineno,
                        format!(
                            "unknown severity {other:?} (expected error, warning, info, or off)"
                        ),
                    ));
                }
            };
            // Last write wins, like TOML would reject but linters allow.
            entries.retain(|&(r, _)| r != rule);
            entries.push((rule, action));
        }
        Ok(SeverityOverrides { entries })
    }

    /// Whether no overrides were configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of configured overrides.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The rules configured `off`, by canonical name.
    ///
    /// Callers that own the [`Registry`](crate::Registry) should
    /// [`disable`](crate::Registry::disable) these *before* the run
    /// rather than rely on [`apply`](Self::apply) filtering the report:
    /// a disabled rule never executes and never forces the lazy shared
    /// analyses it would have read, which is the difference between
    /// linear and quadratic wall-clock on industrial-scale netlists.
    pub fn disabled(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries
            .iter()
            .filter(|(_, a)| matches!(a, Action::Off))
            .map(|&(rule, _)| rule)
    }

    /// Applies the overrides to a finished report: overridden rules get
    /// their new severity, silenced rules lose their findings, and the
    /// report is re-sorted so exit-code logic (`worst`, `is_clean`)
    /// reflects the configured ranking.
    pub fn apply(&self, report: &mut LintReport) {
        if self.is_empty() {
            return;
        }
        report.diagnostics_mut().retain_mut(|d| {
            match self.entries.iter().find(|&&(r, _)| r == d.rule) {
                Some(&(_, Action::Off)) => false,
                Some(&(_, Action::Rank(sev))) => {
                    d.severity = sev;
                    true
                }
                None => true,
            }
        });
        report.sort();
    }
}

/// A parse error in a severity-override config, with its 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ConfigError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ConfigError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Category, Diagnostic};
    use dft_netlist::GateId;

    fn sample_report() -> LintReport {
        let mut r = LintReport::new("demo");
        r.push(Diagnostic::new(
            "deep-logic",
            Severity::Warning,
            Category::Timing,
            GateId::from_index(1),
            "deep",
        ));
        r.push(Diagnostic::new(
            "reconvergent-fanout",
            Severity::Info,
            Category::Testability,
            GateId::from_index(2),
            "note",
        ));
        r
    }

    #[test]
    fn parses_ids_codes_comments_and_section() {
        let o = SeverityOverrides::parse(
            "# a comment\n\n[rules]\ndeep-logic = \"error\"\nDFT-011 = \"off\"\n",
        )
        .unwrap();
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
    }

    #[test]
    fn apply_reranks_and_silences() {
        let o = SeverityOverrides::parse("deep-logic = \"error\"\nreconvergent-fanout = \"off\"\n")
            .unwrap();
        let mut r = sample_report();
        o.apply(&mut r);
        assert_eq!(r.diagnostics().len(), 1);
        assert_eq!(r.diagnostics()[0].rule, "deep-logic");
        assert_eq!(r.diagnostics()[0].severity, Severity::Error);
        assert!(r.has_errors(), "exit-code logic sees the new ranking");
    }

    #[test]
    fn empty_overrides_change_nothing() {
        let o = SeverityOverrides::parse("# nothing\n").unwrap();
        assert!(o.is_empty());
        let mut r = sample_report();
        o.apply(&mut r);
        assert_eq!(r.diagnostics().len(), 2);
    }

    #[test]
    fn last_write_wins() {
        let o = SeverityOverrides::parse("deep-logic = \"off\"\ndeep-logic = \"info\"\n").unwrap();
        assert_eq!(o.len(), 1);
        let mut r = sample_report();
        o.apply(&mut r);
        assert_eq!(
            r.by_rule("deep-logic").next().unwrap().severity,
            Severity::Info
        );
    }

    #[test]
    fn rejects_unknown_rules_sections_and_severities() {
        let e = SeverityOverrides::parse("no-such-rule = \"off\"\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("unknown rule"));

        let e = SeverityOverrides::parse("[lints]\n").unwrap_err();
        assert!(e.to_string().contains("only [rules]"));

        let e = SeverityOverrides::parse("deep-logic = \"fatal\"\n").unwrap_err();
        assert!(e.to_string().contains("unknown severity"));

        let e = SeverityOverrides::parse("deep-logic = error\n").unwrap_err();
        assert!(e.to_string().contains("quoted"));

        let e = SeverityOverrides::parse("deep-logic\n").unwrap_err();
        assert!(e.to_string().contains("expected"));
    }
}
