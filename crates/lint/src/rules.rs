//! The built-in rule set.
//!
//! Every rule here enforces (or measures) a condition the paper ties to
//! testability:
//!
//! | rule id | checks | paper |
//! |---------|--------|-------|
//! | `comb-feedback` | no asynchronous feedback loops | §IV groundrules |
//! | `unused-input` | every primary input drives logic | §I (modelling) |
//! | `dead-logic` | every gate can reach a primary output | §III-B observability |
//! | `constant-output` | no structurally-constant nets / tied pins | §I-A (untestable faults) |
//! | `excessive-fanout` | fanout below a load bound | §III structure |
//! | `deep-logic` | combinational depth below a settle bound | §IV-A timing rule |
//! | `latch-race` | no direct latch-to-latch paths | §IV-B race rule |
//! | `uninitializable-storage` | state reachable from power-up X | §III-B CLEAR/PRESET |
//! | `hard-to-control` | SCOAP controllability below threshold | §II measures |
//! | `hard-to-observe` | SCOAP observability below threshold | §II measures |
//! | `reconvergent-fanout` | (info) reconvergent paths exist | §I-B sensitization |
//! | `redundant-logic` | no gate has all its faults statically untestable | §I-B redundancy |
//! | `constant-implied-net` | no net is constant only via implication learning | §I-B redundancy |
//! | `deep-unobservable-cone` | no buried cone of high-observability-cost nets | §III-B test points |
//! | `implication-dead-region` | no region feeding only implication-proven constants | §I-B redundancy |
//! | `x-source-into-compare` | no XOR/XNOR consumes an unflushable power-up X | §III-B initialization |
//! | `observability-dominator-bottleneck` | no poorly-observable net funnels a wide region | §III-B test points |
//! | `reconvergent-constant-mask` | no reconvergence cancels into a constant meet | §I-B redundancy |
//!
//! The implication-backed rules are powered by `dft-implic`'s static
//! implication engine: they catch redundancy that needs reasoning across
//! reconvergent paths (`x AND NOT x`), which simple constant propagation
//! and structural reachability cannot see.
//!
//! Rules that know a concrete repair attach a machine-applicable
//! [`FixHint`] alongside the free-text hint; `tessera-fix` (the
//! `dft-repair` crate) expands those into candidate netlist edits.

use dft_netlist::cones::{exclusive_fanin_region, fanin_cone, reconvergent_fanouts};
use dft_netlist::{GateId, GateKind, Netlist, Pin};
use dft_testability::INFINITE;

use crate::context::LintContext;
use crate::diag::{Category, Diagnostic, LintReport, Severity};
use crate::fix::FixHint;
use crate::registry::Rule;

/// The full built-in rule set, in run order.
#[must_use]
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(CombFeedback),
        Box::new(UnusedInput),
        Box::new(DeadLogic),
        Box::new(ConstantOutput),
        Box::new(ExcessiveFanout),
        Box::new(DeepLogic),
        Box::new(LatchRace),
        Box::new(UninitializableStorage),
        Box::new(HardToControl),
        Box::new(HardToObserve),
        Box::new(ReconvergentFanout),
        Box::new(RedundantLogic),
        Box::new(ConstantImpliedNet),
        Box::new(DeepUnobservableCone),
        Box::new(ImplicationDeadRegion),
        Box::new(XSourceIntoCompare),
        Box::new(ObservabilityDominatorBottleneck),
        Box::new(ReconvergentConstantMask),
    ]
}

/// Flags every combinational feedback loop (one diagnostic per strongly
/// connected component).
pub struct CombFeedback;

impl Rule for CombFeedback {
    fn id(&self) -> &'static str {
        "comb-feedback"
    }
    fn description(&self) -> &'static str {
        "combinational feedback loops (asynchronous behaviour the gate model cannot express)"
    }
    fn category(&self) -> Category {
        Category::Structure
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        if ctx.levelization().is_ok() {
            return;
        }
        for scc in combinational_sccs(ctx.netlist()) {
            let gate = scc[0];
            let related = scc[1..].to_vec();
            report.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    self.category(),
                    gate,
                    format!("combinational feedback loop through {} gate(s)", scc.len()),
                )
                .with_related(related)
                .with_hint(
                    "break the loop with a storage element or redesign the asynchronous latch",
                ),
            );
        }
    }
}

/// Strongly connected components of the combinational dependency graph
/// (edges driver → reader, both non-source). Only real cycles are
/// returned: components of two or more gates, or a gate feeding itself.
fn combinational_sccs(netlist: &Netlist) -> Vec<Vec<GateId>> {
    let n = netlist.gate_count();
    let fanout = netlist.fanout_map();
    let is_comb: Vec<bool> = netlist
        .ids()
        .map(|id| !netlist.gate(id).kind().is_source())
        .collect();

    // Iterative Tarjan.
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<GateId>> = Vec::new();

    for root in 0..n {
        if !is_comb[root] || index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(frame) = call.last_mut() {
            let v = frame.0;
            if frame.1 < fanout[v].len() {
                let w = fanout[v][frame.1].0.index();
                frame.1 += 1;
                if !is_comb[w] {
                    continue;
                }
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    low[parent.0] = low[parent.0].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack holds the component");
                        on_stack[w] = false;
                        comp.push(GateId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    let self_loop =
                        comp.len() == 1 && netlist.gate(comp[0]).inputs().contains(&comp[0]);
                    if comp.len() > 1 || self_loop {
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
    }
    sccs.sort_by_key(|c| c[0]);
    sccs
}

/// Flags primary inputs that drive nothing.
pub struct UnusedInput;

impl Rule for UnusedInput {
    fn id(&self) -> &'static str {
        "unused-input"
    }
    fn description(&self) -> &'static str {
        "primary inputs with no readers (dead pins)"
    }
    fn category(&self) -> Category {
        Category::Structure
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist();
        for &pi in netlist.primary_inputs() {
            let feeds_logic = !ctx.fanout()[pi.index()].is_empty();
            let is_output = netlist.primary_outputs().iter().any(|&(g, _)| g == pi);
            if !feeds_logic && !is_output {
                let name = netlist.gate(pi).name().unwrap_or("?");
                report.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        self.category(),
                        pi,
                        format!("primary input '{name}' drives nothing"),
                    )
                    .with_hint("connect the input or drop the pin"),
                );
            }
        }
    }
}

/// Flags gates from which no primary output is structurally reachable:
/// their entire fanout cone — and every fault in it — is unobservable.
pub struct DeadLogic;

impl Rule for DeadLogic {
    fn id(&self) -> &'static str {
        "dead-logic"
    }
    fn description(&self) -> &'static str {
        "gates whose output can never reach a primary output (unobservable cones)"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist();
        let roots: Vec<GateId> = netlist.primary_outputs().iter().map(|&(g, _)| g).collect();
        let observable = fanin_cone(netlist, &roots, true);
        for (id, gate) in netlist.iter() {
            // Inputs have their own rule; stray constants are harmless
            // construction artifacts (placeholder ties).
            if matches!(
                gate.kind(),
                GateKind::Input | GateKind::Const0 | GateKind::Const1
            ) || observable.contains(&id)
            {
                continue;
            }
            report.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    self.category(),
                    id,
                    "no primary output is structurally reachable from this gate",
                )
                .with_hint("mark an output or add an observation test point (§III-B)")
                .with_fix(FixHint::ObservePoint { net: id }),
            );
        }
    }
}

/// Flags structurally-constant nets and tied noncontrolling pins — both
/// make stuck-at faults provably untestable.
pub struct ConstantOutput;

impl Rule for ConstantOutput {
    fn id(&self) -> &'static str {
        "constant-output"
    }
    fn description(&self) -> &'static str {
        "nets constant under every input assignment, and pins tied to noncontrolling values"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Some(constants) = ctx.constants() else {
            return;
        };
        let netlist = ctx.netlist();
        for (id, gate) in netlist.iter() {
            if gate.kind().is_source() {
                continue;
            }
            if let Some(v) = constants[id.index()].to_bool() {
                let v = u8::from(v);
                report.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        self.category(),
                        id,
                        format!(
                            "output is constant {v} for every input assignment; \
                             stuck-at-{v} here is untestable"
                        ),
                    )
                    .with_hint("fold the constant into the fanout or remove the redundant logic"),
                );
                continue;
            }
            // Output not constant: a tied *noncontrolling* pin is still
            // redundant (the pin never decides the output).
            let Some(c) = gate.kind().controlling_value() else {
                continue;
            };
            for (pin, &src) in gate.inputs().iter().enumerate() {
                if let Some(v) = constants[src.index()].to_bool() {
                    if v != c {
                        let v = u8::from(v);
                        report.push(
                            Diagnostic::new(
                                self.id(),
                                self.severity(),
                                self.category(),
                                id,
                                format!(
                                    "input pin {pin} is always {v} (the noncontrolling value \
                                     for {}): its stuck-at-{v} fault is untestable",
                                    gate.kind()
                                ),
                            )
                            .with_related(vec![src])
                            .with_hint("drop the pin or the constant driver"),
                        );
                    }
                }
            }
        }
    }
}

/// Flags nets driving more input pins than the configured load bound.
pub struct ExcessiveFanout;

impl Rule for ExcessiveFanout {
    fn id(&self) -> &'static str {
        "excessive-fanout"
    }
    fn description(&self) -> &'static str {
        "nets driving more input pins than the configured bound"
    }
    fn category(&self) -> Category {
        Category::Structure
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let limit = ctx.config().max_fanout;
        for id in ctx.netlist().ids() {
            let pins = ctx.fanout()[id.index()].len();
            if pins > limit {
                report.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        self.category(),
                        id,
                        format!("net drives {pins} input pins (limit {limit})"),
                    )
                    .with_hint("buffer the net or split the load tree"),
                );
            }
        }
    }
}

/// Flags gates deeper than the configured logic-depth bound.
pub struct DeepLogic;

impl Rule for DeepLogic {
    fn id(&self) -> &'static str {
        "deep-logic"
    }
    fn description(&self) -> &'static str {
        "combinational depth beyond the configured settle bound"
    }
    fn category(&self) -> Category {
        Category::Timing
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Ok(lv) = ctx.levelization() else {
            return;
        };
        let bound = ctx.config().max_depth;
        for (id, gate) in ctx.netlist().iter() {
            if !gate.kind().is_source() && lv.level(id) > bound {
                report.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        self.category(),
                        id,
                        format!("logic level {} exceeds bound {bound}", lv.level(id)),
                    )
                    .with_hint("deep cones defeat the settle-time discipline; pipeline or retime"),
                );
            }
        }
    }
}

/// Flags storage elements fed directly by other storage elements — the
/// race the Scan Path flip-flop narrows and LSSD's two-phase SRL
/// eliminates.
pub struct LatchRace;

impl Rule for LatchRace {
    fn id(&self) -> &'static str {
        "latch-race"
    }
    fn description(&self) -> &'static str {
        "storage data inputs driven directly by other storage (race without two-phase cells)"
    }
    fn category(&self) -> Category {
        Category::Timing
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist();
        for dff in netlist.storage_elements() {
            let d = netlist.gate(dff).inputs()[0];
            if netlist.gate(d).kind().is_storage() {
                report.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        self.category(),
                        dff,
                        format!(
                            "data input is driven directly by latch {d}: \
                             a race unless the cell is two-phase"
                        ),
                    )
                    .with_related(vec![d])
                    .with_hint(
                        "insert logic between the latches or use a master/slave (LSSD SRL) cell",
                    )
                    .with_fix(FixHint::ScanConvert { storage: dff }),
                );
            }
        }
    }
}

/// Flags storage that can never be steered out of its power-up X state.
pub struct UninitializableStorage;

impl Rule for UninitializableStorage {
    fn id(&self) -> &'static str {
        "uninitializable-storage"
    }
    fn description(&self) -> &'static str {
        "storage elements that no input sequence can initialize (infinite SCOAP cost)"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Some(scoap) = ctx.scoap() else {
            return;
        };
        for dff in ctx.netlist().storage_elements() {
            let m = scoap.measure(dff);
            if m.cc0 >= INFINITE && m.cc1 >= INFINITE {
                report.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        self.category(),
                        dff,
                        "storage element can never be initialized from the primary inputs",
                    )
                    .with_hint(
                        "add a CLEAR/PRESET line (§III-B) or place the latch on a scan chain (§IV)",
                    )
                    .with_fix(FixHint::AddReset),
                );
            }
        }
    }
}

/// Flags nets whose (finite) SCOAP controllability exceeds the
/// configured threshold.
pub struct HardToControl;

impl Rule for HardToControl {
    fn id(&self) -> &'static str {
        "hard-to-control"
    }
    fn description(&self) -> &'static str {
        "nets with finite but excessive SCOAP controllability cost"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Some(scoap) = ctx.scoap() else {
            return;
        };
        let limit = ctx.config().controllability_limit;
        for id in ctx.netlist().ids() {
            let m = scoap.measure(id);
            let cc = m.cc0.min(m.cc1);
            if cc < INFINITE && cc > limit {
                report.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        self.category(),
                        id,
                        format!("controllability cost {cc} exceeds the limit {limit}"),
                    )
                    .with_hint("insert a control test point near this net (§III-B)")
                    .with_fix(FixHint::ControlPoint { net: id }),
                );
            }
        }
    }
}

/// Flags nets whose (finite) SCOAP observability exceeds the configured
/// threshold.
pub struct HardToObserve;

impl Rule for HardToObserve {
    fn id(&self) -> &'static str {
        "hard-to-observe"
    }
    fn description(&self) -> &'static str {
        "nets with finite but excessive SCOAP observability cost"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Some(scoap) = ctx.scoap() else {
            return;
        };
        let limit = ctx.config().observability_limit;
        for id in ctx.netlist().ids() {
            let co = scoap.observability(id);
            if co < INFINITE && co > limit {
                report.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        self.category(),
                        id,
                        format!("observability cost {co} exceeds the limit {limit}"),
                    )
                    .with_hint("route the net to an observation test point or spare output pin")
                    .with_fix(FixHint::ObservePoint { net: id }),
                );
            }
        }
    }
}

/// Notes every reconvergent fanout stem (informational).
pub struct ReconvergentFanout;

impl Rule for ReconvergentFanout {
    fn id(&self) -> &'static str {
        "reconvergent-fanout"
    }
    fn description(&self) -> &'static str {
        "fanout branches that meet again (correlated paths; informational)"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        for rec in reconvergent_fanouts(ctx.netlist()) {
            report.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    self.category(),
                    rec.stem,
                    format!("fanout branches reconverge at {}", rec.meet),
                )
                .with_related(vec![rec.meet])
                .with_hint(
                    "correlated paths can mask faults; single-path sensitization \
                     arguments do not hold at the meet gate",
                ),
            );
        }
    }
}

/// Flags gates all of whose stuck-at faults are statically provably
/// untestable: the gate contributes nothing a test could ever see, which
/// is the paper's definition of redundant logic. Detection uses
/// `dft-implic`'s FIRE-style identifier, so it also catches redundancy
/// that needs implication reasoning (a gate masked because a side input
/// is *implied* to its controlling value), not just structural
/// unreachability.
pub struct RedundantLogic;

impl Rule for RedundantLogic {
    fn id(&self) -> &'static str {
        "redundant-logic"
    }
    fn description(&self) -> &'static str {
        "gates all of whose stuck-at faults are statically untestable (provably redundant)"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Some(engine) = ctx.implications() else {
            return;
        };
        for (id, gate) in ctx.netlist().iter() {
            if gate.kind().is_source() {
                continue;
            }
            let mut pins: Vec<Pin> = vec![Pin::Output];
            pins.extend((0..gate.fanin()).map(|p| Pin::Input(p as u8)));
            let mut witness = None;
            let all_untestable = pins.iter().all(|&pin| {
                [false, true]
                    .iter()
                    .all(|&stuck| match engine.fault_untestable(id, pin, stuck) {
                        Some(reason) => {
                            witness = Some(reason);
                            true
                        }
                        None => false,
                    })
            });
            if !all_untestable {
                continue;
            }
            let reason = witness.expect("a gate has at least the two output faults");
            // Both output stuck-at faults are untestable, so folding to
            // either value preserves function (§I-B); prefer the value
            // the closure proves the net holds, if it proves one.
            let value = engine.implied_constant(id).unwrap_or(false);
            report.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    self.category(),
                    id,
                    format!(
                        "every stuck-at fault on this {} gate is statically untestable \
                         (e.g. {reason})",
                        gate.kind()
                    ),
                )
                .with_hint(
                    "the gate is provably redundant: remove it, or add a control/observation \
                     test point if it exists for a reason (§I-B, §III-B)",
                )
                .with_fix(FixHint::RemoveRedundant { gate: id, value }),
            );
        }
    }
}

/// Flags nets the implication closure proves constant even though simple
/// constant propagation cannot: the constant comes from reconvergent
/// structure (`x AND NOT x`), not from a tied source, so the
/// `constant-output` rule misses it. Stuck-at-the-constant faults on such
/// nets are untestable.
pub struct ConstantImpliedNet;

impl Rule for ConstantImpliedNet {
    fn id(&self) -> &'static str {
        "constant-implied-net"
    }
    fn description(&self) -> &'static str {
        "nets fixed by the implication closure but invisible to plain constant propagation"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let (Some(engine), Some(constants)) = (ctx.implications(), ctx.constants()) else {
            return;
        };
        for (id, gate) in ctx.netlist().iter() {
            if gate.kind().is_source() || constants[id.index()].is_known() {
                continue;
            }
            let Some(v) = engine.implied_constant(id) else {
                continue;
            };
            // The implication witness: driving the net to the opposite
            // value contradicts itself somewhere — name that somewhere.
            let conflict = engine.query(id, !v).conflict;
            let value = v;
            let v = u8::from(v);
            let mut diag = Diagnostic::new(
                self.id(),
                self.severity(),
                self.category(),
                id,
                format!(
                    "implication closure proves this net constant {v} (plain constant \
                     propagation cannot); stuck-at-{v} here is untestable"
                ),
            )
            .with_hint(
                "the constant comes from reconvergent structure; simplify the logic or \
                 accept the redundant faults (§I-B)",
            )
            .with_fix(FixHint::FoldConstant { net: id, value });
            if let Some(at) = conflict {
                diag = diag.with_related(vec![at]);
            }
            report.push(diag);
        }
    }
}

/// Flags buried cones: a net whose SCOAP observability cost crosses the
/// (strict) deep-cone threshold, none of whose readers do, and whose
/// fan-in cone contains at least `deep_cone_min_gates` further nets over
/// the threshold. One observation test point at the flagged net (the
/// cone's exit toward the outputs) rescues the whole region, which is
/// exactly the §III-B test-point placement argument — so the rule fires
/// once per cone, at the place the point belongs, instead of once per
/// buried net the way `hard-to-observe` would.
pub struct DeepUnobservableCone;

impl Rule for DeepUnobservableCone {
    fn id(&self) -> &'static str {
        "deep-unobservable-cone"
    }
    fn description(&self) -> &'static str {
        "cones of nets with excessive observability cost, reported at the cone exit"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Some(scoap) = ctx.scoap() else {
            return;
        };
        let netlist = ctx.netlist();
        let limit = ctx.config().deep_cone_observability_limit;
        let min_gates = ctx.config().deep_cone_min_gates;
        let over = |id: GateId| {
            let co = scoap.observability(id);
            co < INFINITE && co > limit
        };
        for id in netlist.ids() {
            if !over(id) || ctx.fanout()[id.index()].iter().any(|&(r, _)| over(r)) {
                continue;
            }
            // `id` is a cone exit: over the limit, but everything it
            // feeds is not. Count how much of its cone is buried with it.
            let mut buried: Vec<GateId> = fanin_cone(netlist, &[id], false)
                .into_iter()
                .filter(|&g| g != id && over(g))
                .collect();
            if buried.len() + 1 < min_gates {
                continue;
            }
            buried.sort();
            report.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    self.category(),
                    id,
                    format!(
                        "observability cost {} exceeds {limit} and {} more net(s) in this \
                         cone are over the limit too",
                        scoap.observability(id),
                        buried.len(),
                    ),
                )
                .with_related(buried)
                .with_hint(
                    "one observation test point at the cone exit rescues the whole \
                     buried region (§III-B)",
                )
                .with_fix(FixHint::ObservePoint { net: id }),
            );
        }
    }
}

/// Flags whole dead regions behind implication-proven constants: a
/// maximal implied-constant net (one that is a primary output or has a
/// reader the closure cannot fix) together with the gates that feed
/// *only* it. Folding the root to its constant and deleting the private
/// region is the paper's §I-B redundancy-removal transform, and the
/// attached fix says exactly that.
pub struct ImplicationDeadRegion;

impl Rule for ImplicationDeadRegion {
    fn id(&self) -> &'static str {
        "implication-dead-region"
    }
    fn description(&self) -> &'static str {
        "maximal implication-proven-constant nets with the region that only feeds them"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Some(engine) = ctx.implications() else {
            return;
        };
        let netlist = ctx.netlist();
        let is_output: Vec<bool> = {
            let mut v = vec![false; netlist.gate_count()];
            for &(g, _) in netlist.primary_outputs() {
                v[g.index()] = true;
            }
            v
        };
        for (id, gate) in netlist.iter() {
            if gate.kind().is_source() {
                continue;
            }
            let Some(value) = engine.implied_constant(id) else {
                continue;
            };
            // Maximality: folding a constant net whose every reader is
            // itself implied-constant would be subsumed by folding the
            // reader, so report only the outermost net of the region.
            let maximal = is_output[id.index()]
                || ctx.fanout()[id.index()]
                    .iter()
                    .any(|&(r, _)| engine.implied_constant(r).is_none());
            if !maximal {
                continue;
            }
            let region = exclusive_fanin_region(netlist, id);
            if region.is_empty() {
                continue;
            }
            report.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    self.category(),
                    id,
                    format!(
                        "net is provably constant {} and {} gate(s) exist only to feed it",
                        u8::from(value),
                        region.len(),
                    ),
                )
                .with_related(region)
                .with_hint(
                    "fold the net to its constant and delete the private region (§I-B \
                     redundancy removal); function is preserved because the stuck-at \
                     fault at the fold point is untestable",
                )
                .with_fix(FixHint::FoldConstant { net: id, value }),
            );
        }
    }
}

/// Flags XOR/XNOR gates fed by a power-up X that no input sequence is
/// guaranteed to flush. A comparison consuming such an X produces an
/// undefined result on every tester cycle until the offending storage is
/// initialized — the §III-B initialization argument, pointed at the place
/// the X actually does damage. The related nets name the uninitializable
/// storage elements (the X sources), and the fix targets the first of
/// them.
pub struct XSourceIntoCompare;

impl Rule for XSourceIntoCompare {
    fn id(&self) -> &'static str {
        "x-source-into-compare"
    }
    fn description(&self) -> &'static str {
        "XOR/XNOR comparisons consuming a power-up X from uninitializable storage"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Some(taint) = ctx.xprop() else {
            return;
        };
        for (id, gate) in ctx.netlist().iter() {
            if !matches!(gate.kind(), GateKind::Xor | GateKind::Xnor) {
                continue;
            }
            let mut sources: Vec<GateId> = gate
                .inputs()
                .iter()
                .filter_map(|&s| taint[s.index()])
                .collect();
            if sources.is_empty() {
                continue;
            }
            sources.sort();
            sources.dedup();
            let storage = sources[0];
            report.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    self.category(),
                    id,
                    format!(
                        "{} comparison consumes a power-up X from uninitializable \
                         storage {storage}; its result is undefined on every cycle",
                        gate.kind(),
                    ),
                )
                .with_related(sources)
                .with_hint(
                    "scan the uninitializable storage (§IV) or give it a CLEAR/PRESET \
                     line so the comparison settles (§III-B)",
                )
                .with_fix(FixHint::ScanConvert { storage }),
            );
        }
    }
}

/// Flags observability funnels: a net that every observation path of a
/// wide region passes through (a structural observability dominator)
/// while itself being expensive to observe. One observation test point
/// at the funnel rescues the entire dominated region at once — the best
/// value-per-pin placement §III-B argues for. Nested funnels are
/// deduplicated to the outermost qualifying net so a deep chain reports
/// once, not once per link.
pub struct ObservabilityDominatorBottleneck;

impl Rule for ObservabilityDominatorBottleneck {
    fn id(&self) -> &'static str {
        "observability-dominator-bottleneck"
    }
    fn description(&self) -> &'static str {
        "poorly observable nets that funnel every observation path of a wide region"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let (Some(scoap), Some(dom)) = (ctx.scoap(), ctx.dominators()) else {
            return;
        };
        let netlist = ctx.netlist();
        let limit = ctx.config().observability_limit;
        let min_gates = ctx.config().dominator_min_gates;
        let qualifies = |id: GateId| {
            let co = scoap.observability(id);
            co < INFINITE && co > limit && dom.dominated_count(id) >= min_gates
        };
        for id in netlist.ids() {
            if !qualifies(id) {
                continue;
            }
            // Outermost dedup: a funnel whose own (non-storage) reader is
            // a qualifying funnel too is subsumed by the reader.
            let subsumed = ctx.fanout()[id.index()]
                .iter()
                .any(|&(r, _)| !netlist.gate(r).kind().is_storage() && qualifies(r));
            if subsumed {
                continue;
            }
            report.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    self.category(),
                    id,
                    format!(
                        "every observation path of {} gate(s) funnels through this net, \
                         whose own observability cost {} exceeds the limit {limit}",
                        dom.dominated_count(id),
                        scoap.observability(id),
                    ),
                )
                .with_hint(
                    "an observation test point at the funnel rescues the whole dominated \
                     region with one pin (§III-B)",
                )
                .with_fix(FixHint::ObservePoint { net: id }),
            );
        }
    }
}

/// Flags reconvergent fanout whose meet gate is provably constant: the
/// correlated paths do not merely complicate sensitization (the
/// informational `reconvergent-fanout` note) — they cancel, so faults on
/// the stem are masked along these paths entirely. This is §I-B
/// redundancy created specifically by reconvergence, reported at the
/// stem with the constant meet as the witness.
pub struct ReconvergentConstantMask;

impl Rule for ReconvergentConstantMask {
    fn id(&self) -> &'static str {
        "reconvergent-constant-mask"
    }
    fn description(&self) -> &'static str {
        "reconvergent branches that cancel into a provably constant meet gate"
    }
    fn category(&self) -> Category {
        Category::Testability
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let Some(constants) = ctx.constants() else {
            return;
        };
        let netlist = ctx.netlist();
        // One diagnostic per constant meet, at its first stem: several
        // stems can reconverge at the same dead gate.
        let mut seen = std::collections::BTreeSet::new();
        for rec in reconvergent_fanouts(netlist) {
            let value = constants[rec.meet.index()].to_bool().or_else(|| {
                ctx.implications()
                    .and_then(|eng| eng.implied_constant(rec.meet))
            });
            let Some(value) = value else {
                continue;
            };
            if !seen.insert(rec.meet) {
                continue;
            }
            report.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    self.category(),
                    rec.stem,
                    format!(
                        "fanout branches reconverge at {}, which is provably constant {}: \
                         stem faults are masked along these paths",
                        rec.meet,
                        u8::from(value),
                    ),
                )
                .with_related(vec![rec.meet])
                .with_hint(
                    "the reconvergent structure cancels; fold the meet to its constant \
                     or redesign the stem logic (§I-B)",
                )
                .with_fix(FixHint::FoldConstant {
                    net: rec.meet,
                    value,
                }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::LintConfig;
    use crate::registry::Registry;
    use dft_netlist::circuits::{
        binary_counter, c17, parity_tree, redundant_fixture, ripple_carry_adder, shift_register,
    };
    use dft_netlist::Netlist as NL;

    fn lint(netlist: &NL) -> LintReport {
        Registry::with_default_rules().run(netlist)
    }

    fn lint_with(netlist: &NL, config: LintConfig) -> LintReport {
        Registry::with_default_rules().run_with(netlist, config)
    }

    fn count(report: &LintReport, rule: &str) -> usize {
        report.by_rule(rule).count()
    }

    // --- comb-feedback ---------------------------------------------------

    #[test]
    fn comb_feedback_triggers_on_a_cycle() {
        let mut n = NL::new("loop");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::And, &[a, a]).unwrap();
        let g2 = n.add_gate(GateKind::Or, &[g1, a]).unwrap();
        n.reconnect_input(g1, 1, g2).unwrap();
        n.mark_output(g2, "y").unwrap();
        let r = lint(&n);
        assert_eq!(count(&r, "comb-feedback"), 1);
        let d = r.by_rule("comb-feedback").next().unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.related.len(), 1, "both loop gates are reported");
        assert!(r.has_errors());
    }

    #[test]
    fn comb_feedback_reports_each_loop_and_self_loops() {
        let mut n = NL::new("loops");
        let a = n.add_input("a");
        // Loop 1: g1 <-> g2. Loop 2: g3 -> g3 (self).
        let g1 = n.add_gate(GateKind::And, &[a, a]).unwrap();
        let g2 = n.add_gate(GateKind::Or, &[g1, a]).unwrap();
        n.reconnect_input(g1, 1, g2).unwrap();
        let g3 = n.add_gate(GateKind::Nand, &[a, a]).unwrap();
        n.reconnect_input(g3, 1, g3).unwrap();
        let r = lint(&n);
        assert_eq!(count(&r, "comb-feedback"), 2);
    }

    #[test]
    fn comb_feedback_clean_on_storage_feedback() {
        // binary_counter feeds state back through DFFs: legal.
        let r = lint(&binary_counter(4));
        assert_eq!(count(&r, "comb-feedback"), 0);
    }

    // --- unused-input ----------------------------------------------------

    #[test]
    fn unused_input_triggers() {
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let _dangling = n.add_input("nc");
        let g = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(g, "y").unwrap();
        let r = lint(&n);
        assert_eq!(count(&r, "unused-input"), 1);
        assert!(r
            .by_rule("unused-input")
            .next()
            .unwrap()
            .message
            .contains("'nc'"));
    }

    #[test]
    fn unused_input_clean_when_input_is_an_output() {
        // A feed-through pin: read by nothing but observed directly.
        let mut n = NL::new("t");
        let a = n.add_input("a");
        n.mark_output(a, "y").unwrap();
        assert_eq!(count(&lint(&n), "unused-input"), 0);
    }

    // --- dead-logic ------------------------------------------------------

    #[test]
    fn dead_logic_triggers_on_unobservable_cone() {
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let live = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let dead = n.add_gate(GateKind::Or, &[a, b]).unwrap();
        let deader = n.add_gate(GateKind::Not, &[dead]).unwrap();
        n.mark_output(live, "y").unwrap();
        let r = lint(&n);
        assert_eq!(count(&r, "dead-logic"), 2);
        let flagged: Vec<GateId> = r.by_rule("dead-logic").map(|d| d.gate).collect();
        assert!(flagged.contains(&dead) && flagged.contains(&deader));
    }

    #[test]
    fn dead_logic_sees_through_storage() {
        // gate -> DFF -> output: observable across the clock boundary.
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let g = n.add_gate(GateKind::Not, &[a]).unwrap();
        let d = n.add_dff(g).unwrap();
        n.mark_output(d, "q").unwrap();
        assert_eq!(count(&lint(&n), "dead-logic"), 0);
    }

    #[test]
    fn dead_logic_clean_on_c17() {
        assert_eq!(count(&lint(&c17()), "dead-logic"), 0);
    }

    // --- constant-output -------------------------------------------------

    #[test]
    fn constant_output_triggers_on_controlled_gate() {
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let zero = n.add_const(false);
        let g = n.add_gate(GateKind::And, &[a, zero]).unwrap();
        n.mark_output(g, "y").unwrap();
        let r = lint(&n);
        assert_eq!(count(&r, "constant-output"), 1);
        let d = r.by_rule("constant-output").next().unwrap();
        assert_eq!(d.gate, g);
        assert!(d.message.contains("constant 0"));
        assert!(d.message.contains("stuck-at-0"));
    }

    #[test]
    fn constant_output_flags_tied_noncontrolling_pin() {
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let zero = n.add_const(false);
        let g = n.add_gate(GateKind::Or, &[a, zero]).unwrap();
        n.mark_output(g, "y").unwrap();
        let r = lint(&n);
        assert_eq!(count(&r, "constant-output"), 1);
        let d = r.by_rule("constant-output").next().unwrap();
        assert!(d.message.contains("pin 1"));
        assert!(d.message.contains("noncontrolling"));
        assert_eq!(d.related, vec![zero]);
    }

    #[test]
    fn constant_output_clean_on_c17() {
        assert_eq!(count(&lint(&c17()), "constant-output"), 0);
    }

    // --- excessive-fanout ------------------------------------------------

    #[test]
    fn excessive_fanout_triggers_beyond_the_bound() {
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        for i in 0..3 {
            let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
            n.mark_output(g, format!("y{i}")).unwrap();
        }
        let tight = LintConfig {
            max_fanout: 2,
            ..LintConfig::default()
        };
        let r = lint_with(&n, tight);
        // a and b each drive 3 pins.
        assert_eq!(count(&r, "excessive-fanout"), 2);
        assert!(r
            .by_rule("excessive-fanout")
            .next()
            .unwrap()
            .message
            .contains("drives 3 input pins (limit 2)"));
    }

    #[test]
    fn excessive_fanout_clean_at_default_on_library_circuits() {
        assert_eq!(count(&lint(&c17()), "excessive-fanout"), 0);
        assert_eq!(count(&lint(&ripple_carry_adder(8)), "excessive-fanout"), 0);
    }

    // --- deep-logic ------------------------------------------------------

    #[test]
    fn deep_logic_triggers_with_a_tight_bound() {
        let tight = LintConfig {
            max_depth: 5,
            ..LintConfig::default()
        };
        let r = lint_with(&ripple_carry_adder(16), tight);
        assert!(count(&r, "deep-logic") > 0);
        assert!(r
            .by_rule("deep-logic")
            .next()
            .unwrap()
            .message
            .contains("exceeds bound 5"));
    }

    #[test]
    fn deep_logic_clean_at_default() {
        assert_eq!(count(&lint(&ripple_carry_adder(16)), "deep-logic"), 0);
    }

    // --- latch-race ------------------------------------------------------

    #[test]
    fn latch_race_triggers_on_shift_register() {
        let r = lint(&shift_register(4));
        // Stages 1..3 are fed directly by the previous stage.
        assert_eq!(count(&r, "latch-race"), 3);
        let d = r.by_rule("latch-race").next().unwrap();
        assert_eq!(d.related.len(), 1);
        assert!(d.message.contains("race"));
    }

    #[test]
    fn latch_race_clean_on_counter() {
        // Counter state feeds back through XOR/AND logic, never directly.
        assert_eq!(count(&lint(&binary_counter(4)), "latch-race"), 0);
    }

    // --- uninitializable-storage ----------------------------------------

    #[test]
    fn uninitializable_storage_triggers_on_counter() {
        // No reset: state can never be steered from power-up X.
        let r = lint(&binary_counter(4));
        assert_eq!(count(&r, "uninitializable-storage"), 4);
    }

    #[test]
    fn uninitializable_storage_clean_on_shift_register() {
        // Serial input reaches every stage.
        assert_eq!(
            count(&lint(&shift_register(4)), "uninitializable-storage"),
            0
        );
    }

    // --- hard-to-control / hard-to-observe -------------------------------

    #[test]
    fn hard_to_control_triggers_with_a_tight_limit() {
        let tight = LintConfig {
            controllability_limit: 5,
            ..LintConfig::default()
        };
        let r = lint_with(&ripple_carry_adder(16), tight);
        assert!(count(&r, "hard-to-control") > 0);
        assert!(r
            .by_rule("hard-to-control")
            .next()
            .unwrap()
            .message
            .contains("exceeds the limit 5"));
    }

    #[test]
    fn hard_to_observe_triggers_with_a_tight_limit() {
        let tight = LintConfig {
            observability_limit: 5,
            ..LintConfig::default()
        };
        let r = lint_with(&ripple_carry_adder(16), tight);
        assert!(count(&r, "hard-to-observe") > 0);
    }

    #[test]
    fn scoap_rules_clean_at_default_limits() {
        for n in [c17(), ripple_carry_adder(16), parity_tree(16)] {
            let r = lint(&n);
            assert_eq!(count(&r, "hard-to-control"), 0, "{}", n.name());
            assert_eq!(count(&r, "hard-to-observe"), 0, "{}", n.name());
        }
    }

    #[test]
    fn infinite_costs_are_not_reported_as_hard() {
        // The counter's uncontrollable state is the uninitializable-storage
        // rule's finding, not a "hard but finite" one.
        let r = lint(&binary_counter(4));
        assert_eq!(count(&r, "hard-to-control"), 0);
    }

    // --- reconvergent-fanout ---------------------------------------------

    #[test]
    fn reconvergent_fanout_notes_c17() {
        let r = lint(&c17());
        assert!(count(&r, "reconvergent-fanout") > 0);
        for d in r.by_rule("reconvergent-fanout") {
            assert_eq!(d.severity, Severity::Info);
            assert_eq!(d.related.len(), 1);
        }
        // Info only: c17 still counts as clean.
        assert!(r.is_clean());
    }

    #[test]
    fn reconvergent_fanout_clean_on_fanout_free_tree() {
        assert_eq!(count(&lint(&parity_tree(8)), "reconvergent-fanout"), 0);
    }

    // --- redundant-logic / constant-implied-net --------------------------

    #[test]
    fn redundant_logic_fires_on_the_fixture() {
        // `live = OR(a,b)` is fully masked: its only reader ANDs it with
        // a net the implication closure proves constant 0.
        let n = redundant_fixture();
        let r = lint(&n);
        assert!(count(&r, "redundant-logic") > 0, "{}", r.to_text());
        let d = r.by_rule("redundant-logic").next().unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("statically untestable"));
    }

    #[test]
    fn redundant_logic_silent_on_c17() {
        assert_eq!(count(&lint(&c17()), "redundant-logic"), 0);
    }

    #[test]
    fn constant_implied_net_fires_on_the_fixture() {
        // `z = AND(a, NOT a)` is constant 0 only through implication —
        // no constant source feeds it, so `constant-output` stays silent
        // while this rule reports it with the conflict witness.
        let n = redundant_fixture();
        let r = lint(&n);
        assert_eq!(count(&r, "constant-output"), 0, "{}", r.to_text());
        assert!(count(&r, "constant-implied-net") > 0, "{}", r.to_text());
        let d = r.by_rule("constant-implied-net").next().unwrap();
        assert!(d.message.contains("constant 0"));
    }

    #[test]
    fn constant_implied_net_silent_on_c17() {
        assert_eq!(count(&lint(&c17()), "constant-implied-net"), 0);
    }

    #[test]
    fn implication_rules_silent_on_plainly_tied_constants() {
        // A net constant by simple propagation belongs to constant-output,
        // not to constant-implied-net.
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let zero = n.add_const(false);
        let g = n.add_gate(GateKind::And, &[a, zero]).unwrap();
        n.mark_output(g, "y").unwrap();
        let r = lint(&n);
        assert_eq!(count(&r, "constant-output"), 1);
        assert_eq!(count(&r, "constant-implied-net"), 0);
    }

    // --- deep-unobservable-cone ------------------------------------------

    /// A linear XOR chain: observability cost climbs steadily away from
    /// the single output, so a tight limit buries the input end.
    fn xor_chain(stages: usize) -> NL {
        let mut n = NL::new("chain");
        let mut prev = n.add_input("a0");
        for i in 1..=stages {
            let b = n.add_input(format!("a{i}"));
            prev = n.add_gate(GateKind::Xor, &[prev, b]).unwrap();
        }
        n.mark_output(prev, "y").unwrap();
        n
    }

    #[test]
    fn deep_unobservable_cone_fires_once_at_the_cone_exit() {
        let tight = LintConfig {
            deep_cone_observability_limit: 10,
            deep_cone_min_gates: 4,
            ..LintConfig::default()
        };
        let r = lint_with(&xor_chain(30), tight);
        // The chain has one buried region, reported once at its exit —
        // not once per over-limit net.
        assert_eq!(count(&r, "deep-unobservable-cone"), 1, "{}", r.to_text());
        let d = r.by_rule("deep-unobservable-cone").next().unwrap();
        assert!(d.related.len() + 1 >= 4, "cone size: {}", d.related.len());
        assert_eq!(d.fix, Some(FixHint::ObservePoint { net: d.gate }));
    }

    #[test]
    fn deep_unobservable_cone_silent_at_defaults_on_library_circuits() {
        for n in [
            c17(),
            ripple_carry_adder(16),
            parity_tree(16),
            binary_counter(4),
            shift_register(4),
        ] {
            let r = lint(&n);
            assert_eq!(count(&r, "deep-unobservable-cone"), 0, "{}", n.name());
        }
    }

    #[test]
    fn deep_unobservable_cone_needs_a_cone_not_a_point() {
        // Same chain, but demand more buried gates than it has.
        let tight = LintConfig {
            deep_cone_observability_limit: 10,
            deep_cone_min_gates: 100,
            ..LintConfig::default()
        };
        let r = lint_with(&xor_chain(30), tight);
        assert_eq!(count(&r, "deep-unobservable-cone"), 0);
    }

    // --- implication-dead-region -----------------------------------------

    #[test]
    fn implication_dead_region_fires_on_the_fixture() {
        // y = AND(live, z) with z provably 0: y is the maximal constant
        // net, and na/z/live exist only to feed it.
        let n = redundant_fixture();
        let r = lint(&n);
        assert!(count(&r, "implication-dead-region") > 0, "{}", r.to_text());
        let d = r.by_rule("implication-dead-region").next().unwrap();
        assert!(!d.related.is_empty(), "region is the point of the rule");
        assert!(matches!(d.fix, Some(FixHint::FoldConstant { .. })));
    }

    #[test]
    fn implication_dead_region_silent_on_c17() {
        assert_eq!(count(&lint(&c17()), "implication-dead-region"), 0);
    }

    // --- x-source-into-compare -------------------------------------------

    #[test]
    fn x_source_into_compare_fires_on_the_counter_increment() {
        // The resetless counter's next-state XORs consume X from the
        // uninitializable state bits.
        let r = lint(&binary_counter(4));
        assert!(count(&r, "x-source-into-compare") > 0, "{}", r.to_text());
        let d = r.by_rule("x-source-into-compare").next().unwrap();
        assert!(!d.related.is_empty(), "the X sources are the witnesses");
        assert!(matches!(d.fix, Some(FixHint::ScanConvert { .. })));
        assert_eq!(d.code, "DFT-016");
    }

    #[test]
    fn x_source_into_compare_silent_on_flushable_and_stateless_designs() {
        // Every shift-register stage can be steered from the serial
        // input; c17 has no storage at all.
        assert_eq!(count(&lint(&shift_register(4)), "x-source-into-compare"), 0);
        assert_eq!(count(&lint(&c17()), "x-source-into-compare"), 0);
    }

    // --- observability-dominator-bottleneck ------------------------------

    #[test]
    fn dominator_bottleneck_fires_once_at_the_outermost_funnel() {
        // Every chain gate dominates its whole tail; with a tight
        // observability limit a contiguous run of them qualifies, and the
        // outermost-dedup collapses that run to a single report.
        let tight = LintConfig {
            observability_limit: 10,
            ..LintConfig::default()
        };
        let r = lint_with(&xor_chain(30), tight);
        assert_eq!(
            count(&r, "observability-dominator-bottleneck"),
            1,
            "{}",
            r.to_text()
        );
        let d = r
            .by_rule("observability-dominator-bottleneck")
            .next()
            .unwrap();
        assert_eq!(d.fix, Some(FixHint::ObservePoint { net: d.gate }));
        assert_eq!(d.code, "DFT-017");
    }

    #[test]
    fn dominator_bottleneck_needs_a_wide_region() {
        // Same chain and limit, but demand a wider dominated region than
        // any gate has.
        let tight = LintConfig {
            observability_limit: 10,
            dominator_min_gates: 1000,
            ..LintConfig::default()
        };
        let r = lint_with(&xor_chain(30), tight);
        assert_eq!(count(&r, "observability-dominator-bottleneck"), 0);
    }

    #[test]
    fn dominator_bottleneck_silent_at_defaults_on_library_circuits() {
        for n in [
            c17(),
            ripple_carry_adder(16),
            parity_tree(16),
            binary_counter(4),
            shift_register(4),
        ] {
            let r = lint(&n);
            assert_eq!(
                count(&r, "observability-dominator-bottleneck"),
                0,
                "{}",
                n.name()
            );
        }
    }

    // --- reconvergent-constant-mask --------------------------------------

    #[test]
    fn reconvergent_constant_mask_fires_on_the_fixture() {
        // In redundant_fixture the branches of `a` reconverge at
        // `z = AND(a, NOT a)`, constant 0 by implication.
        let n = redundant_fixture();
        let r = lint(&n);
        assert!(
            count(&r, "reconvergent-constant-mask") > 0,
            "{}",
            r.to_text()
        );
        let d = r.by_rule("reconvergent-constant-mask").next().unwrap();
        assert_eq!(d.related.len(), 1, "the constant meet is the witness");
        assert!(matches!(d.fix, Some(FixHint::FoldConstant { .. })));
        assert_eq!(d.code, "DFT-018");
    }

    #[test]
    fn reconvergent_constant_mask_reports_each_meet_once() {
        let n = redundant_fixture();
        let r = lint(&n);
        let mut meets: Vec<GateId> = r
            .by_rule("reconvergent-constant-mask")
            .map(|d| d.related[0])
            .collect();
        meets.sort();
        meets.dedup();
        assert_eq!(
            meets.len(),
            count(&r, "reconvergent-constant-mask"),
            "one diagnostic per constant meet"
        );
    }

    #[test]
    fn reconvergent_constant_mask_silent_on_c17() {
        // c17 reconverges plenty, but no meet is constant.
        assert_eq!(count(&lint(&c17()), "reconvergent-constant-mask"), 0);
    }

    // --- fix hints ride along --------------------------------------------

    #[test]
    fn machine_applicable_fixes_are_attached() {
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let live = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let dead = n.add_gate(GateKind::Or, &[a, b]).unwrap();
        n.mark_output(live, "y").unwrap();
        let r = lint(&n);
        let d = r.by_rule("dead-logic").next().unwrap();
        assert_eq!(d.fix, Some(FixHint::ObservePoint { net: dead }));
        assert_eq!(d.code, "DFT-003");
    }

    // --- whole-registry smoke --------------------------------------------

    #[test]
    fn c17_is_clean_overall() {
        let r = lint(&c17());
        assert!(r.is_clean(), "unexpected findings:\n{}", r.to_text());
        assert!(!r.has_errors());
    }
}
