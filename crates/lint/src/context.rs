//! Shared analysis state handed to every rule.

use std::cell::OnceCell;

use dft_analyze::{Dominators, GraphView, XProp, XWitness};
use dft_implic::ImplicationEngine;
use dft_netlist::{GateId, Levelization, LevelizeError, Netlist};
use dft_sim::Logic;
use dft_testability::TestabilityReport;

/// Thresholds the built-in rules check against.
///
/// The defaults are deliberately permissive — they flag outliers, not
/// ordinary structure. Every library benchmark circuit lints clean under
/// them (a property test enforces this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintConfig {
    /// Maximum combinational logic depth (`deep-logic`). Default 50 —
    /// the same generous settle bound `dft-scan`'s rule checker uses.
    pub max_depth: u32,
    /// Maximum input pins one net may drive (`excessive-fanout`).
    /// Default 24 — above the carry-lookahead generate/propagate nets
    /// (fanout 21), the heaviest load in the benchmark library.
    pub max_fanout: usize,
    /// Highest acceptable finite SCOAP controllability cost
    /// (`hard-to-control`). Default 250.
    pub controllability_limit: u32,
    /// Highest acceptable finite SCOAP observability cost
    /// (`hard-to-observe`). Default 250.
    pub observability_limit: u32,
    /// Observability cost above which a net is a candidate root for
    /// `deep-unobservable-cone`. Default 350 — stricter than
    /// `observability_limit` so the cone rule only fires on designs
    /// with genuinely buried regions, not everything `hard-to-observe`
    /// already flags.
    pub deep_cone_observability_limit: u32,
    /// Minimum number of over-limit gates in a root's fan-in cone for
    /// `deep-unobservable-cone` to fire. Default 4 — a single buried
    /// net is a point problem, a cone of them wants a test point.
    pub deep_cone_min_gates: usize,
    /// Minimum number of gates a net must observability-dominate for
    /// `observability-dominator-bottleneck` to fire. Default 16 — a
    /// funnel worth an observe point guards a real region, not a pair
    /// of gates.
    pub dominator_min_gates: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            max_depth: 50,
            max_fanout: 24,
            controllability_limit: 250,
            observability_limit: 250,
            deep_cone_observability_limit: 350,
            deep_cone_min_gates: 4,
            dominator_min_gates: 16,
        }
    }
}

/// Shared analyses handed to every rule in one run.
///
/// Rules read, never compute — but the expensive analyses are computed
/// *lazily*, on the first rule that asks. Levelization and the fanout
/// map are cheap and eager; SCOAP, constant propagation, the
/// X-propagation/dominator framework passes and the implication engine
/// each materialize once on first access and are shared by every later
/// rule. A run whose rule set never touches the implication engine
/// (quadratic in gate count: one learning propagation per literal)
/// never pays for it — which is what keeps linting 10⁵–10⁶-gate
/// netlists with the structural/SCOAP rule subset linear. On a cyclic
/// netlist only the fanout map is available — rules other than the
/// feedback check bail out gracefully.
pub struct LintContext<'n> {
    netlist: &'n Netlist,
    config: LintConfig,
    levelization: Result<Levelization, LevelizeError>,
    fanout: Vec<Vec<(GateId, u8)>>,
    scoap: OnceCell<Option<TestabilityReport>>,
    constants: OnceCell<Option<Vec<Logic>>>,
    framework: OnceCell<Option<(Vec<XWitness>, Dominators)>>,
    implications: OnceCell<Option<ImplicationEngine<'n>>>,
}

impl<'n> LintContext<'n> {
    /// Runs the shared analyses over `netlist`.
    #[must_use]
    pub fn new(netlist: &'n Netlist, config: LintConfig) -> Self {
        LintContext {
            netlist,
            config,
            levelization: netlist.levelize(),
            fanout: netlist.fanout_map(),
            scoap: OnceCell::new(),
            constants: OnceCell::new(),
            framework: OnceCell::new(),
            implications: OnceCell::new(),
        }
    }

    /// The framework analyses share one graph view; they need the
    /// finished SCOAP and constant facts as inputs, so asking for
    /// either X-propagation or dominators forces both prerequisites.
    fn framework(&self) -> Option<&(Vec<XWitness>, Dominators)> {
        self.framework
            .get_or_init(|| {
                let lv = self.levelization.as_ref().ok()?;
                let report = self.scoap()?;
                let consts = self.constants()?;
                let n = self.netlist.gate_count();
                let level: Vec<u32> = (0..n).map(|i| lv.level(GateId::from_index(i))).collect();
                let is_output = dft_analyze::output_mask(self.netlist);
                let view = GraphView {
                    netlist: self.netlist,
                    level: &level,
                    fanout: &self.fanout,
                    is_output: &is_output,
                };
                let cc: Vec<(u32, u32)> = (0..n)
                    .map(|i| {
                        let m = report.measure(GateId::from_index(i));
                        (m.cc0, m.cc1)
                    })
                    .collect();
                let xp = XProp {
                    constants: consts,
                    cc: &cc,
                };
                let taint = dft_analyze::solve(&xp, &view, lv.order());
                Some((taint, Dominators::compute(&view)))
            })
            .as_ref()
    }

    /// The netlist under analysis.
    #[must_use]
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The thresholds for this run.
    #[must_use]
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Levelization of the combinational frame, or the cycle error.
    pub fn levelization(&self) -> Result<&Levelization, LevelizeError> {
        self.levelization.as_ref().map_err(|&e| e)
    }

    /// `(reader, pin)` pairs per driving gate.
    #[must_use]
    pub fn fanout(&self) -> &[Vec<(GateId, u8)>] {
        &self.fanout
    }

    /// SCOAP measures (`None` on cyclic netlists). Computed on first
    /// access, then shared.
    #[must_use]
    pub fn scoap(&self) -> Option<&TestabilityReport> {
        self.scoap
            .get_or_init(|| {
                self.levelization.is_ok().then(|| {
                    dft_testability::analyze(self.netlist).expect("levelization succeeded")
                })
            })
            .as_ref()
    }

    /// Per-net constant-propagation values with every primary input and
    /// storage output at X (`None` on cyclic netlists). A known value
    /// here is a value the net holds under *every* input assignment.
    /// Computed on first access, then shared.
    #[must_use]
    pub fn constants(&self) -> Option<&[Logic]> {
        self.constants
            .get_or_init(|| {
                self.levelization
                    .as_ref()
                    .ok()
                    .map(|lv| propagate_constants(self.netlist, lv))
            })
            .as_deref()
    }

    /// Per-net X-propagation witnesses: the uninitializable storage
    /// element whose power-up X can reach the net, if any (`None` on
    /// cyclic netlists). Computed on first access, then shared.
    #[must_use]
    pub fn xprop(&self) -> Option<&[XWitness]> {
        self.framework().map(|(taint, _)| taint.as_slice())
    }

    /// Structural observability dominators (`None` on cyclic netlists):
    /// which single net funnels every observation path of a region.
    /// Computed on first access, then shared.
    #[must_use]
    pub fn dominators(&self) -> Option<&Dominators> {
        self.framework().map(|(_, dom)| dom)
    }

    /// The static implication engine with SOCRATES-style learned
    /// implications (`None` on cyclic netlists): implied constants that
    /// plain constant propagation misses, unsettable literals, and the
    /// statically-untestable-fault oracle.
    ///
    /// This is by far the most expensive shared analysis — one learning
    /// propagation per literal, quadratic in gate count — so it is only
    /// built when a rule that reads implications is actually in the
    /// run's rule set.
    #[must_use]
    pub fn implications(&self) -> Option<&ImplicationEngine<'n>> {
        self.implications
            .get_or_init(|| {
                self.levelization
                    .is_ok()
                    .then(|| ImplicationEngine::new(self.netlist))
            })
            .as_ref()
    }
}

/// Three-valued forward evaluation with all inputs and state unknown:
/// whatever comes out known is structurally constant. Thin wrapper over
/// the `dft-analyze` framework pass (bit-identical to the historical
/// in-crate loop; the framework's equivalence tests pin this down).
fn propagate_constants(netlist: &Netlist, lv: &Levelization) -> Vec<Logic> {
    let level: Vec<u32> = (0..netlist.gate_count())
        .map(|i| lv.level(GateId::from_index(i)))
        .collect();
    dft_analyze::constants::compute(netlist, &level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::c17;
    use dft_netlist::{GateKind, Netlist as NL};

    #[test]
    fn context_serves_every_analysis_on_acyclic_designs() {
        let n = c17();
        let ctx = LintContext::new(&n, LintConfig::default());
        assert!(ctx.levelization().is_ok());
        assert!(ctx.scoap().is_some());
        assert!(ctx.constants().is_some());
        assert!(ctx.xprop().is_some());
        assert!(ctx.dominators().is_some());
        assert_eq!(ctx.fanout().len(), n.gate_count());
        assert_eq!(ctx.config().max_depth, 50);
    }

    #[test]
    fn cyclic_designs_only_get_the_fanout_map() {
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::And, &[a, a]).unwrap();
        let g2 = n.add_gate(GateKind::Or, &[g1, a]).unwrap();
        n.reconnect_input(g1, 1, g2).unwrap();
        let ctx = LintContext::new(&n, LintConfig::default());
        assert!(ctx.levelization().is_err());
        assert!(ctx.scoap().is_none());
        assert!(ctx.constants().is_none());
        assert!(ctx.xprop().is_none());
        assert!(ctx.dominators().is_none());
        assert_eq!(ctx.fanout().len(), 3);
    }

    #[test]
    fn constant_propagation_finds_structural_constants() {
        let mut n = NL::new("t");
        let a = n.add_input("a");
        let zero = n.add_const(false);
        let dead = n.add_gate(GateKind::And, &[a, zero]).unwrap();
        let live = n.add_gate(GateKind::Or, &[a, zero]).unwrap();
        let inv = n.add_gate(GateKind::Not, &[dead]).unwrap();
        n.mark_output(live, "y").unwrap();
        n.mark_output(inv, "z").unwrap();
        let ctx = LintContext::new(&n, LintConfig::default());
        let c = ctx.constants().unwrap();
        assert_eq!(c[a.index()], Logic::X);
        assert_eq!(c[zero.index()], Logic::Zero);
        assert_eq!(c[dead.index()], Logic::Zero, "AND with constant 0");
        assert_eq!(c[live.index()], Logic::X, "OR with noncontrolling 0");
        assert_eq!(c[inv.index()], Logic::One, "NOT of a constant");
    }
}
