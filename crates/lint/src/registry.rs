//! The rule trait and the registry that runs rules over a netlist.

use dft_netlist::Netlist;

use crate::context::{LintConfig, LintContext};
use crate::diag::{Category, LintReport, Severity};
use crate::rules;

/// One design-rule check.
///
/// Rules are stateless: all shared analysis lives in [`LintContext`],
/// and thresholds come from [`LintConfig`]. A rule appends zero or more
/// [`crate::Diagnostic`]s to the report; it must tag them with its own
/// [`Rule::id`] so report filtering and tooling stay consistent.
pub trait Rule {
    /// Stable kebab-case identifier (used in reports and CLI filters).
    fn id(&self) -> &'static str;
    /// One-line description for `tessera-lint --list-rules`.
    fn description(&self) -> &'static str;
    /// The aspect of the design this rule examines.
    fn category(&self) -> Category;
    /// Severity of this rule's findings.
    fn severity(&self) -> Severity;
    /// Runs the check, appending findings to `report`.
    fn check(&self, ctx: &LintContext<'_>, report: &mut LintReport);
}

/// An ordered collection of rules that lints netlists.
#[derive(Default)]
pub struct Registry {
    rules: Vec<Box<dyn Rule>>,
}

impl Registry {
    /// A registry with no rules (build your own set with
    /// [`Registry::register`]).
    #[must_use]
    pub fn empty() -> Self {
        Registry::default()
    }

    /// The full built-in rule set — see [`rules`] for the list.
    #[must_use]
    pub fn with_default_rules() -> Self {
        let mut r = Registry::empty();
        for rule in rules::default_rules() {
            r.register(rule);
        }
        r
    }

    /// Appends a rule. Rules run in registration order.
    pub fn register(&mut self, rule: Box<dyn Rule>) {
        self.rules.push(rule);
    }

    /// Removes the rule with the given id (no-op if absent).
    pub fn disable(&mut self, id: &str) {
        self.rules.retain(|r| r.id() != id);
    }

    /// The registered rules, in run order.
    pub fn rules(&self) -> impl Iterator<Item = &dyn Rule> {
        self.rules.iter().map(AsRef::as_ref)
    }

    /// Number of registered rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the registry has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Lints `netlist` with default thresholds.
    #[must_use]
    pub fn run(&self, netlist: &Netlist) -> LintReport {
        self.run_with(netlist, LintConfig::default())
    }

    /// Lints `netlist` with explicit thresholds. The report is sorted
    /// most-severe first.
    #[must_use]
    pub fn run_with(&self, netlist: &Netlist, config: LintConfig) -> LintReport {
        let ctx = LintContext::new(netlist, config);
        let mut report = LintReport::new(netlist.name());
        for rule in &self.rules {
            rule.check(&ctx, &mut report);
        }
        report.sort();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::c17;

    #[test]
    fn default_registry_carries_the_documented_rule_set() {
        let r = Registry::with_default_rules();
        assert!(r.len() >= 8, "the checker promises at least 8 rules");
        let ids: Vec<&str> = r.rules().map(Rule::id).collect();
        // Ids are unique and kebab-case.
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate rule id");
        for id in &ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{id} is not kebab-case"
            );
        }
        for rule in r.rules() {
            assert!(
                !rule.description().is_empty(),
                "{} lacks a description",
                rule.id()
            );
        }
    }

    #[test]
    fn disable_removes_a_rule() {
        let mut r = Registry::with_default_rules();
        let before = r.len();
        r.disable("deep-logic");
        assert_eq!(r.len(), before - 1);
        r.disable("no-such-rule");
        assert_eq!(r.len(), before - 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_registry_reports_nothing() {
        let report = Registry::empty().run(&c17());
        assert!(report.diagnostics().is_empty());
        assert_eq!(report.design(), "c17");
    }
}
