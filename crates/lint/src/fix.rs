//! Machine-applicable fix hints and the stable rule-code table.
//!
//! A [`FixHint`] is the structured counterpart of a diagnostic's free-text
//! `hint`: a rustc-suggestion-style description of a concrete netlist
//! edit that a repair tool can expand into an actual transform (see the
//! `dft-repair` crate). Hints name *what* to change and *where*; the
//! expansion into gates/pins — test-point multiplexers, degating
//! hardware, scan cells, constant folding — stays in `dft-adhoc`,
//! `dft-scan` and `dft-repair`, so a hint is stable even when a
//! transform's implementation details change.

use std::fmt;

use dft_netlist::GateId;

/// A machine-applicable repair suggestion attached to a diagnostic.
///
/// Every variant corresponds to a transform the workspace can actually
/// perform; a repair pipeline may expand one hint into several concrete
/// candidate edits (for example a control-point hint can become either a
/// test-mode multiplexer or degating hardware).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FixHint {
    /// Route `net` to a new observation test point (an extra primary
    /// output), per §III-B.
    ObservePoint {
        /// The unobservable net.
        net: GateId,
    },
    /// Make `net` externally drivable through a test-mode multiplexer
    /// or degating hardware, per §III-B / Fig. 2.
    ControlPoint {
        /// The uncontrollable net.
        net: GateId,
    },
    /// Insert degating hardware (blocking AND plus control OR) on
    /// `net`, per Fig. 2 — the partitioning form of a control point.
    Degate {
        /// The net to degate.
        net: GateId,
    },
    /// Put every storage element behind a synchronous CLEAR line so one
    /// pin initializes the machine (§III-B).
    AddReset,
    /// Place `storage` on a scan chain (§IV) so its state becomes a
    /// pseudo primary input/output.
    ScanConvert {
        /// The storage element to convert.
        storage: GateId,
    },
    /// Replace `net` — proven constant `value` under every input
    /// assignment — with a tied constant and delete the logic that only
    /// feeds it (§I-B redundancy removal).
    FoldConstant {
        /// The provably constant net.
        net: GateId,
        /// The constant it always holds.
        value: bool,
    },
    /// Remove the provably redundant gate by folding its output to
    /// `value` (sound because its stuck-at-`value` fault is untestable).
    RemoveRedundant {
        /// The redundant gate.
        gate: GateId,
        /// A fold value whose stuck-at fault was proven untestable.
        value: bool,
    },
}

impl FixHint {
    /// Stable kebab-case discriminator (used in JSON reports and repair
    /// plans).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            FixHint::ObservePoint { .. } => "observe-point",
            FixHint::ControlPoint { .. } => "control-point",
            FixHint::Degate { .. } => "degate",
            FixHint::AddReset => "add-reset",
            FixHint::ScanConvert { .. } => "scan-convert",
            FixHint::FoldConstant { .. } => "fold-constant",
            FixHint::RemoveRedundant { .. } => "remove-redundant",
        }
    }

    /// The gate/net the fix targets (`None` for netlist-wide fixes like
    /// [`FixHint::AddReset`]).
    #[must_use]
    pub fn target(&self) -> Option<GateId> {
        match *self {
            FixHint::ObservePoint { net }
            | FixHint::ControlPoint { net }
            | FixHint::Degate { net }
            | FixHint::FoldConstant { net, .. } => Some(net),
            FixHint::ScanConvert { storage } => Some(storage),
            FixHint::RemoveRedundant { gate, .. } => Some(gate),
            FixHint::AddReset => None,
        }
    }

    /// Renders the hint as a JSON object (no trailing whitespace).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!("{{ \"kind\": \"{}\"", self.kind());
        if let Some(t) = self.target() {
            out.push_str(&format!(
                ", \"target\": \"{t}\", \"target_index\": {}",
                t.index()
            ));
        }
        match self {
            FixHint::FoldConstant { value, .. } | FixHint::RemoveRedundant { value, .. } => {
                out.push_str(&format!(", \"value\": {}", u8::from(*value)));
            }
            _ => {}
        }
        out.push_str(" }");
        out
    }
}

impl fmt::Display for FixHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FixHint::ObservePoint { net } => {
                write!(f, "insert an observation test point at {net}")
            }
            FixHint::ControlPoint { net } => write!(f, "insert a control test point at {net}"),
            FixHint::Degate { net } => write!(f, "insert degating hardware on {net}"),
            FixHint::AddReset => write!(f, "add a CLEAR line to all storage elements"),
            FixHint::ScanConvert { storage } => write!(f, "place {storage} on a scan chain"),
            FixHint::FoldConstant { net, value } => {
                write!(
                    f,
                    "fold {net} to constant {} and delete its private cone",
                    u8::from(value)
                )
            }
            FixHint::RemoveRedundant { gate, value } => {
                write!(
                    f,
                    "remove redundant gate {gate} (fold to {})",
                    u8::from(value)
                )
            }
        }
    }
}

/// The stable `DFT-NNN` code of a rule id.
///
/// Codes never change once assigned (tooling keys on them across
/// versions, and severity-override configs may name them instead of the
/// kebab-case id). Built-in netlist rules take `DFT-0NN`; the scan
/// groundrules ported from `dft-scan` take `DFT-1NN`. Unknown rules map
/// to `DFT-000`.
#[must_use]
pub fn rule_code(rule: &str) -> &'static str {
    match rule {
        "comb-feedback" => "DFT-001",
        "unused-input" => "DFT-002",
        "dead-logic" => "DFT-003",
        "constant-output" => "DFT-004",
        "excessive-fanout" => "DFT-005",
        "deep-logic" => "DFT-006",
        "latch-race" => "DFT-007",
        "uninitializable-storage" => "DFT-008",
        "hard-to-control" => "DFT-009",
        "hard-to-observe" => "DFT-010",
        "reconvergent-fanout" => "DFT-011",
        "redundant-logic" => "DFT-012",
        "constant-implied-net" => "DFT-013",
        "deep-unobservable-cone" => "DFT-014",
        "implication-dead-region" => "DFT-015",
        "x-source-into-compare" => "DFT-016",
        "observability-dominator-bottleneck" => "DFT-017",
        "reconvergent-constant-mask" => "DFT-018",
        "scan-comb-feedback" => "DFT-101",
        "scan-coverage" => "DFT-102",
        "scan-depth" => "DFT-103",
        "scan-latch-race" => "DFT-104",
        _ => "DFT-000",
    }
}

/// Resolves a rule id *or* a `DFT-NNN` code to the canonical rule id
/// (`None` for unknown names) — the lookup severity-override configs
/// use, so both spellings work in `--rule-config` files.
#[must_use]
pub fn resolve_rule_name(name: &str) -> Option<&'static str> {
    const IDS: [&str; 22] = [
        "comb-feedback",
        "unused-input",
        "dead-logic",
        "constant-output",
        "excessive-fanout",
        "deep-logic",
        "latch-race",
        "uninitializable-storage",
        "hard-to-control",
        "hard-to-observe",
        "reconvergent-fanout",
        "redundant-logic",
        "constant-implied-net",
        "deep-unobservable-cone",
        "implication-dead-region",
        "x-source-into-compare",
        "observability-dominator-bottleneck",
        "reconvergent-constant-mask",
        "scan-comb-feedback",
        "scan-coverage",
        "scan-depth",
        "scan-latch-race",
    ];
    IDS.iter()
        .find(|&&id| id == name || rule_code(id) == name)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_unique_and_well_formed() {
        let ids = [
            "comb-feedback",
            "unused-input",
            "dead-logic",
            "constant-output",
            "excessive-fanout",
            "deep-logic",
            "latch-race",
            "uninitializable-storage",
            "hard-to-control",
            "hard-to-observe",
            "reconvergent-fanout",
            "redundant-logic",
            "constant-implied-net",
            "deep-unobservable-cone",
            "implication-dead-region",
            "x-source-into-compare",
            "observability-dominator-bottleneck",
            "reconvergent-constant-mask",
            "scan-comb-feedback",
            "scan-coverage",
            "scan-depth",
            "scan-latch-race",
        ];
        let mut codes: Vec<&str> = ids.iter().map(|id| rule_code(id)).collect();
        for code in &codes {
            assert!(code.starts_with("DFT-") && code.len() == 7, "{code}");
            assert_ne!(*code, "DFT-000", "every known rule has a real code");
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), ids.len(), "duplicate code");
        assert_eq!(rule_code("no-such-rule"), "DFT-000");
    }

    #[test]
    fn names_resolve_by_id_and_code() {
        assert_eq!(resolve_rule_name("deep-logic"), Some("deep-logic"));
        assert_eq!(resolve_rule_name("DFT-006"), Some("deep-logic"));
        assert_eq!(resolve_rule_name("DFT-104"), Some("scan-latch-race"));
        assert_eq!(resolve_rule_name("bogus"), None);
    }

    #[test]
    fn hint_json_and_display() {
        let h = FixHint::FoldConstant {
            net: GateId::from_index(5),
            value: false,
        };
        assert_eq!(h.kind(), "fold-constant");
        assert_eq!(h.target(), Some(GateId::from_index(5)));
        assert_eq!(
            h.to_json(),
            "{ \"kind\": \"fold-constant\", \"target\": \"g5\", \"target_index\": 5, \"value\": 0 }"
        );
        assert!(h.to_string().contains("g5"));
        assert_eq!(FixHint::AddReset.to_json(), "{ \"kind\": \"add-reset\" }");
        assert_eq!(FixHint::AddReset.target(), None);
    }
}
