//! `dft-lint` — a netlist-wide DFT design-rule checker.
//!
//! Williams & Parker's survey argues that testability is a *structural*
//! property: most of the cost of testing is designed in long before a
//! test program exists, and most of it is visible by inspecting the
//! netlist. This crate turns that observation into a linter.
//!
//! # Architecture
//!
//! * [`Rule`] — one stateless design-rule check, identified by a stable
//!   kebab-case id with a fixed [`Severity`] and [`Category`].
//! * [`Registry`] — an ordered rule collection; [`Registry::run`] lints
//!   a netlist and returns a [`LintReport`].
//! * [`LintContext`] — analyses shared by all rules (levelization,
//!   fanout map, SCOAP measures, constant propagation), computed once
//!   per run.
//! * [`Diagnostic`] — one finding, anchored to a
//!   [`GateId`](dft_netlist::GateId) with optional related gates, a
//!   free-text hint, a stable `DFT-NNN` [code](rule_code), and
//!   optionally a machine-applicable [`FixHint`] a repair tool can
//!   expand into a concrete netlist edit. Reports render as text
//!   ([`LintReport::to_text`]) or JSON ([`LintReport::to_json`]).
//! * [`SeverityOverrides`] — per-rule severity configuration parsed
//!   from a TOML-subset file (`tessera-lint --rule-config`), applied to
//!   finished reports.
//!
//! The built-in rules live in [`rules`]; thresholds in [`LintConfig`].
//!
//! # Example
//!
//! ```
//! use dft_lint::{lint, Severity};
//! use dft_netlist::circuits::c17;
//!
//! let report = lint(&c17());
//! assert!(report.is_clean()); // nothing at Warning or above
//! for diag in report.diagnostics() {
//!     assert_eq!(diag.severity, Severity::Info); // reconvergence notes
//! }
//! ```

#![forbid(unsafe_code)]

mod config;
mod context;
mod diag;
mod fix;
mod registry;
pub mod rules;

pub use config::{ConfigError, SeverityOverrides};
pub use context::{LintConfig, LintContext};
pub use diag::{Category, Diagnostic, LintReport, Severity};
pub use fix::{resolve_rule_name, rule_code, FixHint};
pub use registry::{Registry, Rule};

use dft_netlist::Netlist;

/// Lints `netlist` with the full built-in rule set and default
/// thresholds. Shorthand for
/// `Registry::with_default_rules().run(netlist)`.
#[must_use]
pub fn lint(netlist: &Netlist) -> LintReport {
    Registry::with_default_rules().run(netlist)
}

/// Lints `netlist` with the full built-in rule set and explicit
/// thresholds.
#[must_use]
pub fn lint_with(netlist: &Netlist, config: LintConfig) -> LintReport {
    Registry::with_default_rules().run_with(netlist, config)
}
