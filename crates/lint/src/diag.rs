//! Structured diagnostics and the lint report with its renderers.

use std::fmt;

use dft_netlist::GateId;

use crate::fix::{rule_code, FixHint};

/// How serious a diagnostic is.
///
/// The ordering is meaningful: `Info < Warning < Error`, so severity can
/// be compared and a report's worst diagnostic drives tool exit codes
/// (`tessera-lint` exits nonzero only at [`Severity::Error`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A structural observation worth knowing, not a defect (for
    /// example reconvergent fanout).
    Info,
    /// A testability or structure problem that will cost coverage or
    /// test effort but does not invalidate the model.
    Warning,
    /// A violation that breaks the toolkit's assumptions (for example a
    /// combinational feedback loop).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// What aspect of the design a rule examines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Netlist structure: cycles, dangling nets, fanout discipline.
    Structure,
    /// Settle-time concerns: logic depth, latch-to-latch races.
    Timing,
    /// Controllability/observability and fault-coverage concerns.
    Testability,
    /// Scan-discipline rules (the LSSD/Scan-Path groundrules).
    Scan,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::Structure => "structure",
            Category::Timing => "timing",
            Category::Testability => "testability",
            Category::Scan => "scan",
        })
    }
}

/// One finding, anchored to a gate (= net) in the netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable identifier of the rule that produced this (kebab-case).
    pub rule: &'static str,
    /// Stable `DFT-NNN` code of the rule (see [`crate::rule_code`]);
    /// unlike `rule`, codes are guaranteed never to be renamed.
    pub code: &'static str,
    /// Severity of this particular finding.
    pub severity: Severity,
    /// The rule's category.
    pub category: Category,
    /// The primary anchor: the gate/net the finding is about.
    pub gate: GateId,
    /// Further gates involved (rest of a feedback loop, a reconvergence
    /// meet point, the driving latch of a race path, …).
    pub related: Vec<GateId>,
    /// Human-readable description of the finding.
    pub message: String,
    /// Optional fix-it suggestion, free text.
    pub hint: Option<String>,
    /// Optional machine-applicable fix, the structured counterpart of
    /// `hint` — what `tessera-fix` expands into candidate edits.
    pub fix: Option<FixHint>,
}

impl Diagnostic {
    /// Creates a diagnostic with no related gates and no hint. The
    /// stable code is looked up from the rule id.
    #[must_use]
    pub fn new(
        rule: &'static str,
        severity: Severity,
        category: Category,
        gate: GateId,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            code: rule_code(rule),
            severity,
            category,
            gate,
            related: Vec::new(),
            message: message.into(),
            hint: None,
            fix: None,
        }
    }

    /// Attaches a fix-it hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// Attaches a machine-applicable fix. If no free-text hint is set
    /// yet, one is derived from the fix so text renderings stay
    /// informative.
    #[must_use]
    pub fn with_fix(mut self, fix: FixHint) -> Self {
        if self.hint.is_none() {
            self.hint = Some(fix.to_string());
        }
        self.fix = Some(fix);
        self
    }

    /// Attaches related gates.
    #[must_use]
    pub fn with_related(mut self, related: Vec<GateId>) -> Self {
        self.related = related;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {}] {}: {}",
            self.severity, self.code, self.rule, self.gate, self.message
        )
    }
}

/// Everything a lint run found on one design.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    design: String,
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report for the named design.
    #[must_use]
    pub fn new(design: impl Into<String>) -> Self {
        LintReport {
            design: design.into(),
            diagnostics: Vec::new(),
        }
    }

    /// The design name the report is about.
    #[must_use]
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// All diagnostics, in report order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Mutable access for post-run rewriting (severity overrides).
    pub(crate) fn diagnostics_mut(&mut self) -> &mut Vec<Diagnostic> {
        &mut self.diagnostics
    }

    /// Sorts diagnostics most-severe first (ties: rule id, then gate).
    ///
    /// [`crate::Registry::run`] calls this; reports built by hand (for
    /// example the scan-rule port) may prefer their construction order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.rule.cmp(b.rule))
                .then_with(|| a.gate.cmp(&b.gate))
        });
    }

    /// Number of diagnostics at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The report's most severe finding, if any.
    #[must_use]
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether the report has no findings at warning level or above.
    ///
    /// Info-level observations (reconvergent fanout, …) do not make a
    /// design dirty.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.worst().is_none_or(|w| w < Severity::Warning)
    }

    /// Whether the report contains any error-severity finding.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.worst() == Some(Severity::Error)
    }

    /// Diagnostics produced by one rule.
    pub fn by_rule<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Renders the report as human-readable text.
    #[must_use]
    pub fn to_text(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "{}: clean (no diagnostics)", self.design);
            return out;
        }
        let _ = writeln!(
            out,
            "{}: {} diagnostic(s) ({} error(s), {} warning(s), {} note(s))",
            self.design,
            self.diagnostics.len(),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
            if !d.related.is_empty() {
                let ids: Vec<String> = d.related.iter().map(ToString::to_string).collect();
                let _ = writeln!(out, "      related: {}", ids.join(", "));
            }
            if let Some(hint) = &d.hint {
                let _ = writeln!(out, "      hint: {hint}");
            }
        }
        out
    }

    /// Renders the report as a JSON object (machine-readable form of
    /// [`LintReport::to_text`]; string escaping via the shared
    /// [`dft_json`] primitives, RFC 8259).
    #[must_use]
    pub fn to_json(&self) -> String {
        use dft_json::escaped as json_string;
        use fmt::Write;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"design\": {},", json_string(&self.design));
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        let _ = writeln!(
            out,
            "  \"summary\": {{ \"error\": {}, \"warning\": {}, \"info\": {} }},",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { ");
            let _ = write!(
                out,
                "\"rule\": {}, \"code\": {}, \"severity\": \"{}\", \"category\": \"{}\", \
                 \"gate\": \"{}\", \"gate_index\": {}, ",
                json_string(d.rule),
                json_string(d.code),
                d.severity,
                d.category,
                d.gate,
                d.gate.index(),
            );
            out.push_str("\"related\": [");
            for (j, r) in d.related.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{r}\"");
            }
            let _ = write!(out, "], \"message\": {}, ", json_string(&d.message));
            match &d.hint {
                Some(h) => {
                    let _ = write!(out, "\"hint\": {}, ", json_string(h));
                }
                None => out.push_str("\"hint\": null, "),
            }
            match &d.fix {
                Some(fix) => {
                    let _ = write!(out, "\"fix\": {}", fix.to_json());
                }
                None => out.push_str("\"fix\": null"),
            }
            out.push_str(" }");
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport::new("demo");
        r.push(
            Diagnostic::new(
                "deep-logic",
                Severity::Warning,
                Category::Timing,
                GateId::from_index(7),
                "logic level 51 exceeds bound 50",
            )
            .with_hint("pipeline the cone"),
        );
        r.push(Diagnostic::new(
            "comb-feedback",
            Severity::Error,
            Category::Structure,
            GateId::from_index(3),
            "combinational feedback loop",
        ));
        r.push(
            Diagnostic::new(
                "reconvergent-fanout",
                Severity::Info,
                Category::Testability,
                GateId::from_index(1),
                "fanout reconverges at g4",
            )
            .with_related(vec![GateId::from_index(4)]),
        );
        r
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn counts_and_worst() {
        let r = sample();
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert_eq!(r.worst(), Some(Severity::Error));
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert!(LintReport::new("x").is_clean());
        assert_eq!(LintReport::new("x").worst(), None);
    }

    #[test]
    fn info_only_reports_are_clean() {
        let mut r = LintReport::new("x");
        r.push(Diagnostic::new(
            "reconvergent-fanout",
            Severity::Info,
            Category::Testability,
            GateId::from_index(0),
            "note",
        ));
        assert!(r.is_clean());
        assert!(!r.has_errors());
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = sample();
        r.sort();
        let sevs: Vec<Severity> = r.diagnostics().iter().map(|d| d.severity).collect();
        assert_eq!(
            sevs,
            vec![Severity::Error, Severity::Warning, Severity::Info]
        );
    }

    #[test]
    fn text_render_shows_everything() {
        let t = sample().to_text();
        assert!(t.contains("demo: 3 diagnostic(s) (1 error(s), 1 warning(s), 1 note(s))"));
        assert!(t.contains("warning[DFT-006 deep-logic] g7: logic level 51 exceeds bound 50"));
        assert!(t.contains("hint: pipeline the cone"));
        assert!(t.contains("related: g4"));
        assert!(LintReport::new("ok").to_text().contains("clean"));
    }

    #[test]
    fn json_render_is_well_formed() {
        let j = sample().to_json();
        assert!(j.contains("\"design\": \"demo\""));
        assert!(j.contains("\"summary\": { \"error\": 1, \"warning\": 1, \"info\": 1 }"));
        assert!(j.contains("\"rule\": \"comb-feedback\""));
        assert!(j.contains("\"code\": \"DFT-001\""));
        assert!(j.contains("\"gate\": \"g3\""));
        assert!(j.contains("\"gate_index\": 3"));
        assert!(j.contains("\"hint\": null"));
        assert!(j.contains("\"fix\": null"));
        assert!(j.contains("\"related\": [\"g4\"]"));
        // Balanced braces/brackets (no quoting issues in our own text).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn with_fix_derives_hint_and_renders_json() {
        let d = Diagnostic::new(
            "dead-logic",
            Severity::Warning,
            Category::Testability,
            GateId::from_index(2),
            "never observed",
        )
        .with_fix(FixHint::ObservePoint {
            net: GateId::from_index(2),
        });
        assert_eq!(d.code, "DFT-003");
        assert_eq!(
            d.hint.as_deref(),
            Some("insert an observation test point at g2")
        );
        let mut r = LintReport::new("demo");
        r.push(d);
        let j = r.to_json();
        assert!(j.contains(
            "\"fix\": { \"kind\": \"observe-point\", \"target\": \"g2\", \"target_index\": 2 }"
        ));
    }

    #[test]
    fn explicit_hint_survives_with_fix() {
        let d = Diagnostic::new(
            "dead-logic",
            Severity::Warning,
            Category::Testability,
            GateId::from_index(2),
            "never observed",
        )
        .with_hint("custom advice")
        .with_fix(FixHint::ObservePoint {
            net: GateId::from_index(2),
        });
        assert_eq!(d.hint.as_deref(), Some("custom advice"));
        assert!(d.fix.is_some());
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut r = LintReport::new("a\"b\\c");
        r.push(Diagnostic::new(
            "dead-logic",
            Severity::Warning,
            Category::Testability,
            GateId::from_index(0),
            "x\ny and \u{1}",
        ));
        let j = r.to_json();
        assert!(j.contains("\"design\": \"a\\\"b\\\\c\""));
        assert!(j.contains("\"message\": \"x\\ny and \\u0001\""));
    }

    /// Byte-identical to the output of the pre-`dft-json` emitter with
    /// its private escaping helper (captured on c17 before the
    /// refactor). The pretty layout is this crate's own; only the
    /// string escaping moved to the shared crate, and neither may
    /// drift: downstream tooling diffs these reports.
    #[test]
    fn json_bytes_match_the_legacy_emitter() {
        const HINT: &str = "correlated paths can mask faults; \
                            single-path sensitization arguments do not hold at the meet gate";
        let mut r = LintReport::new("c17");
        r.push(
            Diagnostic::new(
                "reconvergent-fanout",
                Severity::Info,
                Category::Testability,
                GateId::from_index(2),
                "fanout branches reconverge at g9",
            )
            .with_related(vec![GateId::from_index(9)])
            .with_hint(HINT),
        );
        r.push(
            Diagnostic::new(
                "reconvergent-fanout",
                Severity::Info,
                Category::Testability,
                GateId::from_index(6),
                "fanout branches reconverge at g10",
            )
            .with_related(vec![GateId::from_index(10)])
            .with_hint(HINT),
        );
        let golden = concat!(
            "{\n",
            "  \"design\": \"c17\",\n",
            "  \"clean\": true,\n",
            "  \"summary\": { \"error\": 0, \"warning\": 0, \"info\": 2 },\n",
            "  \"diagnostics\": [\n",
            "    { \"rule\": \"reconvergent-fanout\", \"code\": \"DFT-011\", ",
            "\"severity\": \"info\", \"category\": \"testability\", ",
            "\"gate\": \"g2\", \"gate_index\": 2, \"related\": [\"g9\"], ",
            "\"message\": \"fanout branches reconverge at g9\", ",
            "\"hint\": \"correlated paths can mask faults; single-path ",
            "sensitization arguments do not hold at the meet gate\", ",
            "\"fix\": null },\n",
            "    { \"rule\": \"reconvergent-fanout\", \"code\": \"DFT-011\", ",
            "\"severity\": \"info\", \"category\": \"testability\", ",
            "\"gate\": \"g6\", \"gate_index\": 6, \"related\": [\"g10\"], ",
            "\"message\": \"fanout branches reconverge at g10\", ",
            "\"hint\": \"correlated paths can mask faults; single-path ",
            "sensitization arguments do not hold at the meet gate\", ",
            "\"fix\": null }\n",
            "  ]\n",
            "}\n",
        );
        assert_eq!(r.to_json(), golden);
    }
}
