//! The repair plan: a machine-readable record of an autopilot run.
//!
//! The plan is what `tessera-fix` writes to disk — every candidate that
//! reached verification, its static rank evidence, the measured
//! before/after coverage, the economics verdict, and the work-avoidance
//! counters that show static pre-ranking actually pruned the candidate
//! space. All numbers in the plan are deterministic for a fixed seed and
//! netlist (wall-clock timing lives in the separate `dft-obs`
//! [`RunReport`](dft_obs::RunReport), never here).

use std::fmt::Write as _;

use crate::candidate::CandidateEdit;
use crate::verify::CoverageStat;

/// One verified candidate, accepted or not.
#[derive(Clone, Debug)]
pub struct RepairRecord {
    /// Autopilot round (1-based) the candidate was verified in.
    pub round: usize,
    /// Rule id of the diagnostic that proposed the edit.
    pub rule: &'static str,
    /// Stable `DFT-NNN` code of that rule.
    pub code: &'static str,
    /// The concrete edit.
    pub edit: CandidateEdit,
    /// Logic gates the edit adds (negative = removal).
    pub extra_gates: i64,
    /// Pins the edit adds.
    pub extra_pins: i64,
    /// Static rank score (integer; higher ranked earlier).
    pub score: i128,
    /// Coverage before the edit (this round's baseline).
    pub before: CoverageStat,
    /// Coverage with the edit applied.
    pub after: CoverageStat,
    /// Escape-cost saving per unit.
    pub saving: f64,
    /// One-time hardware cost.
    pub hardware: f64,
    /// Whether the repair was accepted and applied.
    pub accepted: bool,
}

/// Work-avoidance counters across the whole run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCounters {
    /// Candidates expanded from fix hints.
    pub expanded: usize,
    /// Candidates statically ranked.
    pub ranked: usize,
    /// Candidates pruned by the static ranking (never simulated).
    pub pruned: usize,
    /// Candidates verified with fault simulation.
    pub verified: usize,
    /// Repairs accepted and applied.
    pub accepted: usize,
}

/// The full machine-readable outcome of one autopilot run.
#[derive(Clone, Debug)]
pub struct RepairPlan {
    /// Design name of the input netlist.
    pub design: String,
    /// Random-pattern budget used for every measurement.
    pub patterns: usize,
    /// RNG seed used for every measurement.
    pub seed: u64,
    /// Coverage of the unrepaired netlist.
    pub baseline: CoverageStat,
    /// Coverage of the final (repaired) netlist.
    pub final_coverage: CoverageStat,
    /// Every verified candidate, in verification order.
    pub records: Vec<RepairRecord>,
    /// Work-avoidance counters.
    pub counters: PlanCounters,
}

impl RepairPlan {
    /// Accepted repairs only, in application order.
    pub fn accepted(&self) -> impl Iterator<Item = &RepairRecord> {
        self.records.iter().filter(|r| r.accepted)
    }

    /// Whether the run improved measured coverage at all.
    #[must_use]
    pub fn improved(&self) -> bool {
        self.final_coverage.coverage > self.baseline.coverage
    }

    /// Renders the plan as a JSON object (hand-rolled, dependency-free,
    /// schema `tessera-fix/1`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"tessera-fix/1\",");
        let _ = writeln!(out, "  \"design\": \"{}\",", escape(&self.design));
        let _ = writeln!(out, "  \"patterns\": {},", self.patterns);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"baseline\": {},", coverage_json(self.baseline));
        let _ = writeln!(out, "  \"final\": {},", coverage_json(self.final_coverage));
        let _ = writeln!(out, "  \"improved\": {},", self.improved());
        let _ = writeln!(
            out,
            "  \"counters\": {{ \"expanded\": {}, \"ranked\": {}, \"pruned\": {}, \
             \"verified\": {}, \"accepted\": {} }},",
            self.counters.expanded,
            self.counters.ranked,
            self.counters.pruned,
            self.counters.verified,
            self.counters.accepted,
        );
        out.push_str("  \"repairs\": [");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { ");
            let _ = write!(
                out,
                "\"round\": {}, \"rule\": \"{}\", \"code\": \"{}\", \"edit\": \"{}\", ",
                r.round,
                escape(r.rule),
                escape(r.code),
                r.edit.kind(),
            );
            match r.edit.target() {
                Some(t) => {
                    let _ = write!(out, "\"target\": \"{t}\", ");
                }
                None => out.push_str("\"target\": null, "),
            }
            let _ = write!(
                out,
                "\"extra_gates\": {}, \"extra_pins\": {}, \"score\": {}, \
                 \"before\": {}, \"after\": {}, \"saving\": {}, \"hardware\": {}, \
                 \"accepted\": {} }}",
                r.extra_gates,
                r.extra_pins,
                r.score,
                coverage_json(r.before),
                coverage_json(r.after),
                fmt_f64(r.saving),
                fmt_f64(r.hardware),
                r.accepted,
            );
        }
        if !self.records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn coverage_json(s: CoverageStat) -> String {
    format!(
        "{{ \"faults\": {}, \"detected\": {}, \"coverage\": {} }}",
        s.fault_count,
        s.detected,
        fmt_f64(s.coverage)
    )
}

/// Fixed-precision float rendering so plans compare bytewise across
/// runs and platforms.
fn fmt_f64(v: f64) -> String {
    format!("{v:.6}")
}

/// Shared RFC 8259 escaping from `dft-json`. Byte-identical to the old
/// local helper for every legal design name; names carrying control
/// characters (previously emitted raw, producing invalid JSON) now
/// escape correctly.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    dft_json::escape_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::GateId;

    fn sample() -> RepairPlan {
        let low = CoverageStat {
            fault_count: 20,
            detected: 12,
            coverage: 0.6,
        };
        let high = CoverageStat {
            fault_count: 14,
            detected: 14,
            coverage: 1.0,
        };
        RepairPlan {
            design: "fixture".into(),
            patterns: 256,
            seed: 1,
            baseline: low,
            final_coverage: high,
            records: vec![RepairRecord {
                round: 1,
                rule: "implication-dead-region",
                code: "DFT-015",
                edit: CandidateEdit::Fold {
                    net: GateId::from_index(6),
                    value: false,
                },
                extra_gates: -4,
                extra_pins: 0,
                score: 40_000_000,
                before: low,
                after: high,
                saving: 123.4,
                hardware: 0.0,
                accepted: true,
            }],
            counters: PlanCounters {
                expanded: 5,
                ranked: 5,
                pruned: 3,
                verified: 2,
                accepted: 1,
            },
        }
    }

    #[test]
    fn json_carries_the_acceptance_story() {
        let p = sample();
        assert!(p.improved());
        assert_eq!(p.accepted().count(), 1);
        let j = p.to_json();
        assert!(j.contains("\"schema\": \"tessera-fix/1\""));
        assert!(j.contains("\"edit\": \"fold\""));
        assert!(j.contains("\"target\": \"g6\""));
        assert!(j.contains("\"code\": \"DFT-015\""));
        assert!(j.contains("\"pruned\": 3"));
        assert!(j.contains("\"improved\": true"));
        assert!(j.contains("\"coverage\": 1.000000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_is_bytewise_stable() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    /// Byte-identical to the output of the pre-`dft-json` emitter
    /// (captured before the escaping helper moved to the shared crate).
    /// `tessera-fix` baselines are diffed bytewise in CI, so the plan
    /// layout and the fixed `%.6f` float rendering are the contract.
    #[test]
    fn json_bytes_match_the_legacy_emitter() {
        let golden = concat!(
            "{\n",
            "  \"schema\": \"tessera-fix/1\",\n",
            "  \"design\": \"fixture\",\n",
            "  \"patterns\": 256,\n",
            "  \"seed\": 1,\n",
            "  \"baseline\": { \"faults\": 20, \"detected\": 12, \"coverage\": 0.600000 },\n",
            "  \"final\": { \"faults\": 14, \"detected\": 14, \"coverage\": 1.000000 },\n",
            "  \"improved\": true,\n",
            "  \"counters\": { \"expanded\": 5, \"ranked\": 5, \"pruned\": 3, ",
            "\"verified\": 2, \"accepted\": 1 },\n",
            "  \"repairs\": [\n",
            "    { \"round\": 1, \"rule\": \"implication-dead-region\", ",
            "\"code\": \"DFT-015\", \"edit\": \"fold\", \"target\": \"g6\", ",
            "\"extra_gates\": -4, \"extra_pins\": 0, \"score\": 40000000, ",
            "\"before\": { \"faults\": 20, \"detected\": 12, \"coverage\": 0.600000 }, ",
            "\"after\": { \"faults\": 14, \"detected\": 14, \"coverage\": 1.000000 }, ",
            "\"saving\": 123.400000, \"hardware\": 0.000000, \"accepted\": true }\n",
            "  ]\n",
            "}\n",
        );
        assert_eq!(sample().to_json(), golden);
    }
}
