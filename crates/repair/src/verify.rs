//! Dynamic verification and the economics gate.
//!
//! Static ranking orders candidates; *measured coverage* decides. Each
//! surviving candidate is fault-graded with the PPSFP engine under a
//! deterministic random pattern budget, and the before/after coverage
//! feeds the paper's rule-of-ten escalation model: a repair is accepted
//! only if the expected-escape-cost saving pays for its hardware.

use dft_core::CostModel;
use dft_fault::{ppsfp_with_options, universe, PpsfpOptions};
use dft_netlist::{LevelizeError, Netlist};
use dft_sim::PatternSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Coverage measured on one netlist under the shared pattern budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoverageStat {
    /// Faults in the universe.
    pub fault_count: usize,
    /// Faults the budget detected.
    pub detected: usize,
    /// `detected / fault_count` (1.0 on an empty universe).
    pub coverage: f64,
}

/// Fault-grades `netlist` with `patterns` random vectors derived from
/// `seed`. The RNG is re-seeded per call and PPSFP results are
/// independent of thread count, so equal seeds give equal stats no
/// matter where in the autopilot the call happens.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn measure_coverage(
    netlist: &Netlist,
    patterns: usize,
    seed: u64,
    threads: usize,
) -> Result<CoverageStat, LevelizeError> {
    let faults = universe(netlist);
    let mut rng = StdRng::seed_from_u64(seed);
    let set = PatternSet::random(netlist.primary_inputs().len(), patterns, &mut rng);
    let result = ppsfp_with_options(
        netlist,
        &set,
        &faults,
        PpsfpOptions::new().with_threads(threads),
    )?;
    Ok(CoverageStat {
        fault_count: faults.len(),
        detected: result.detected_count(),
        coverage: result.coverage(),
    })
}

/// The accept/reject economics for one repair (§I-B, §I-C).
///
/// `#[non_exhaustive]`: construct via [`Default`] and the `with_*`
/// builders.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub struct RepairEconomics {
    /// The escalation model (defaults to the paper's $0.30 × 10 rule).
    pub cost_model: CostModel,
    /// Dollar cost per added logic gate.
    pub gate_cost: f64,
    /// Dollar cost per added package pin (pins are the scarce resource).
    pub pin_cost: f64,
    /// Detection probability at the board and system levels for faults
    /// that escape chip test (field coverage is always 1 — the customer
    /// finds everything).
    pub downstream_coverage: [f64; 2],
}

impl Default for RepairEconomics {
    fn default() -> Self {
        RepairEconomics {
            cost_model: CostModel::default(),
            gate_cost: 0.05,
            pin_cost: 1.0,
            downstream_coverage: [0.5, 0.5],
        }
    }
}

impl RepairEconomics {
    /// Defaults, spelled for builder chains.
    #[must_use]
    pub fn new() -> Self {
        RepairEconomics::default()
    }

    /// Sets the per-gate hardware cost.
    #[must_use]
    pub fn with_gate_cost(mut self, cost: f64) -> Self {
        self.gate_cost = cost;
        self
    }

    /// Sets the per-pin hardware cost.
    #[must_use]
    pub fn with_pin_cost(mut self, cost: f64) -> Self {
        self.pin_cost = cost;
        self
    }

    /// Expected escape cost of shipping one unit with the measured
    /// chip-level coverage.
    #[must_use]
    pub fn escape_cost(&self, stat: CoverageStat) -> f64 {
        let [board, system] = self.downstream_coverage;
        self.cost_model.expected_cost(
            stat.fault_count as f64,
            &[stat.coverage, board, system, 1.0],
        )
    }

    /// One-time hardware cost of a repair.
    #[must_use]
    pub fn hardware_cost(&self, extra_gates: i64, extra_pins: i64) -> f64 {
        // Removal is free, not a credit: deleted redundancy has already
        // been paid for in silicon.
        self.gate_cost * extra_gates.max(0) as f64 + self.pin_cost * extra_pins.max(0) as f64
    }
}

/// The verdict on one verified candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verdict {
    /// Coverage before the repair.
    pub before: CoverageStat,
    /// Coverage after the repair.
    pub after: CoverageStat,
    /// Escape-cost saving per unit (positive = repair helps).
    pub saving: f64,
    /// One-time hardware cost of the repair.
    pub hardware: f64,
    /// Whether the economics accept the repair: coverage strictly
    /// improves and the saving pays for the hardware.
    pub accepted: bool,
}

/// Judges a repair: measured coverage must strictly improve and the
/// escape-cost saving must exceed the hardware cost.
#[must_use]
pub fn judge(
    economics: &RepairEconomics,
    before: CoverageStat,
    after: CoverageStat,
    extra_gates: i64,
    extra_pins: i64,
) -> Verdict {
    let saving = economics.escape_cost(before) - economics.escape_cost(after);
    let hardware = economics.hardware_cost(extra_gates, extra_pins);
    Verdict {
        before,
        after,
        saving,
        hardware,
        accepted: after.coverage > before.coverage && saving > hardware,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::circuits::{c17, redundant_fixture};

    #[test]
    fn coverage_measurement_is_seed_deterministic() {
        let n = c17();
        let a = measure_coverage(&n, 64, 7, 1).unwrap();
        let b = measure_coverage(&n, 64, 7, 2).unwrap();
        assert_eq!(a, b, "same seed, any thread count");
        let c = measure_coverage(&n, 64, 8, 1).unwrap();
        assert_eq!(a.fault_count, c.fault_count);
    }

    #[test]
    fn fixture_baseline_is_capped_by_redundancy() {
        let n = redundant_fixture();
        let s = measure_coverage(&n, 256, 1, 1).unwrap();
        assert!(s.coverage < 1.0, "untestable faults cap coverage");
        assert!(s.detected > 0);
    }

    #[test]
    fn judge_accepts_paying_repairs_and_rejects_losses() {
        let eco = RepairEconomics::new();
        let before = CoverageStat {
            fault_count: 100,
            detected: 60,
            coverage: 0.6,
        };
        let better = CoverageStat {
            fault_count: 100,
            detected: 95,
            coverage: 0.95,
        };
        let v = judge(&eco, before, better, 3, 1);
        assert!(v.saving > 0.0);
        assert!(v.accepted, "large coverage gain pays for a pin");

        // No improvement: rejected regardless of cost.
        let v = judge(&eco, before, before, 0, 0);
        assert!(!v.accepted);

        // Improvement too small to pay for many pins.
        let tiny = CoverageStat {
            fault_count: 100,
            detected: 61,
            coverage: 0.61,
        };
        let expensive = RepairEconomics::new().with_pin_cost(1e6);
        let v = judge(&expensive, before, tiny, 0, 4);
        assert!(
            !v.accepted,
            "saving {} vs hardware {}",
            v.saving, v.hardware
        );
    }

    #[test]
    fn escape_cost_falls_with_coverage() {
        let eco = RepairEconomics::new();
        let low = CoverageStat {
            fault_count: 50,
            detected: 25,
            coverage: 0.5,
        };
        let high = CoverageStat {
            fault_count: 50,
            detected: 49,
            coverage: 0.98,
        };
        assert!(eco.escape_cost(high) < eco.escape_cost(low));
    }
}
