//! Static pre-ranking of candidate edits — no simulation involved.
//!
//! Fault simulation is the expensive step of the autopilot, so
//! candidates are ordered by *static* evidence first and only the top
//! few reach the PPSFP verifier. Two static signals mirror the paper's
//! §II argument that testability is measurable without test generation:
//!
//! * **SCOAP difficulty delta** — `total_difficulty(before) −
//!   total_difficulty(after)`: how much easier the whole netlist becomes
//!   to control and observe.
//! * **Statically-untestable-fault delta** — how many provably
//!   untestable faults the edit removes (folded redundancy leaves the
//!   fault universe; new access makes old faults provable-testable).
//!
//! Both are integers, the score is integer arithmetic, and ties break on
//! the candidate key — the ranking is bit-for-bit deterministic.

use dft_analyze::AnalysisCache;
use dft_fault::{prefilter_with, universe};
use dft_implic::ImplicationEngine;
use dft_netlist::{GateId, GateKind, Netlist};

use crate::candidate::{apply_edit, Candidate, Edited};

/// Weight of one removed-untestable-fault against one point of SCOAP
/// difficulty. Untestable faults are coverage poison (they cap the
/// achievable fraction), so one of them outweighs any plausible
/// difficulty swing on the circuits this toolkit targets.
const UNTESTABLE_WEIGHT: i128 = 10_000;

/// Static baseline measures of a netlist, computed once per round and
/// shared by every candidate scored against it.
#[derive(Clone, Copy, Debug)]
pub struct StaticBaseline {
    /// SCOAP total difficulty.
    pub difficulty: u64,
    /// Faults in the universe proven untestable by static implication.
    pub untestable: usize,
    /// Total faults in the universe.
    pub fault_count: usize,
}

impl StaticBaseline {
    /// Measures `netlist`. Returns `None` on combinational cycles (the
    /// autopilot refuses those upstream).
    ///
    /// Difficulty is summed over non-constant gates only, matching the
    /// fault universe: a folded-away `Const` gate carries no faults, so
    /// its (infinite, dangling) observability must not poison the score.
    #[must_use]
    pub fn measure(netlist: &Netlist) -> Option<Self> {
        let mut cache = AnalysisCache::new(netlist).ok()?;
        Some(Self::measure_cached(&mut cache))
    }

    /// Measures through a warmed [`AnalysisCache`] — the same numbers as
    /// [`StaticBaseline::measure`] (the framework SCOAP port is
    /// bit-exact), but the ranking loop can rebase one cached clone per
    /// candidate so only each edit's dirty cone is recomputed instead of
    /// the whole netlist.
    #[must_use]
    pub fn measure_cached(cache: &mut AnalysisCache) -> Self {
        let const_mask: Vec<bool> = cache
            .netlist()
            .iter()
            .map(|(_, g)| matches!(g.kind(), GateKind::Const0 | GateKind::Const1))
            .collect();
        let scoap = cache.scoap();
        let difficulty = (0..const_mask.len())
            .filter(|&i| !const_mask[i])
            .map(|i| u64::from(scoap.difficulty(GateId::from_index(i))))
            .sum();
        let faults = universe(cache.netlist());
        let engine = ImplicationEngine::new(cache.netlist());
        let untestable = prefilter_with(&engine, &faults).untestable_count();
        StaticBaseline {
            difficulty,
            untestable,
            fault_count: faults.len(),
        }
    }
}

/// A candidate with its applied netlist and static score.
#[derive(Clone, Debug)]
pub struct RankedCandidate {
    /// The candidate and its provenance.
    pub candidate: Candidate,
    /// The edit, already applied (reused by the verifier — edits are
    /// applied exactly once per round).
    pub edited: Edited,
    /// SCOAP difficulty drop (positive = easier to test).
    pub difficulty_delta: i128,
    /// Statically-untestable faults removed (positive = fewer).
    pub untestable_delta: i128,
    /// The integer rank score; higher is better.
    pub score: i128,
}

/// Applies and scores every candidate against `baseline`, sorts best
/// first (score, then key for determinism), and splits at `top_k`:
/// returns `(kept, pruned_count)`. Candidates that fail to apply
/// (cyclic result — cannot happen with the current transforms, but the
/// signature allows it) are dropped and counted as pruned.
#[must_use]
pub fn rank_candidates(
    netlist: &Netlist,
    baseline: StaticBaseline,
    candidates: Vec<Candidate>,
    top_k: usize,
) -> (Vec<RankedCandidate>, usize) {
    let mut ranked: Vec<RankedCandidate> = Vec::with_capacity(candidates.len());
    let mut dropped = 0usize;
    // One warmed cache for the round; each candidate rebases a clone so
    // scoring only re-solves the edit's dirty cone.
    let base_cache = AnalysisCache::new(netlist).ok().map(|mut c| {
        c.scoap();
        c.constants();
        c
    });
    for candidate in candidates {
        let Ok(edited) = apply_edit(netlist, candidate.edit) else {
            dropped += 1;
            continue;
        };
        let after = match &base_cache {
            Some(base) => {
                let mut cache = base.clone();
                match cache.rebase(&edited.netlist) {
                    Ok(()) => Some(StaticBaseline::measure_cached(&mut cache)),
                    Err(_) => None,
                }
            }
            None => StaticBaseline::measure(&edited.netlist),
        };
        let Some(after) = after else {
            dropped += 1;
            continue;
        };
        let difficulty_delta = i128::from(baseline.difficulty) - i128::from(after.difficulty);
        let untestable_delta = baseline.untestable as i128 - after.untestable as i128;
        // Benefit per unit of hardware: pins are the scarce resource
        // (§III-B's whole premise), so they weigh double.
        let hardware = edited.extra_gates.max(0) as i128 + 2 * edited.extra_pins.max(0) as i128;
        let score =
            (difficulty_delta + UNTESTABLE_WEIGHT * untestable_delta) * 1000 / (hardware + 1);
        ranked.push(RankedCandidate {
            candidate,
            edited,
            difficulty_delta,
            untestable_delta,
            score,
        });
    }
    ranked.sort_by(|a, b| {
        b.score
            .cmp(&a.score)
            .then_with(|| a.candidate.edit.key().cmp(&b.candidate.edit.key()))
    });
    let pruned = dropped + ranked.len().saturating_sub(top_k);
    ranked.truncate(top_k);
    (ranked, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::expand_hints;
    use dft_lint::lint;
    use dft_netlist::circuits::redundant_fixture;

    #[test]
    fn baseline_measures_the_fixture() {
        let n = redundant_fixture();
        let b = StaticBaseline::measure(&n).unwrap();
        assert!(b.untestable > 0, "the fixture has provable redundancy");
        assert!(b.fault_count > b.untestable);
    }

    #[test]
    fn fold_outranks_cosmetic_candidates_on_the_fixture() {
        let n = redundant_fixture();
        let report = lint(&n);
        let cands = expand_hints(report.diagnostics(), &[]);
        let baseline = StaticBaseline::measure(&n).unwrap();
        let total = cands.len();
        let (ranked, pruned) = rank_candidates(&n, baseline, cands, 2);
        assert_eq!(ranked.len() + pruned, total, "pruning is accounted for");
        // Removing provable redundancy dominates the static score.
        assert_eq!(ranked[0].candidate.edit.kind(), "fold");
        assert!(ranked[0].untestable_delta > 0);
        assert!(ranked[0].score > 0);
    }

    #[test]
    fn rebased_scoring_matches_from_scratch_measurement() {
        // The rewire onto AnalysisCache must not move a single number:
        // score every candidate both ways — rebasing a warmed cache
        // clone, and measuring the edited netlist from scratch — and
        // demand byte-identical ranking output.
        let n = redundant_fixture();
        let report = lint(&n);
        let baseline = StaticBaseline::measure(&n).unwrap();
        let cands = expand_hints(report.diagnostics(), &[]);
        let (ranked, _) = rank_candidates(&n, baseline, cands.clone(), usize::MAX);
        // Reference path: the pre-rewire from-scratch scorer.
        let mut reference: Vec<(String, i128, i128, i128)> = Vec::new();
        for candidate in cands {
            let Ok(edited) = apply_edit(&n, candidate.edit) else {
                continue;
            };
            let report = dft_testability::analyze(&edited.netlist).unwrap();
            let difficulty: u64 = edited
                .netlist
                .ids()
                .filter(|&id| {
                    !matches!(
                        edited.netlist.gate(id).kind(),
                        GateKind::Const0 | GateKind::Const1
                    )
                })
                .map(|id| u64::from(report.measure(id).difficulty()))
                .sum();
            let faults = universe(&edited.netlist);
            let engine = ImplicationEngine::new(&edited.netlist);
            let untestable = prefilter_with(&engine, &faults).untestable_count();
            let dd = i128::from(baseline.difficulty) - i128::from(difficulty);
            let ud = baseline.untestable as i128 - untestable as i128;
            let hardware = edited.extra_gates.max(0) as i128 + 2 * edited.extra_pins.max(0) as i128;
            let score = (dd + UNTESTABLE_WEIGHT * ud) * 1000 / (hardware + 1);
            reference.push((candidate.edit.key(), dd, ud, score));
        }
        reference.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
        let got: Vec<(String, i128, i128, i128)> = ranked
            .iter()
            .map(|r| {
                (
                    r.candidate.edit.key(),
                    r.difficulty_delta,
                    r.untestable_delta,
                    r.score,
                )
            })
            .collect();
        assert_eq!(got, reference, "cache-rebased ranking diverged");
    }

    #[test]
    fn ranking_is_deterministic() {
        let n = redundant_fixture();
        let report = lint(&n);
        let baseline = StaticBaseline::measure(&n).unwrap();
        let run = || {
            let cands = expand_hints(report.diagnostics(), &[]);
            let (ranked, _) = rank_candidates(&n, baseline, cands, 8);
            ranked
                .iter()
                .map(|r| (r.candidate.edit.key(), r.score))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
