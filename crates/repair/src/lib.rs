//! # dft-repair
//!
//! The lint-driven testability repair autopilot (`tessera-fix`).
//!
//! Williams & Parker's survey is a catalogue of *repairs* — test points
//! (§III-B), degating (Fig. 2), CLEAR lines, scan (§IV), redundancy
//! removal (§I-B) — each justified by measured cost. This crate closes
//! the loop mechanically:
//!
//! 1. **Lint** the netlist (`dft-lint`); every diagnostic that knows a
//!    concrete repair carries a machine-applicable
//!    [`FixHint`](dft_lint::FixHint).
//! 2. **Expand** hints into [`CandidateEdit`]s using the existing
//!    `dft-adhoc`/`dft-scan` transforms ([`candidate`]).
//! 3. **Rank statically** by SCOAP difficulty delta and
//!    implication-proven-untestable-fault delta — no simulation — and
//!    prune to the top few ([`rank`]).
//! 4. **Verify** survivors with the PPSFP fault simulator under a
//!    deterministic random budget, and **gate on economics**: the
//!    rule-of-ten escape-cost saving must pay for the hardware
//!    ([`verify`]).
//! 5. **Apply** the best accepted repair and repeat until nothing pays.
//!
//! The outcome is a repaired netlist plus a machine-readable
//! [`RepairPlan`] (and, via [`repair_observed`], a `dft-obs` span tree
//! with the work-avoidance counters).
//!
//! Everything is deterministic for a fixed seed: integer rank scores,
//! per-call seeded RNGs, and a PPSFP engine whose results do not depend
//! on thread count.
//!
//! ```
//! use dft_netlist::circuits::redundant_fixture;
//! use dft_repair::{repair, RepairOptions};
//!
//! let fixture = redundant_fixture();
//! let outcome = repair(&fixture, &RepairOptions::new()).unwrap();
//! assert!(outcome.plan.improved());
//! ```

#![forbid(unsafe_code)]

pub mod candidate;
pub mod plan;
pub mod rank;
pub mod verify;

pub use candidate::{apply_edit, expand_hints, Candidate, CandidateEdit, Edited};
pub use plan::{PlanCounters, RepairPlan, RepairRecord};
pub use rank::{rank_candidates, RankedCandidate, StaticBaseline};
pub use verify::{judge, measure_coverage, CoverageStat, RepairEconomics, Verdict};

use dft_lint::{lint_with, LintConfig};
use dft_netlist::{LevelizeError, Netlist};
use dft_obs::{Collector, Obs};

/// Tuning knobs for one autopilot run.
///
/// `#[non_exhaustive]`: construct via [`Default`]/[`RepairOptions::new`]
/// and the `with_*` builders.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct RepairOptions {
    /// Random patterns per coverage measurement (default 256).
    pub patterns: usize,
    /// RNG seed for pattern generation (default 0).
    pub seed: u64,
    /// PPSFP worker threads; `0` = auto. Results are identical for any
    /// value (default 0).
    pub threads: usize,
    /// Candidates that survive static ranking into verification each
    /// round (default 2 — verification is the expensive step).
    pub top_k: usize,
    /// Maximum accepted repairs (= autopilot rounds; default 4).
    pub max_rounds: usize,
    /// The accept/reject economics.
    pub economics: RepairEconomics,
    /// Lint thresholds used to find repair opportunities.
    pub lint_config: LintConfig,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            patterns: 256,
            seed: 0,
            threads: 0,
            top_k: 2,
            max_rounds: 4,
            economics: RepairEconomics::default(),
            lint_config: LintConfig::default(),
        }
    }
}

impl RepairOptions {
    /// Defaults, spelled for builder chains.
    #[must_use]
    pub fn new() -> Self {
        RepairOptions::default()
    }

    /// Sets the random-pattern budget.
    #[must_use]
    pub fn with_patterns(mut self, patterns: usize) -> Self {
        self.patterns = patterns;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the PPSFP thread count (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets how many ranked candidates reach verification per round.
    #[must_use]
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k.max(1);
        self
    }

    /// Sets the maximum number of accepted repairs.
    #[must_use]
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Sets the economics gate.
    #[must_use]
    pub fn with_economics(mut self, economics: RepairEconomics) -> Self {
        self.economics = economics;
        self
    }

    /// Sets the lint thresholds.
    #[must_use]
    pub fn with_lint_config(mut self, config: LintConfig) -> Self {
        self.lint_config = config;
        self
    }
}

/// What an autopilot run produced.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The repaired netlist (identical to the input if nothing paid).
    pub netlist: Netlist,
    /// The machine-readable run record.
    pub plan: RepairPlan,
}

/// Runs the repair autopilot. See the crate docs for the pipeline.
///
/// # Errors
///
/// Returns [`LevelizeError`] if the input netlist has combinational
/// cycles — fix those first (`comb-feedback` is an error-severity lint,
/// and no transform or simulator in the workspace accepts cyclic
/// netlists).
pub fn repair(netlist: &Netlist, options: &RepairOptions) -> Result<RepairOutcome, LevelizeError> {
    repair_observed(netlist, options, None)
}

/// [`repair`] with telemetry: spans `repair.autopilot` >
/// `repair.round` > (`repair.lint`, `repair.expand`, `repair.rank`,
/// `repair.verify`), counters `repair.candidates.{expanded,ranked,
/// pruned,verified}` and `repair.accepted`, gauges
/// `repair.coverage.{baseline,final}`.
///
/// # Errors
///
/// Returns [`LevelizeError`] on combinational cycles.
pub fn repair_observed(
    netlist: &Netlist,
    options: &RepairOptions,
    obs: Option<&mut dyn Collector>,
) -> Result<RepairOutcome, LevelizeError> {
    let mut obs = Obs::new(obs);
    obs.enter("repair.autopilot");

    let baseline = measure_coverage(netlist, options.patterns, options.seed, options.threads)?;
    obs.gauge("repair.coverage.baseline", baseline.coverage);

    let mut current = netlist.clone();
    let mut current_coverage = baseline;
    let mut applied_keys: Vec<String> = Vec::new();
    let mut records: Vec<RepairRecord> = Vec::new();
    let mut counters = PlanCounters::default();

    for round in 1..=options.max_rounds {
        obs.enter("repair.round");

        obs.enter("repair.lint");
        let report = lint_with(&current, options.lint_config.clone());
        obs.count("repair.diagnostics", report.diagnostics().len() as u64);
        obs.exit();

        obs.enter("repair.expand");
        let candidates = expand_hints(report.diagnostics(), &applied_keys);
        counters.expanded += candidates.len();
        obs.count("repair.candidates.expanded", candidates.len() as u64);
        obs.exit();

        if candidates.is_empty() {
            obs.exit();
            break;
        }

        obs.enter("repair.rank");
        let static_baseline =
            StaticBaseline::measure(&current).expect("current netlist levelized at baseline");
        counters.ranked += candidates.len();
        let (ranked, pruned) =
            rank_candidates(&current, static_baseline, candidates, options.top_k);
        counters.pruned += pruned;
        obs.count(
            "repair.candidates.ranked",
            ranked.len() as u64 + pruned as u64,
        );
        obs.count("repair.candidates.pruned", pruned as u64);
        obs.exit();

        obs.enter("repair.verify");
        counters.verified += ranked.len();
        obs.count("repair.candidates.verified", ranked.len() as u64);
        // Verify in rank order; the accepted candidate with the best
        // measured coverage wins the round (first in rank order on ties).
        let mut round_records: Vec<(RepairRecord, Netlist)> = Vec::new();
        for rc in ranked {
            let after = measure_coverage(
                &rc.edited.netlist,
                options.patterns,
                options.seed,
                options.threads,
            )?;
            let verdict = judge(
                &options.economics,
                current_coverage,
                after,
                rc.edited.extra_gates,
                rc.edited.extra_pins,
            );
            round_records.push((
                RepairRecord {
                    round,
                    rule: rc.candidate.rule,
                    code: rc.candidate.code,
                    edit: rc.candidate.edit,
                    extra_gates: rc.edited.extra_gates,
                    extra_pins: rc.edited.extra_pins,
                    score: rc.score,
                    before: current_coverage,
                    after,
                    saving: verdict.saving,
                    hardware: verdict.hardware,
                    accepted: verdict.accepted,
                },
                rc.edited.netlist,
            ));
        }
        obs.exit();

        let winner = round_records
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| r.accepted)
            .max_by(|(ia, (a, _)), (ib, (b, _))| {
                a.after
                    .coverage
                    .partial_cmp(&b.after.coverage)
                    .expect("coverage is finite")
                    .then(ib.cmp(ia)) // ties: earlier rank wins
            })
            .map(|(i, _)| i);

        match winner {
            Some(i) => {
                for (j, (mut record, netlist)) in round_records.into_iter().enumerate() {
                    // Only the applied repair counts as accepted in the
                    // plan; a passing runner-up is re-considered next
                    // round against the new baseline.
                    record.accepted = j == i;
                    if j == i {
                        applied_keys.push(record.edit.key());
                        current = netlist;
                        current_coverage = record.after;
                    }
                    records.push(record);
                }
                counters.accepted += 1;
                obs.count("repair.accepted", 1);
            }
            None => {
                records.extend(round_records.into_iter().map(|(r, _)| r));
                obs.exit();
                break;
            }
        }
        obs.exit();
    }

    obs.gauge("repair.coverage.final", current_coverage.coverage);
    obs.exit();

    let plan = RepairPlan {
        design: netlist.name().to_owned(),
        patterns: options.patterns,
        seed: options.seed,
        baseline,
        final_coverage: current_coverage,
        records,
        counters,
    };
    Ok(RepairOutcome {
        netlist: current,
        plan,
    })
}
