//! From fix hints to concrete candidate edits.
//!
//! A lint [`FixHint`] names a repair *intent*; this module expands it
//! into [`CandidateEdit`]s — concrete, applicable netlist transforms —
//! and applies them. One hint may expand to several candidates (a
//! control point can be a test-mode multiplexer or degating hardware;
//! the autopilot lets the ranking decide), and several diagnostics may
//! expand to the same candidate (deduplicated by [`CandidateEdit::key`]).
//!
//! All expansions reuse the workspace's existing transforms:
//! `dft-adhoc` test points, degating and reset; `dft-scan` insertion;
//! and `Netlist::replace_with_const` for §I-B redundancy removal.

use dft_adhoc::{add_reset, apply_test_points, insert_degating, ResetKind, TestPointPlan};
use dft_lint::{Diagnostic, FixHint};
use dft_netlist::cones::exclusive_fanin_region;
use dft_netlist::{GateId, LevelizeError, Netlist};
use dft_scan::{insert_scan, ScanConfig, ScanStyle};

/// One concrete, applicable netlist edit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CandidateEdit {
    /// Expose `net` as an extra primary output (`tp_obs0`).
    Observe {
        /// The net to observe.
        net: GateId,
    },
    /// Put a test-mode multiplexer on `net` (`tp_en`/`tp_val0` pins).
    ControlMux {
        /// The net to control.
        net: GateId,
    },
    /// Insert degating hardware on `net` (`degate`/`control0` pins).
    Degate {
        /// The net to degate.
        net: GateId,
    },
    /// Gate every storage element's data input with a CLEAR line.
    AddReset,
    /// Thread the storage into a Scan-Path chain. Scan is modeled as
    /// test-mode *access*, not extra system logic, so the functional
    /// netlist is unchanged — the candidate exists so scan hints flow
    /// through the same verify/economics gate as everything else (and
    /// are rejected there when the combinational view gains nothing).
    ScanConvert,
    /// Fold `net` to constant `value` and delete the gates that exist
    /// only to feed it (§I-B redundancy removal).
    Fold {
        /// The net proven constant.
        net: GateId,
        /// The constant it holds.
        value: bool,
    },
}

impl CandidateEdit {
    /// Stable kebab-case discriminator (plan JSON, obs labels).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            CandidateEdit::Observe { .. } => "observe",
            CandidateEdit::ControlMux { .. } => "control-mux",
            CandidateEdit::Degate { .. } => "degate",
            CandidateEdit::AddReset => "add-reset",
            CandidateEdit::ScanConvert => "scan-convert",
            CandidateEdit::Fold { .. } => "fold",
        }
    }

    /// The targeted net, if the edit has one.
    #[must_use]
    pub fn target(&self) -> Option<GateId> {
        match *self {
            CandidateEdit::Observe { net }
            | CandidateEdit::ControlMux { net }
            | CandidateEdit::Degate { net }
            | CandidateEdit::Fold { net, .. } => Some(net),
            CandidateEdit::AddReset | CandidateEdit::ScanConvert => None,
        }
    }

    /// A stable dedup/identity key. Gate ids are stable across applied
    /// repairs (every transform preserves the existing arena prefix), so
    /// the key identifies "the same edit" across autopilot rounds.
    #[must_use]
    pub fn key(&self) -> String {
        match *self {
            CandidateEdit::Fold { net, value } => {
                format!("{}:{}:{}", self.kind(), net, u8::from(value))
            }
            _ => match self.target() {
                Some(t) => format!("{}:{t}", self.kind()),
                None => self.kind().to_owned(),
            },
        }
    }
}

/// A candidate edit traced back to the diagnostic that proposed it.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The concrete edit.
    pub edit: CandidateEdit,
    /// Rule id of the diagnostic the edit came from.
    pub rule: &'static str,
    /// Stable `DFT-NNN` code of that rule.
    pub code: &'static str,
}

/// The result of applying a candidate edit.
#[derive(Clone, Debug)]
pub struct Edited {
    /// The repaired netlist.
    pub netlist: Netlist,
    /// Logic gates the edit added (negative for redundancy removal,
    /// which *replaces* gates with constants).
    pub extra_gates: i64,
    /// Package pins the edit added (new primary inputs + outputs).
    pub extra_pins: i64,
}

/// Expands every hinted diagnostic in `diagnostics` into candidates,
/// skipping edits whose [`CandidateEdit::key`] is in `exclude` (already
/// applied in an earlier round) and deduplicating within the batch.
/// Order follows the report; the first diagnostic proposing an edit
/// names it.
#[must_use]
pub fn expand_hints(diagnostics: &[Diagnostic], exclude: &[String]) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let mut seen: Vec<String> = exclude.to_vec();
    for d in diagnostics {
        let Some(fix) = d.fix else { continue };
        let edits: Vec<CandidateEdit> = match fix {
            FixHint::ObservePoint { net } => vec![CandidateEdit::Observe { net }],
            // A control intent has two hardware realizations; offer both
            // and let the static ranking pick.
            FixHint::ControlPoint { net } => vec![
                CandidateEdit::ControlMux { net },
                CandidateEdit::Degate { net },
            ],
            FixHint::Degate { net } => vec![CandidateEdit::Degate { net }],
            FixHint::AddReset => vec![CandidateEdit::AddReset],
            FixHint::ScanConvert { .. } => vec![CandidateEdit::ScanConvert],
            FixHint::FoldConstant { net, value } => vec![CandidateEdit::Fold { net, value }],
            FixHint::RemoveRedundant { gate, value } => {
                vec![CandidateEdit::Fold { net: gate, value }]
            }
        };
        for edit in edits {
            let key = edit.key();
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            out.push(Candidate {
                edit,
                rule: d.rule,
                code: d.code,
            });
        }
    }
    out
}

/// Applies `edit` to `netlist`, returning the repaired netlist with its
/// gate/pin cost. Edits are pure: the input netlist is untouched.
///
/// # Errors
///
/// Returns [`LevelizeError`] if the netlist has combinational cycles
/// (no transform in the workspace accepts those).
pub fn apply_edit(netlist: &Netlist, edit: CandidateEdit) -> Result<Edited, LevelizeError> {
    let pins_before = port_count(netlist);
    let gates_before = netlist.logic_gate_count() as i64;
    let out = match edit {
        CandidateEdit::Observe { net } => apply_test_points(
            netlist,
            &TestPointPlan {
                observe: vec![net],
                control: vec![],
            },
        )?,
        CandidateEdit::ControlMux { net } => apply_test_points(
            netlist,
            &TestPointPlan {
                observe: vec![],
                control: vec![net],
            },
        )?,
        CandidateEdit::Degate { net } => insert_degating(netlist, &[net])?.netlist().clone(),
        CandidateEdit::AddReset => add_reset(netlist, ResetKind::Clear)?.0,
        CandidateEdit::ScanConvert => insert_scan(netlist, &ScanConfig::new(ScanStyle::ScanPath))?
            .netlist()
            .clone(),
        CandidateEdit::Fold { net, value } => {
            // Recompute the private region against the *current* netlist:
            // earlier repairs may have grown new readers into what used to
            // be an exclusive cone.
            let region = exclusive_fanin_region(netlist, net);
            let mut out = netlist.clone();
            out.set_name(format!("{}_fold", netlist.name()));
            out.replace_with_const(net, value)
                .expect("fold targets are plain logic gates");
            for g in region {
                // Dead feeders become constants too: `universe()` skips
                // Const gates, so their (untestable) fault sites leave
                // the universe instead of lingering as dead logic.
                out.replace_with_const(g, false)
                    .expect("exclusive regions contain only plain logic gates");
            }
            out
        }
    };
    Ok(Edited {
        extra_gates: out.logic_gate_count() as i64 - gates_before,
        extra_pins: port_count(&out) - pins_before,
        netlist: out,
    })
}

fn port_count(netlist: &Netlist) -> i64 {
    (netlist.primary_inputs().len() + netlist.primary_outputs().len()) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_lint::lint;
    use dft_netlist::circuits::redundant_fixture;
    use dft_netlist::GateKind;
    use dft_sim::{Logic, ThreeValueSim};

    #[test]
    fn expansion_dedups_and_respects_exclusions() {
        let n = redundant_fixture();
        let report = lint(&n);
        let cands = expand_hints(report.diagnostics(), &[]);
        assert!(!cands.is_empty(), "{}", report.to_text());
        let mut keys: Vec<String> = cands.iter().map(|c| c.edit.key()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "no duplicate candidates");
        // Excluding everything leaves nothing.
        let none = expand_hints(report.diagnostics(), &keys);
        assert!(none.is_empty());
    }

    #[test]
    fn control_hints_expand_to_both_realizations() {
        let d = Diagnostic::new(
            "hard-to-control",
            dft_lint::Severity::Warning,
            dft_lint::Category::Testability,
            GateId::from_index(3),
            "hard",
        )
        .with_fix(FixHint::ControlPoint {
            net: GateId::from_index(3),
        });
        let cands = expand_hints(&[d], &[]);
        let kinds: Vec<&str> = cands.iter().map(|c| c.edit.kind()).collect();
        assert_eq!(kinds, vec!["control-mux", "degate"]);
    }

    #[test]
    fn fold_edit_preserves_the_live_output() {
        // redundant_fixture: y is provably constant 0; x = XOR(a, b) is
        // live. Folding y must leave x's function untouched.
        let n = redundant_fixture();
        let report = lint(&n);
        let fold = expand_hints(report.diagnostics(), &[])
            .into_iter()
            .find(|c| matches!(c.edit, CandidateEdit::Fold { .. }))
            .expect("fixture yields a fold candidate");
        let edited = apply_edit(&n, fold.edit).unwrap();
        assert!(edited.extra_pins == 0);
        assert!(edited.extra_gates < 0, "folding removes logic");

        let sim_old = ThreeValueSim::new(&n).unwrap();
        let sim_new = ThreeValueSim::new(&edited.netlist).unwrap();
        for v in 0..4u8 {
            let pis = vec![Logic::from(v & 1 == 1), Logic::from(v & 2 == 2)];
            let o = sim_old.outputs(&sim_old.eval(&pis, &[]));
            let n_ = sim_new.outputs(&sim_new.eval(&pis, &[]));
            assert_eq!(o, n_, "input {v:02b}");
        }
    }

    #[test]
    fn fold_shrinks_the_fault_universe() {
        let n = redundant_fixture();
        let report = lint(&n);
        let fold = expand_hints(report.diagnostics(), &[])
            .into_iter()
            .find(|c| matches!(c.edit, CandidateEdit::Fold { .. }))
            .unwrap();
        let edited = apply_edit(&n, fold.edit).unwrap();
        assert!(
            dft_fault::universe(&edited.netlist).len() < dft_fault::universe(&n).len(),
            "constant-folded gates leave the universe"
        );
    }

    #[test]
    fn observe_edit_costs_one_pin() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let h = n.add_gate(GateKind::Or, &[g, a]).unwrap();
        n.mark_output(h, "y").unwrap();
        let edited = apply_edit(&n, CandidateEdit::Observe { net: g }).unwrap();
        assert_eq!(edited.extra_pins, 1);
        assert_eq!(edited.extra_gates, 0);
    }

    #[test]
    fn scan_convert_is_a_structural_noop() {
        let n = dft_netlist::circuits::shift_register(3);
        let edited = apply_edit(&n, CandidateEdit::ScanConvert).unwrap();
        assert_eq!(edited.extra_gates, 0);
        assert_eq!(edited.extra_pins, 0);
        assert_eq!(edited.netlist.gate_count(), n.gate_count());
    }
}
