//! End-to-end acceptance tests for the repair autopilot — the
//! executable form of the ISSUE's acceptance criteria.

use dft_lint::LintConfig;
use dft_netlist::circuits::{c17, redundant_fixture};
use dft_netlist::{GateKind, Netlist};
use dft_obs::Recorder;
use dft_repair::{repair, repair_observed, RepairOptions};

/// The fixture with a known defect: `y` is provably constant, capping
/// coverage. The autopilot must find a cost-model-accepted repair whose
/// PPSFP-verified coverage strictly improves on the baseline.
#[test]
fn fixture_gets_an_accepted_coverage_improving_repair() {
    let n = redundant_fixture();
    let outcome = repair(&n, &RepairOptions::new()).unwrap();
    let plan = &outcome.plan;

    assert!(plan.counters.accepted >= 1, "at least one accepted repair");
    assert!(
        plan.final_coverage.coverage > plan.baseline.coverage,
        "coverage strictly improves: {} -> {}",
        plan.baseline.coverage,
        plan.final_coverage.coverage
    );
    assert!(plan.improved());
    // Folding the redundancy makes every remaining fault detectable.
    assert!((plan.final_coverage.coverage - 1.0).abs() < 1e-12);

    // The accepted record carries the before/after evidence.
    let accepted: Vec<_> = plan.accepted().collect();
    assert_eq!(accepted.len(), plan.counters.accepted);
    for r in &accepted {
        assert!(r.after.coverage > r.before.coverage);
        assert!(r.saving > r.hardware);
    }

    // The repaired netlist really is smaller where it counts: the
    // redundant region is folded to constants.
    let consts = |nl: &Netlist| {
        nl.ids()
            .filter(|&id| matches!(nl.gate(id).kind(), GateKind::Const0 | GateKind::Const1))
            .count()
    };
    assert!(consts(&outcome.netlist) > consts(&n));

    // The plan JSON tells the same story.
    let json = plan.to_json();
    assert!(json.contains("\"improved\": true"));
    assert!(json.contains("\"accepted\": true"));
}

/// Static pre-ranking must demonstrably prune candidates: more are
/// expanded than simulated, and the counter says so (both in the plan
/// and in the obs report).
#[test]
fn static_ranking_prunes_candidates_before_simulation() {
    let n = redundant_fixture();
    let opts = RepairOptions::new().with_top_k(1);
    let mut recorder = Recorder::new();
    let outcome = repair_observed(&n, &opts, Some(&mut recorder)).unwrap();
    let report = recorder.finish("tessera-fix");

    let c = &outcome.plan.counters;
    assert!(c.pruned > 0, "counters: {c:?}");
    assert_eq!(c.expanded, c.verified + c.pruned);
    assert!(c.verified < c.expanded, "verification saw fewer candidates");

    let autopilot = report.find("repair.autopilot").expect("span recorded");
    assert_eq!(
        autopilot.counter_total("repair.candidates.pruned") as usize,
        c.pruned
    );
    assert_eq!(
        autopilot.counter_total("repair.candidates.verified") as usize,
        c.verified
    );
    assert_eq!(
        autopilot.counter_total("repair.accepted") as usize,
        c.accepted
    );
    assert!(report.find("repair.verify").is_some());
    assert!(report.to_json().contains("repair.rank"));
}

/// The whole run is deterministic for a fixed seed: the plan JSON is
/// bytewise identical across repeats and across PPSFP thread counts.
#[test]
fn plan_is_deterministic_across_runs_and_thread_counts() {
    let n = redundant_fixture();
    let run = |threads: usize| {
        let opts = RepairOptions::new().with_seed(42).with_threads(threads);
        repair(&n, &opts).unwrap().plan.to_json()
    };
    let one = run(1);
    assert_eq!(one, run(1), "repeat run");
    assert_eq!(one, run(2), "thread count");
    assert_eq!(one, run(4), "thread count");
}

/// A clean, already-testable circuit needs no repair: nothing is
/// accepted and the netlist comes back unchanged.
#[test]
fn clean_circuit_is_left_alone() {
    let n = c17();
    let outcome = repair(&n, &RepairOptions::new()).unwrap();
    assert_eq!(outcome.plan.counters.accepted, 0);
    assert!(!outcome.plan.improved());
    assert_eq!(outcome.netlist.gate_count(), n.gate_count());
}

/// Dead (unreachable) logic carries provably-untestable faults; the
/// cheapest repair is not to observe it but to fold it away — zero
/// hardware, and the untestable faults leave the universe.
#[test]
fn dead_logic_is_folded_away_for_free() {
    let mut n = Netlist::new("buried");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    // A small buried cone no primary output can see.
    let buried_and = n.add_gate(GateKind::And, &[a, b]).unwrap();
    let _buried = n.add_gate(GateKind::Xor, &[buried_and, c]).unwrap();
    // Live logic so the circuit has a primary output.
    let live = n.add_gate(GateKind::Or, &[a, c]).unwrap();
    n.mark_output(live, "z").unwrap();

    let outcome = repair(&n, &RepairOptions::new()).unwrap();
    let plan = &outcome.plan;
    assert!(plan.counters.accepted >= 1, "{}", plan.to_json());
    assert!(plan.improved());
    let accepted: Vec<_> = plan.accepted().collect();
    assert!(
        accepted.iter().any(|r| r.edit.kind() == "fold"),
        "folding beats spending a pin on dead logic"
    );
    for r in &accepted {
        assert_eq!(r.hardware, 0.0, "dead-logic removal costs nothing");
    }
    // No extra pins were spent.
    assert_eq!(
        outcome.netlist.primary_outputs().len(),
        n.primary_outputs().len()
    );
}

/// The observe-point path: logic that is easy to control but starved of
/// observability (a propagation choke) earns a test-point tap that the
/// economics accept because it rescues many otherwise-undetected faults
/// for one pin.
#[test]
fn starved_observability_earns_an_observe_point() {
    let mut n = Netlist::new("starved");
    // An 8-input XOR tree: every node is easy to control...
    let leaves: Vec<_> = (0..8).map(|i| n.add_input(format!("d{i}"))).collect();
    let mut level = leaves;
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|p| n.add_gate(GateKind::Xor, &[p[0], p[1]]).unwrap())
            .collect();
    }
    let buried = level[0];
    // ...but starved of observability: propagating its value to the
    // output needs ten simultaneous 1s on the mask inputs, which random
    // patterns almost never supply.
    let mut choke = buried;
    for i in 0..10 {
        let m = n.add_input(format!("m{i}"));
        choke = n.add_gate(GateKind::And, &[choke, m]).unwrap();
    }
    n.mark_output(choke, "y").unwrap();

    let config = LintConfig {
        observability_limit: 8,
        ..LintConfig::default()
    };
    let opts = RepairOptions::new().with_lint_config(config);
    let outcome = repair(&n, &opts).unwrap();
    let plan = &outcome.plan;
    assert!(plan.counters.accepted >= 1, "{}", plan.to_json());
    assert!(plan.improved());
    let kinds: Vec<&str> = plan.accepted().map(|r| r.edit.kind()).collect();
    assert!(
        kinds.contains(&"observe"),
        "an observe point is among the accepted repairs: {kinds:?}"
    );
    // The repaired netlist gained at least one test-point output.
    assert!(outcome.netlist.primary_outputs().len() > n.primary_outputs().len());
}

/// `max_rounds` and lint thresholds are honored: zero rounds means the
/// input is returned untouched with a baseline-only plan.
#[test]
fn zero_rounds_only_measures_the_baseline() {
    let n = redundant_fixture();
    let opts = RepairOptions::new()
        .with_max_rounds(0)
        .with_lint_config(LintConfig::default());
    let outcome = repair(&n, &opts).unwrap();
    assert_eq!(outcome.plan.counters.expanded, 0);
    assert_eq!(outcome.plan.counters.accepted, 0);
    assert!(!outcome.plan.improved());
    assert_eq!(outcome.netlist.gate_count(), n.gate_count());
}
