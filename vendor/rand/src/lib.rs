//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the workspace vendors the *deterministic subset* of
//! the `rand` 0.8 API that its crates actually call:
//!
//! * [`SeedableRng::seed_from_u64`] — every RNG in the workspace is
//!   explicitly seeded (experiments must be reproducible),
//! * [`Rng::gen_range`] over integer `Range` / `RangeInclusive`,
//! * [`Rng::gen_bool`],
//! * [`rngs::StdRng`] and [`rngs::SmallRng`].
//!
//! The generator behind both rng types is xoshiro256** seeded through
//! SplitMix64 — a high-quality, well-studied PRNG. Statistical quality
//! matches the needs of the workspace (random circuit generation, random
//! pattern sets); it is **not** the cryptographically secure ChaCha core
//! the real `StdRng` uses, which no code here relies on.

use std::ops::{Range, RangeInclusive};

/// A type that can be created from a 64-bit seed.
///
/// The real trait also supports byte-array seeds; the workspace only ever
/// seeds from `u64`, so that is the whole surface here.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Maps a raw 64-bit random word into `[low, high)`.
    fn from_u64_in(word: u64, low: Self, high: Self) -> Self;
    /// The half-open range check used to validate bounds.
    fn valid_range(low: Self, high: Self) -> bool;
    /// `high + 1` for inclusive ranges (saturating).
    fn successor(v: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_u64_in(word: u64, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of the plain `%` alternative would also be
                // acceptable for circuit generation, but this is as cheap.
                let hi = ((u128::from(word) * u128::from(span)) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
            fn valid_range(low: Self, high: Self) -> bool { low < high }
            fn successor(v: Self) -> Self { v + 1 }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range using `word`.
    fn sample_from(self, word: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, word: u64) -> T {
        assert!(
            T::valid_range(self.start, self.end),
            "gen_range called with an empty range"
        );
        T::from_u64_in(word, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, word: u64) -> T {
        let (low, high) = self.into_inner();
        T::from_u64_in(word, low, T::successor(high))
    }
}

/// The user-facing random-value interface.
pub trait Rng {
    /// Returns the next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        // 53 uniform mantissa bits, exactly like the real crate's
        // `standard` float distribution.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sequence-related extension traits (`SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Slice extensions: the workspace only uses [`shuffle`].
    ///
    /// [`shuffle`]: SliceRandom::shuffle
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** core shared by [`StdRng`] and [`SmallRng`].
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Xoshiro256 {
                s: [next(), next(), next(), next()],
            }
        }

        fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The workspace's standard seeded generator (xoshiro256** here; the
    /// real crate uses ChaCha12 — nothing in this workspace needs a CSPRNG).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// A small, fast generator; identical core to [`StdRng`] in this stub.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..3u8);
            assert!(w < 3);
            let x: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_permutes_in_place() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        assert_ne!(
            v,
            (0..32).collect::<Vec<u32>>(),
            "identity is astronomically unlikely"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "≈2500 expected, got {hits}");
    }
}
