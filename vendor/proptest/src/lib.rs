//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates-registry access, so this vendored
//! crate implements the subset of the proptest API the workspace's tests
//! use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `name in
//!   strategy` and `name: Type` parameter forms,
//! * [`Strategy`] with [`Strategy::prop_map`], integer-range and tuple
//!   strategies, [`any`] for primitives, and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate: cases are sampled from a fixed
//! deterministic seed (reproducible CI), failing inputs are *not*
//! shrunk — the panic message reports the case index instead, and
//! persistence/regression files are not written.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Runner configuration: how many random cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic source of randomness handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner whose stream is derived from the property name and case
    /// index, so every `cargo test` run sees the same inputs.
    #[must_use]
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(seed ^ (u64::from(case) << 32)),
        }
    }

    /// Draws a raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Draws a uniform `usize` in `range`.
    pub fn pick(&mut self, range: Range<usize>) -> usize {
        self.rng.gen_range(range)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                let mut rng = StdRng::seed_from_u64(runner.next_u64());
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                let mut rng = StdRng::seed_from_u64(runner.next_u64());
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces an arbitrary value from the runner's stream.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Strategy producing any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; this stub
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Binds one parameter list entry inside the generated test body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($runner:ident;) => {};
    ($runner:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $runner);
        $crate::__proptest_bind!($runner; $($rest)*);
    };
    ($runner:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $runner);
    };
    ($runner:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $runner);
        $crate::__proptest_bind!($runner; $($rest)*);
    };
    ($runner:ident; $name:ident : $ty:ty) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $runner);
    };
}

/// Expands the body of [`proptest!`] one function at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut runner =
                    $crate::TestRunner::deterministic(stringify!($name), case);
                let run = || {
                    $crate::__proptest_bind!(runner; $($params)*);
                    $body
                };
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest stub: property {} failed at case {}/{} \
                         (deterministic seed; no shrinking)",
                        stringify!($name),
                        case,
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

/// The `proptest!` macro: wraps `fn name(params) { body }` items into
/// `#[test]`-compatible case loops.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Wrapper(u64);

    fn arb_wrapper() -> impl Strategy<Value = Wrapper> {
        (1u64..100, any::<bool>()).prop_map(|(v, neg)| Wrapper(if neg { v * 2 } else { v }))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 2u32..12, z: u64) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..12).contains(&y));
            let _ = z;
        }

        #[test]
        fn mapped_strategies_apply(w in arb_wrapper()) {
            prop_assert!(w.0 >= 1 && w.0 < 200);
        }

        #[test]
        fn collections_respect_length(v in crate::collection::vec(any::<bool>(), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = crate::TestRunner::deterministic("p", 3);
        let mut b = crate::TestRunner::deterministic("p", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRunner::deterministic("p", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
