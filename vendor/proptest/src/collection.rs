//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRunner};

/// Strategy producing `Vec`s with lengths drawn from a range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        let len = runner.pick(self.len.clone());
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}

/// Vectors of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
