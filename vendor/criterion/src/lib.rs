//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates-registry access, so this vendored
//! crate supplies the API subset the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`Throughput`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Instead of criterion's statistical machinery it times `sample_size`
//! batched runs of each closure with `std::time::Instant` and prints a
//! median per-iteration figure — enough to compare engines by eye and to
//! keep `cargo bench` meaningful, with zero dependencies.

use std::fmt::Display;
use std::time::Instant;

/// Measured throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying only the parameter value.
    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    #[must_use]
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: usize,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `routine` `samples` times and records the median duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut timings: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            timings.push(start.elapsed().as_secs_f64() * 1e9);
            drop(out);
        }
        timings.sort_by(f64::total_cmp);
        self.nanos_per_iter = timings[timings.len() / 2];
    }
}

fn print_result(name: &str, nanos: f64, throughput: Option<Throughput>) {
    let time = if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) if nanos > 0.0 => {
            #[allow(clippy::cast_precision_loss)]
            let rate = n as f64 / (nanos / 1e9);
            println!("{name:<50} {time:>12}  ({rate:.3e} elem/s)");
        }
        Some(Throughput::Bytes(n)) if nanos > 0.0 => {
            #[allow(clippy::cast_precision_loss)]
            let rate = n as f64 / (nanos / 1e9);
            println!("{name:<50} {time:>12}  ({rate:.3e} B/s)");
        }
        _ => println!("{name:<50} {time:>12}"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Display,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            nanos_per_iter: 0.0,
        };
        f(&mut bencher);
        print_result(
            &format!("{}/{id}", self.name),
            bencher.nanos_per_iter,
            self.throughput,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<F, I>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            nanos_per_iter: 0.0,
        };
        f(&mut bencher, input);
        print_result(
            &format!("{}/{id}", self.name),
            bencher.nanos_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group (prints nothing extra in this stub).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            nanos_per_iter: 0.0,
        };
        f(&mut bencher);
        print_result(name, bencher.nanos_per_iter, None);
        self
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value barrier, re-exported for criterion API compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
